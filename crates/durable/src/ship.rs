//! Log shipping: stream a primary's WAL history to a replica over a
//! lossy channel.
//!
//! # Protocol
//!
//! The protocol is *pull-shaped and stateless on the shipper side*: the
//! [`ReplicaApplier`] owns the only durable cursor (its applied LSN),
//! and every shipping round starts from what the replica says it needs
//! ([`ReplicaApplier::needed`] — effectively a NACK/resume point):
//!
//! ```text
//!          ┌────────────── NeedCheckpoint ──────────────┐
//!          ▼                                            │
//!   [Unseeded] --Checkpoint(lsn)--> [Caught-up to lsn]  │
//!                                        │              │
//!              Need From(l) ─────────────┘              │
//!                 │                                     │
//!                 ├─ history ≥ l retained: Segment*, Frames
//!                 └─ history pruned below l — the pump renegotiates:
//!                      · replica retains base B, B in the primary's
//!                        delta lineage: Need DeltaBootstrap(B) →
//!                        DeltaCheckpoint*, Segment*, Frames
//!                        (only the changed pages since B are shipped)
//!                      · otherwise: Checkpoint, DeltaCheckpoint*,
//!                        Segment*, Frames (the full chain)
//!
//!   delivery outcomes at the applier:
//!     Applied / Bootstrapped  → progress, reset backoff
//!     Duplicate               → ignored (dup or stale delivery)
//!     Gap / Corrupt           → NACK: next round re-ships from
//!                               `needed()`, after exponential backoff
//! ```
//!
//! A `DeltaCheckpoint` delivery carries an `ASRDB 3` checkpoint whose
//! `DELTA <base>` header names the checkpoint state it patches.  The
//! applier retains its last full-state checkpoint text; a delta whose
//! base matches is applied strictly (any inconsistency NACKs — the
//! replica never silently rebuilds), a delta over an unknown base NACKs
//! as a gap, and the shipper answers a base it no longer has in its
//! lineage with the full chain instead.
//!
//! Every delivery is one [`ShipMessage`] wrapped in the WAL's
//! `[len][crc32][payload]` envelope ([`crate::wal::frame`]), so a
//! truncated or bit-flipped delivery is detected at the applier exactly
//! like a torn log tail — by length and CRC — and simply NACKed.
//! Reordered or duplicated deliveries are detected by LSN.  The replica
//! therefore either converges to the primary's state or surfaces a
//! typed error ([`DurableError::ReplicationStalled`]); it never
//! diverges silently.
//!
//! # Backoff
//!
//! Retries are *modeled*, not slept: a round that makes no progress
//! charges `min(cap, base << failures)` ticks to the report, doubling
//! per consecutive failed round.  Tests assert on tick totals without
//! wall-clock flakiness.

use std::collections::VecDeque;
use std::rc::Rc;

use asr_obs::FlightRecorder;

use asr_core::Database;

use crate::db::{split_checkpoint, DurableDatabase, CHECKPOINT_FILE, FLIGHT_TAIL_EVENTS, WAL_FILE};
use crate::error::{DurableError, Result};
use crate::replica::{OfferOutcome, ReplicaApplier};
use crate::segment::{checkpoint_archive_name, SegmentManifest, READ_RETRIES};
use crate::storage::{read_stable, Storage};
use crate::wal::{frame, scan_wal};

// ----------------------------------------------------------------------
// Wire format
// ----------------------------------------------------------------------

const TAG_CHECKPOINT: u8 = b'C';
const TAG_SEGMENT: u8 = b'S';
const TAG_FRAMES: u8 = b'F';
const TAG_DELTA_CHECKPOINT: u8 = b'D';

/// One unit of shipped history (a delivery on the [`Channel`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipMessage {
    /// A full checkpoint snapshot (`checkpoint.snap` bytes) seeding or
    /// re-seeding the replica.
    Checkpoint(Vec<u8>),
    /// An `ASRDB 3` delta checkpoint (same `CKPT`/`ASRIDS` header) that
    /// patches the checkpoint state its `DELTA` header names — shipped
    /// instead of a full snapshot when the replica holds the base.
    DeltaCheckpoint(Vec<u8>),
    /// A sealed segment: its manifest coordinates plus the raw frames.
    Segment {
        /// Rotation sequence number.
        seqno: u64,
        /// First LSN in the segment.
        first_lsn: u64,
        /// Last LSN in the segment.
        last_lsn: u64,
        /// The segment file's bytes (WAL frames).
        frames: Vec<u8>,
    },
    /// Live tail frames from the active `wal.log` (valid prefix only).
    Frames(Vec<u8>),
}

impl ShipMessage {
    /// Serialize into a delivery: `frame([tag][body])`, so the envelope
    /// CRC covers the whole message.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            ShipMessage::Checkpoint(bytes) => {
                payload.push(TAG_CHECKPOINT);
                payload.extend_from_slice(bytes);
            }
            ShipMessage::DeltaCheckpoint(bytes) => {
                payload.push(TAG_DELTA_CHECKPOINT);
                payload.extend_from_slice(bytes);
            }
            ShipMessage::Segment {
                seqno,
                first_lsn,
                last_lsn,
                frames,
            } => {
                payload.push(TAG_SEGMENT);
                payload
                    .extend_from_slice(format!("SEG {seqno} {first_lsn} {last_lsn}\n").as_bytes());
                payload.extend_from_slice(frames);
            }
            ShipMessage::Frames(bytes) => {
                payload.push(TAG_FRAMES);
                payload.extend_from_slice(bytes);
            }
        }
        frame(&payload)
    }

    /// Parse a delivery.  `None` means the envelope is damaged
    /// (truncated, extended, or failing its CRC) — the applier treats
    /// that as a NACKable corrupt delivery, never a hard error.
    pub fn decode(delivery: &[u8]) -> Option<ShipMessage> {
        if delivery.len() < 9 {
            return None;
        }
        let len = u32::from_le_bytes(delivery[0..4].try_into().ok()?) as usize;
        let crc = u32::from_le_bytes(delivery[4..8].try_into().ok()?);
        if delivery.len() != 8 + len {
            return None;
        }
        let payload = &delivery[8..];
        if crate::crc::crc32(payload) != crc {
            return None;
        }
        let body = &payload[1..];
        match payload[0] {
            TAG_CHECKPOINT => Some(ShipMessage::Checkpoint(body.to_vec())),
            TAG_DELTA_CHECKPOINT => Some(ShipMessage::DeltaCheckpoint(body.to_vec())),
            TAG_FRAMES => Some(ShipMessage::Frames(body.to_vec())),
            TAG_SEGMENT => {
                let nl = body.iter().position(|b| *b == b'\n')?;
                let header = std::str::from_utf8(&body[..nl]).ok()?;
                let mut parts = header.split_whitespace();
                if parts.next() != Some("SEG") {
                    return None;
                }
                let seqno: u64 = parts.next()?.parse().ok()?;
                let first_lsn: u64 = parts.next()?.parse().ok()?;
                let last_lsn: u64 = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                Some(ShipMessage::Segment {
                    seqno,
                    first_lsn,
                    last_lsn,
                    frames: body[nl + 1..].to_vec(),
                })
            }
            _ => None,
        }
    }
}

/// What a replica asks the shipper for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Need {
    /// No state yet (or re-seed): ship a checkpoint plus everything
    /// after it.
    Checkpoint,
    /// Ship records with LSN `>= .0` (the applier's `applied + 1`).
    From(u64),
    /// Re-seed a replica that still holds the full checkpoint state at
    /// LSN `.0`: ship only the delta checkpoints above that base (plus
    /// history after the newest one).  A base the shipper's lineage no
    /// longer contains degrades to the full-chain answer.
    DeltaBootstrap(u64),
}

// ----------------------------------------------------------------------
// Channel
// ----------------------------------------------------------------------

/// An in-process, unidirectional delivery queue between shipper and
/// applier.  Deliveries are opaque byte blobs; implementations are free
/// to lose or mangle them — integrity is enforced end-to-end by the
/// message envelope, not by the channel.
pub trait Channel {
    /// Enqueue a delivery (which the channel may drop, damage, duplicate
    /// or reorder).
    fn send(&mut self, delivery: Vec<u8>);
    /// Dequeue the next delivery, if any.
    fn recv(&mut self) -> Option<Vec<u8>>;
}

/// A perfect FIFO channel.
#[derive(Debug, Default)]
pub struct LosslessChannel {
    queue: VecDeque<Vec<u8>>,
}

impl LosslessChannel {
    /// An empty channel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Channel for LosslessChannel {
    fn send(&mut self, delivery: Vec<u8>) {
        self.queue.push_back(delivery);
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        self.queue.pop_front()
    }
}

/// Per-fault probabilities (percent, 0–100) for a [`FaultyChannel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Chance a delivery vanishes entirely.
    pub drop_pct: u8,
    /// Chance a delivery is enqueued twice.
    pub dup_pct: u8,
    /// Chance a delivery is inserted at a random queue position instead
    /// of the back.
    pub reorder_pct: u8,
    /// Chance a delivery loses a random-length tail.
    pub truncate_pct: u8,
    /// Chance one random bit of a delivery is flipped.
    pub flip_pct: u8,
}

impl ChaosProfile {
    /// A moderately hostile profile derived deterministically from
    /// `seed` — every fault class gets a non-trivial probability, so a
    /// seeded fuzz run exercises all of them in combination.
    pub fn from_seed(seed: u64) -> Self {
        let mut r = SplitMix64(seed ^ 0x00C0_FFEE);
        ChaosProfile {
            drop_pct: (r.next() % 30) as u8,
            dup_pct: (r.next() % 30) as u8,
            reorder_pct: (r.next() % 30) as u8,
            truncate_pct: (r.next() % 25) as u8,
            flip_pct: (r.next() % 25) as u8,
        }
    }

    /// Lose everything: every delivery is dropped (a network blackout).
    pub fn blackout() -> Self {
        ChaosProfile {
            drop_pct: 100,
            ..Self::default()
        }
    }
}

/// Delivery accounting for a [`FaultyChannel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Deliveries offered to the channel.
    pub sent: u64,
    /// Deliveries handed to the receiver.
    pub delivered: u64,
    /// Deliveries dropped outright.
    pub dropped: u64,
    /// Extra copies enqueued.
    pub duplicated: u64,
    /// Deliveries enqueued out of order.
    pub reordered: u64,
    /// Deliveries that lost a tail.
    pub truncated: u64,
    /// Deliveries with a flipped bit.
    pub flipped: u64,
}

/// A [`Channel`] that drops, duplicates, reorders, truncates, and
/// bit-flips deliveries on a deterministic, seeded schedule — the
/// shipping-side sibling of [`crate::fault::FaultyStorage`].
#[derive(Debug)]
pub struct FaultyChannel {
    queue: VecDeque<Vec<u8>>,
    rng: SplitMix64,
    profile: ChaosProfile,
    stats: ChannelStats,
    recorder: Option<Rc<FlightRecorder>>,
}

impl FaultyChannel {
    /// A channel injecting `profile`'s faults, randomized by `seed`.
    pub fn new(profile: ChaosProfile, seed: u64) -> Self {
        FaultyChannel {
            queue: VecDeque::new(),
            rng: SplitMix64(seed),
            profile,
            stats: ChannelStats::default(),
            recorder: None,
        }
    }

    /// Record every injected fault as a typed `chaos.*` event in
    /// `recorder`.  Wiring in the primary's
    /// [`DurableDatabase::flight_recorder`] puts channel damage on the
    /// same timeline as the shipping rounds it disturbs — a
    /// [`DurableError::ReplicationStalled`] tail then names the faults
    /// that starved the replica.
    pub fn set_recorder(&mut self, recorder: Rc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Builder form of [`Self::set_recorder`].
    pub fn with_recorder(mut self, recorder: Rc<FlightRecorder>) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// Delivery accounting so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Deliveries currently queued (sent, not yet received).
    pub fn undelivered(&self) -> usize {
        self.queue.len()
    }

    fn roll(&mut self, pct: u8) -> bool {
        (self.rng.next() % 100) < u64::from(pct.min(100))
    }

    fn note(&self, name: &str, attrs: &[(&str, String)]) {
        if let Some(recorder) = &self.recorder {
            recorder.note(name, attrs);
        }
    }
}

impl Channel for FaultyChannel {
    fn send(&mut self, mut delivery: Vec<u8>) {
        self.stats.sent += 1;
        let delivery_no = self.stats.sent;
        let delivery_attr = |n: u64| [("delivery", n.to_string())];
        if self.roll(self.profile.drop_pct) {
            self.stats.dropped += 1;
            self.note("chaos.drop", &delivery_attr(delivery_no));
            return;
        }
        if self.roll(self.profile.truncate_pct) && !delivery.is_empty() {
            let keep = (self.rng.next() as usize) % delivery.len();
            let lost = delivery.len() - keep;
            delivery.truncate(keep);
            self.stats.truncated += 1;
            self.note(
                "chaos.truncate",
                &[
                    ("delivery", delivery_no.to_string()),
                    ("bytes_lost", lost.to_string()),
                ],
            );
        }
        if self.roll(self.profile.flip_pct) && !delivery.is_empty() {
            let byte = (self.rng.next() as usize) % delivery.len();
            let bit = (self.rng.next() % 8) as u8;
            delivery[byte] ^= 1 << bit;
            self.stats.flipped += 1;
            self.note(
                "chaos.flip",
                &[
                    ("delivery", delivery_no.to_string()),
                    ("byte", byte.to_string()),
                    ("bit", bit.to_string()),
                ],
            );
        }
        let dup = self.roll(self.profile.dup_pct);
        if self.roll(self.profile.reorder_pct) && !self.queue.is_empty() {
            let at = (self.rng.next() as usize) % self.queue.len();
            self.queue.insert(at, delivery.clone());
            self.stats.reordered += 1;
            self.note(
                "chaos.reorder",
                &[
                    ("delivery", delivery_no.to_string()),
                    ("at", at.to_string()),
                ],
            );
        } else {
            self.queue.push_back(delivery.clone());
        }
        if dup {
            self.queue.push_back(delivery);
            self.stats.duplicated += 1;
            self.note("chaos.dup", &delivery_attr(delivery_no));
        }
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        let d = self.queue.pop_front()?;
        self.stats.delivered += 1;
        Some(d)
    }
}

/// SplitMix64 — tiny deterministic PRNG (the crate keeps its library
/// surface dependency-free; the workspace's `rand` stand-in is dev-only).
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ----------------------------------------------------------------------
// Shipper
// ----------------------------------------------------------------------

/// Reads a primary's durable history (checkpoint, sealed segments,
/// active log) and turns a replica's [`Need`] into deliveries.
///
/// The shipper holds no cursor of its own — it can be dropped and
/// rebuilt between rounds, and several replicas can be served from the
/// same storage.
#[derive(Debug)]
pub struct LogShipper<'a, S: Storage> {
    storage: &'a S,
}

/// One consistent read of the primary's shippable state.
struct ShipperState {
    manifest: SegmentManifest,
    ckpt_lsn: u64,
    ckpt_bytes: Option<Vec<u8>>,
    wal_frames: Vec<u8>,
    wal_first: Option<u64>,
    wal_last: Option<u64>,
}

impl ShipperState {
    fn tip(&self) -> u64 {
        let seg_last = self.manifest.segments.last().map_or(0, |s| s.last_lsn);
        self.ckpt_lsn.max(seg_last).max(self.wal_last.unwrap_or(0))
    }

    /// The oldest record LSN still on disk (segments, then the log).
    fn oldest_record(&self) -> Option<u64> {
        self.manifest.oldest_segment_first_lsn().or(self.wal_first)
    }
}

impl<'a, S: Storage> LogShipper<'a, S> {
    /// A shipper over a primary's storage (see
    /// [`DurableDatabase::storage`]).
    pub fn new(storage: &'a S) -> Self {
        LogShipper { storage }
    }

    fn load_state(&self) -> Result<ShipperState> {
        let manifest = SegmentManifest::load(self.storage)?;
        let ckpt_bytes = read_stable(self.storage, CHECKPOINT_FILE, READ_RETRIES)?;
        let ckpt_lsn = match &ckpt_bytes {
            None => 0,
            Some(bytes) => checkpoint_header_lsn(bytes)?,
        };
        let wal_bytes = read_stable(self.storage, WAL_FILE, READ_RETRIES)?.unwrap_or_default();
        let scan = scan_wal(&wal_bytes)?;
        Ok(ShipperState {
            manifest,
            ckpt_lsn,
            ckpt_bytes,
            wal_first: scan.records.first().map(|r| r.lsn),
            wal_last: scan.records.last().map(|r| r.lsn),
            // Ship only the valid prefix: a torn tail is unacknowledged.
            wal_frames: wal_bytes[..scan.valid_bytes].to_vec(),
        })
    }

    /// The highest durable LSN a replica can be brought to right now.
    pub fn tip(&self) -> Result<u64> {
        Ok(self.load_state()?.tip())
    }

    /// Bytes of history a replica at `applied_lsn` has not seen yet
    /// (modeled lag for status displays).
    pub fn lag_bytes(&self, applied_lsn: u64) -> Result<u64> {
        let st = self.load_state()?;
        let mut bytes: u64 = st
            .manifest
            .segments
            .iter()
            .filter(|s| s.last_lsn > applied_lsn)
            .map(|s| s.bytes)
            .sum();
        if st.wal_last.is_some_and(|l| l > applied_lsn) {
            bytes += st.wal_frames.len() as u64;
        }
        Ok(bytes)
    }

    /// Whether records from `lsn` onward are still on disk — when not,
    /// the pump renegotiates a (delta) re-seed instead of asking for
    /// history the shipper no longer has.
    pub fn can_serve_from(&self, lsn: u64) -> Result<bool> {
        Ok(self.load_state()?.oldest_record().is_some_and(|o| lsn >= o))
    }

    /// The current checkpoint's lineage, oldest first: the full base,
    /// then every delta up to (and including) `checkpoint.snap` itself.
    /// A full `checkpoint.snap` resolves to a single-element chain; no
    /// checkpoint at all to an empty one.
    fn checkpoint_chain(&self, st: &ShipperState) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut chain: Vec<(u64, Vec<u8>)> = Vec::new();
        let Some(mut cur) = st.ckpt_bytes.clone() else {
            return Ok(chain);
        };
        let mut cur_lsn = st.ckpt_lsn;
        loop {
            let parts = split_checkpoint(cur.clone(), "checkpoint")?;
            let base = if Database::is_delta_snapshot(&parts.body) {
                Some(Database::delta_base_id(&parts.body)?)
            } else {
                None
            };
            chain.push((cur_lsn, cur));
            let Some(base) = base else { break };
            if chain.iter().any(|(l, _)| *l == base) {
                return Err(DurableError::Corrupt(format!(
                    "delta checkpoint chain is cyclic at LSN {base}"
                )));
            }
            let name = checkpoint_archive_name(base);
            cur = read_stable(self.storage, &name, READ_RETRIES)?.ok_or_else(|| {
                DurableError::Corrupt(format!(
                    "checkpoint chain needs archive {name}, which is missing"
                ))
            })?;
            cur_lsn = base;
        }
        chain.reverse();
        Ok(chain)
    }

    /// Encode a full re-seed: the chain's full base as a `Checkpoint`
    /// delivery, every delta above it as a `DeltaCheckpoint`.
    fn push_chain(out: &mut Vec<Vec<u8>>, chain: Vec<(u64, Vec<u8>)>) {
        let mut links = chain.into_iter();
        if let Some((_, bytes)) = links.next() {
            out.push(ShipMessage::Checkpoint(bytes).encode());
        }
        for (_, bytes) in links {
            out.push(ShipMessage::DeltaCheckpoint(bytes).encode());
        }
    }

    /// Deliveries satisfying `need`: sealed segments + live tail from
    /// the requested LSN; or — when that history is gone (pruned) or the
    /// replica has nothing — the checkpoint chain followed by everything
    /// after it.  [`Need::DeltaBootstrap`] ships only the deltas above
    /// the replica's retained base when that base is in the lineage.
    pub fn deliveries_for(&self, need: Need) -> Result<Vec<Vec<u8>>> {
        let st = self.load_state()?;
        let mut out = Vec::new();
        let ship_from = match need {
            Need::From(l) if st.oldest_record().is_some_and(|o| l >= o) => l,
            Need::DeltaBootstrap(base) => {
                let chain = self.checkpoint_chain(&st)?;
                match chain.iter().position(|(l, _)| *l == base) {
                    Some(pos) => {
                        for (_, bytes) in chain.into_iter().skip(pos + 1) {
                            out.push(ShipMessage::DeltaCheckpoint(bytes).encode());
                        }
                    }
                    // The replica's base left our lineage: full re-seed.
                    None => Self::push_chain(&mut out, chain),
                }
                st.ckpt_lsn + 1
            }
            Need::From(_) | Need::Checkpoint => {
                Self::push_chain(&mut out, self.checkpoint_chain(&st)?);
                st.ckpt_lsn + 1
            }
        };
        for seg in &st.manifest.segments {
            if seg.last_lsn < ship_from {
                continue;
            }
            let data =
                read_stable(self.storage, &seg.file_name(), READ_RETRIES)?.ok_or_else(|| {
                    DurableError::Corrupt(format!(
                        "segment {} is in segments.manifest but missing",
                        seg.file_name()
                    ))
                })?;
            // The primary's own file must be intact before it leaves the
            // machine — at-rest corruption is a loud error, not a NACK.
            seg.verify(&data)?;
            out.push(
                ShipMessage::Segment {
                    seqno: seg.seqno,
                    first_lsn: seg.first_lsn,
                    last_lsn: seg.last_lsn,
                    frames: data,
                }
                .encode(),
            );
        }
        if !st.wal_frames.is_empty() && st.wal_last.is_some_and(|l| l >= ship_from) {
            out.push(ShipMessage::Frames(st.wal_frames).encode());
        }
        Ok(out)
    }
}

fn checkpoint_header_lsn(bytes: &[u8]) -> Result<u64> {
    let nl = bytes
        .iter()
        .position(|b| *b == b'\n')
        .ok_or_else(|| DurableError::Corrupt("checkpoint has no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| DurableError::Corrupt("checkpoint header is not UTF-8".into()))?;
    header
        .strip_prefix("CKPT")
        .map(str::trim)
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| DurableError::Corrupt(format!("bad checkpoint header `{header}`")))
}

// ----------------------------------------------------------------------
// The pump
// ----------------------------------------------------------------------

/// Modeled exponential backoff between fruitless shipping rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Ticks charged after the first fruitless round.
    pub base_ticks: u64,
    /// Ceiling on the per-round charge.
    pub cap_ticks: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ticks: 1,
            cap_ticks: 64,
        }
    }
}

impl BackoffPolicy {
    /// Ticks to wait after the `failures`-th consecutive fruitless round
    /// (1-based): `min(cap, base << (failures - 1))`.
    pub fn delay_for(&self, failures: u32) -> u64 {
        let shift = failures.saturating_sub(1).min(63);
        self.base_ticks
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.cap_ticks)
    }
}

/// Knobs for [`replicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicateOptions {
    /// Shipping rounds before giving up with
    /// [`DurableError::ReplicationStalled`].
    pub max_rounds: u64,
    /// Backoff schedule for fruitless rounds.
    pub backoff: BackoffPolicy,
}

impl Default for ReplicateOptions {
    fn default() -> Self {
        ReplicateOptions {
            max_rounds: 64,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// What a [`replicate`] pump did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Rounds driven (each: ship `needed()`, drain the channel).
    pub rounds: u64,
    /// Deliveries handed to the channel.
    pub deliveries_sent: u64,
    /// Deliveries that came out of the channel.
    pub deliveries_received: u64,
    /// Records the applier applied.
    pub records_applied: u64,
    /// Deliveries ignored as duplicates / stale.
    pub duplicates: u64,
    /// Deliveries NACKed for an LSN gap.
    pub gaps: u64,
    /// Deliveries NACKed for a damaged envelope.
    pub corrupt: u64,
    /// Modeled backoff ticks accumulated over fruitless rounds.
    pub backoff_ticks: u64,
    /// The replica's applied LSN at convergence.
    pub converged_lsn: u64,
}

/// Histogram bounds for records applied per shipping round.
const FRAMES_PER_ROUND_BOUNDS: [f64; 7] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Histogram bounds for bytes per shipped delivery.
const BYTES_PER_DELIVERY_BOUNDS: [f64; 6] = [256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0];
/// Histogram bounds for per-round modeled backoff charges.
const BACKOFF_DELAY_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Drive shipping rounds until the replica's applied LSN reaches the
/// primary's durable tip, or the round budget runs out
/// ([`DurableError::ReplicationStalled`]).
///
/// Each round ships what the applier says it needs, drains the channel
/// through [`ReplicaApplier::offer`], and — when nothing made progress —
/// charges modeled backoff ticks.  Emits `wal.ship.*` counters and
/// histograms on the primary's metrics and leaves `replica.*` gauges on
/// the replica's own database.  Every round is a `ship.round` span on
/// the primary's tracer, every NACK a `ship.nack` event (gap vs corrupt,
/// by LSN) and every fruitless round a `ship.backoff` event — so a
/// stall's error message carries the flight-recorder tail of what
/// actually happened ([`DurableDatabase::flight_recorder`]).
pub fn replicate<S: Storage, C: Channel>(
    primary: &DurableDatabase<S>,
    applier: &mut ReplicaApplier,
    channel: &mut C,
    opts: &ReplicateOptions,
) -> Result<ShipReport> {
    let shipper = LogShipper::new(primary.storage());
    let tracer = primary.database().tracer();
    let metrics = tracer.metrics();
    let mut report = ShipReport::default();
    let mut failures: u32 = 0;
    loop {
        let tip = shipper.tip()?;
        if applier.is_bootstrapped() && applier.applied_lsn() >= tip {
            break;
        }
        if report.rounds >= opts.max_rounds {
            let tail = primary
                .flight_recorder()
                .tail_summaries(FLIGHT_TAIL_EVENTS)
                .join(" | ");
            return Err(DurableError::ReplicationStalled(format!(
                "replica at LSN {} of {tip} after {} rounds ({} corrupt, {} gapped); \
                 flight tail: {}",
                applier.applied_lsn(),
                report.rounds,
                report.corrupt,
                report.gaps,
                if tail.is_empty() { "<empty>" } else { &tail },
            )));
        }
        report.rounds += 1;
        let mut span = tracer.span_with("ship.round", &[("round", report.rounds.to_string())]);
        let sent_before = report.deliveries_sent;
        let applied_before = report.records_applied;
        let mut need = applier.needed();
        if let Need::From(l) = need {
            if !shipper.can_serve_from(l)? {
                // The segments the replica wants are pruned: renegotiate
                // a re-seed — delta when the replica still holds a base
                // checkpoint, full otherwise.
                need = applier.reseed_need();
                let kind = match need {
                    Need::DeltaBootstrap(_) => "delta",
                    _ => "full",
                };
                tracer.event("ship.reseed", &[("kind", kind.to_string())]);
            }
        }
        for delivery in shipper.deliveries_for(need)? {
            metrics.observe(
                "wal.ship.bytes_per_delivery",
                &BYTES_PER_DELIVERY_BOUNDS,
                delivery.len() as f64,
            );
            channel.send(delivery);
            report.deliveries_sent += 1;
        }
        let mut progress = false;
        while let Some(delivery) = channel.recv() {
            report.deliveries_received += 1;
            match applier.offer(&delivery)? {
                OfferOutcome::Bootstrapped { lsn } => {
                    progress = true;
                    tracer.event("ship.bootstrap", &[("lsn", lsn.to_string())]);
                }
                OfferOutcome::Applied { records } => {
                    report.records_applied += records;
                    progress |= records > 0;
                }
                OfferOutcome::Duplicate => report.duplicates += 1,
                OfferOutcome::Gap { have, got } => {
                    report.gaps += 1;
                    tracer.event(
                        "ship.nack",
                        &[
                            ("kind", "gap".to_string()),
                            ("have", have.to_string()),
                            ("got", got.to_string()),
                        ],
                    );
                }
                OfferOutcome::Corrupt => {
                    report.corrupt += 1;
                    tracer.event(
                        "ship.nack",
                        &[
                            ("kind", "corrupt".to_string()),
                            ("have", applier.applied_lsn().to_string()),
                        ],
                    );
                }
            }
        }
        let round_applied = report.records_applied - applied_before;
        metrics.observe(
            "wal.ship.frames_per_round",
            &FRAMES_PER_ROUND_BOUNDS,
            round_applied as f64,
        );
        if progress {
            failures = 0;
        } else {
            failures += 1;
            let ticks = opts.backoff.delay_for(failures);
            report.backoff_ticks += ticks;
            metrics.observe(
                "wal.ship.backoff_delay",
                &BACKOFF_DELAY_BOUNDS,
                ticks as f64,
            );
            tracer.event(
                "ship.backoff",
                &[
                    ("failures", failures.to_string()),
                    ("ticks", ticks.to_string()),
                ],
            );
        }
        span.add_attr("sent", (report.deliveries_sent - sent_before).to_string());
        span.add_attr("applied", round_applied.to_string());
        span.finish();
    }
    report.converged_lsn = applier.applied_lsn();
    metrics.inc_counter("wal.ship.rounds", report.rounds);
    metrics.inc_counter("wal.ship.deliveries", report.deliveries_sent);
    metrics.inc_counter("wal.ship.records", report.records_applied);
    metrics.inc_counter("wal.ship.nacks", report.gaps + report.corrupt);
    metrics.inc_counter("wal.ship.backoff_ticks", report.backoff_ticks);
    metrics.set_gauge("wal.ship.replica_lsn", report.converged_lsn as f64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_message_round_trips() {
        let msgs = vec![
            ShipMessage::Checkpoint(b"CKPT 3\nASRIDS \nbody".to_vec()),
            ShipMessage::Segment {
                seqno: 2,
                first_lsn: 4,
                last_lsn: 9,
                frames: vec![1, 2, 3, 4],
            },
            ShipMessage::Frames(vec![9, 9, 9]),
        ];
        for m in msgs {
            let enc = m.encode();
            assert_eq!(ShipMessage::decode(&enc), Some(m));
        }
    }

    #[test]
    fn decode_rejects_damage() {
        let enc = ShipMessage::Frames(vec![7; 64]).encode();
        // Truncation at every length fails cleanly.
        for k in 0..enc.len() {
            assert_eq!(ShipMessage::decode(&enc[..k]), None, "truncated to {k}");
        }
        // Any single bit flip is caught by the envelope CRC (or the
        // length check).
        for byte in 0..enc.len() {
            let mut bad = enc.clone();
            bad[byte] ^= 0x10;
            assert_eq!(ShipMessage::decode(&bad), None, "flip at {byte}");
        }
        // Trailing garbage is rejected too.
        let mut long = enc.clone();
        long.push(0);
        assert_eq!(ShipMessage::decode(&long), None);
    }

    #[test]
    fn faulty_channel_blackout_drops_everything() {
        let mut ch = FaultyChannel::new(ChaosProfile::blackout(), 7);
        for _ in 0..5 {
            ch.send(vec![1, 2, 3]);
        }
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.stats().dropped, 5);
        assert_eq!(ch.undelivered(), 0);
    }

    #[test]
    fn faulty_channel_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut ch = FaultyChannel::new(ChaosProfile::from_seed(seed), seed);
            for i in 0..50u8 {
                ch.send(vec![i; 16]);
            }
            let mut out = Vec::new();
            while let Some(d) = ch.recv() {
                out.push(d);
            }
            (out, ch.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let b = BackoffPolicy {
            base_ticks: 2,
            cap_ticks: 16,
        };
        assert_eq!(b.delay_for(1), 2);
        assert_eq!(b.delay_for(2), 4);
        assert_eq!(b.delay_for(3), 8);
        assert_eq!(b.delay_for(4), 16);
        assert_eq!(b.delay_for(40), 16, "clamped at the cap");
    }
}
