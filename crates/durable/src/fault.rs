//! Fault injection: a [`Storage`] wrapper that crashes, tears and flips
//! bits on a deterministic schedule.
//!
//! The crash-recovery fuzz harness drives a database through a scripted
//! workload over a [`FaultyStorage`] and "pulls the plug" at a
//! pre-planned point.  [`FaultPlan`] describes that point:
//!
//! * `crash_after_appends = Some(n)` — the *n*-th append (0-based) to the
//!   log fails.  `torn_keep_bytes` bytes of that append still reach
//!   storage (a torn write); an optional [`BitFlip`] corrupts the
//!   surviving prefix first.
//! * `crash_on_atomic_write = Some(n)` — the *n*-th atomic whole-file
//!   write fails *before* replacing anything (rename-based atomicity
//!   means a crashed atomic write leaves the old content intact).
//!
//! Once any failpoint fires the wrapper is *dead*: every subsequent
//! operation returns [`DurableError::InjectedCrash`], modelling a machine
//! that stays down until the harness reboots it by reopening the
//! underlying storage without the wrapper.

use std::cell::Cell;
use std::rc::Rc;

use asr_obs::FlightRecorder;

use crate::error::{DurableError, Result};
use crate::storage::Storage;

/// Corrupt one bit of a torn append's surviving prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Which byte of the surviving prefix to corrupt (clamped to its
    /// last byte when out of range).
    pub byte: usize,
    /// Which bit (0–7) of that byte to flip.
    pub bit: u8,
}

/// Corrupt one bit of a single `read`'s *returned* bytes — a transient
/// read-path fault (bad DMA, an in-flight flip).  The bytes at rest stay
/// clean; only one delivery is mangled, then reads heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFlip {
    /// Which `read` call (0-based, counted across all files) to corrupt.
    pub nth: usize,
    /// Which byte of the returned content to corrupt (clamped to the last
    /// byte when out of range; a `None`/empty read is left untouched and
    /// the fault is spent).
    pub byte: usize,
    /// Which bit (0–7) of that byte to flip.
    pub bit: u8,
}

/// A deterministic schedule of injected failures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the n-th `append` call (0-based); `None` never crashes on
    /// append.
    pub crash_after_appends: Option<usize>,
    /// How many bytes of the failing append survive (a torn write).
    /// Clamped to the append's length; ignored unless
    /// `crash_after_appends` fires.
    pub torn_keep_bytes: usize,
    /// Optionally flip a bit in the surviving torn prefix.
    pub flip: Option<BitFlip>,
    /// Fail the n-th `write_atomic` call (0-based) without writing
    /// anything; `None` never crashes on atomic writes.
    pub crash_on_atomic_write: Option<usize>,
    /// Optionally corrupt one read's returned bytes in flight (one-shot;
    /// the machine does *not* crash — the caller just sees bad bytes
    /// once).
    pub flip_read: Option<ReadFlip>,
}

impl FaultPlan {
    /// A plan that never fires — the wrapper becomes a transparent proxy.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash cleanly after `n` appends have fully completed (the n-th
    /// append itself fails with nothing surviving).
    pub fn crash_at_append(n: usize) -> Self {
        FaultPlan {
            crash_after_appends: Some(n),
            ..Self::default()
        }
    }

    /// Crash on the n-th append, leaving `keep` bytes of it behind.
    pub fn torn_append(n: usize, keep: usize) -> Self {
        FaultPlan {
            crash_after_appends: Some(n),
            torn_keep_bytes: keep,
            ..Self::default()
        }
    }
}

/// A [`Storage`] decorator executing a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyStorage<S: Storage> {
    inner: S,
    plan: FaultPlan,
    appends_seen: usize,
    atomic_writes_seen: usize,
    reads_seen: Cell<usize>,
    read_flip_spent: Cell<bool>,
    dead: bool,
    recorder: Option<Rc<FlightRecorder>>,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wrap `inner`, injecting the failures scheduled by `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStorage {
            inner,
            plan,
            appends_seen: 0,
            atomic_writes_seen: 0,
            reads_seen: Cell::new(0),
            read_flip_spent: Cell::new(false),
            dead: false,
            recorder: None,
        }
    }

    /// Record every injected fault as a typed event in `recorder`.
    ///
    /// The injector writes to the black box directly (it sits *below*
    /// the database, which may not exist yet when a fault fires during
    /// open); sharing the recorder that a later
    /// [`crate::DurableDatabase::open_with_recorder`] recovers into puts
    /// the fault and the recovery it forced on one timeline.
    pub fn set_recorder(&mut self, recorder: Rc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Builder form of [`Self::set_recorder`].
    pub fn with_recorder(mut self, recorder: Rc<FlightRecorder>) -> Self {
        self.set_recorder(recorder);
        self
    }

    fn note(&self, name: &str, attrs: &[(&str, String)]) {
        if let Some(recorder) = &self.recorder {
            recorder.note(name, attrs);
        }
    }

    /// Whether a failpoint has fired (the simulated machine is down).
    pub fn crashed(&self) -> bool {
        self.dead
    }

    /// How many `append` calls the wrapper has observed so far.
    pub fn appends_seen(&self) -> usize {
        self.appends_seen
    }

    /// How many `write_atomic` calls the wrapper has observed so far.
    pub fn atomic_writes_seen(&self) -> usize {
        self.atomic_writes_seen
    }

    /// How many `read` calls the wrapper has observed so far.
    pub fn reads_seen(&self) -> usize {
        self.reads_seen.get()
    }

    /// Whether the scheduled transient read flip has already fired.
    pub fn read_flip_spent(&self) -> bool {
        self.read_flip_spent.get()
    }

    /// Unwrap the (possibly torn) underlying storage for "reboot".
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn check_alive(&self) -> Result<()> {
        if self.dead {
            Err(DurableError::InjectedCrash)
        } else {
            Ok(())
        }
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        self.check_alive()?;
        let n = self.reads_seen.get();
        self.reads_seen.set(n + 1);
        let mut out = self.inner.read(name)?;
        if let Some(flip) = self.plan.flip_read {
            if flip.nth == n && !self.read_flip_spent.get() {
                self.read_flip_spent.set(true);
                self.note(
                    "fault.read_flip",
                    &[
                        ("file", name.to_string()),
                        ("nth", n.to_string()),
                        ("byte", flip.byte.to_string()),
                        ("bit", flip.bit.to_string()),
                    ],
                );
                if let Some(data) = out.as_mut() {
                    if !data.is_empty() {
                        let byte = flip.byte.min(data.len() - 1);
                        data[byte] ^= 1 << (flip.bit % 8);
                    }
                }
            }
        }
        Ok(out)
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.check_alive()?;
        let n = self.atomic_writes_seen;
        self.atomic_writes_seen += 1;
        if self.plan.crash_on_atomic_write == Some(n) {
            // Rename-based atomic replacement: a crash before the rename
            // leaves the previous content untouched.
            self.dead = true;
            self.note(
                "fault.crash.atomic_write",
                &[("file", name.to_string()), ("nth", n.to_string())],
            );
            return Err(DurableError::InjectedCrash);
        }
        self.inner.write_atomic(name, data)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.check_alive()?;
        let n = self.appends_seen;
        self.appends_seen += 1;
        if self.plan.crash_after_appends == Some(n) {
            self.dead = true;
            let keep = self.plan.torn_keep_bytes.min(data.len());
            self.note(
                "fault.crash.append",
                &[
                    ("file", name.to_string()),
                    ("nth", n.to_string()),
                    ("torn_keep", keep.to_string()),
                    (
                        "flip",
                        self.plan
                            .flip
                            .map_or("none".to_string(), |f| format!("{}:{}", f.byte, f.bit)),
                    ),
                ],
            );
            if keep > 0 {
                let mut prefix = data[..keep].to_vec();
                if let Some(flip) = self.plan.flip {
                    let byte = flip.byte.min(keep - 1);
                    prefix[byte] ^= 1 << (flip.bit % 8);
                }
                self.inner.append(name, &prefix)?;
            }
            return Err(DurableError::InjectedCrash);
        }
        self.inner.append(name, data)
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.check_alive()?;
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn transparent_without_faults() {
        let mem = MemStorage::new();
        let mut s = FaultyStorage::new(mem.clone(), FaultPlan::none());
        s.append("log", b"abc").unwrap();
        s.write_atomic("snap", b"xyz").unwrap();
        assert!(!s.crashed());
        assert_eq!(mem.read("log").unwrap().unwrap(), b"abc");
        assert_eq!(mem.read("snap").unwrap().unwrap(), b"xyz");
    }

    #[test]
    fn crash_on_append_keeps_torn_prefix_then_poisons() {
        let mem = MemStorage::new();
        let mut s = FaultyStorage::new(mem.clone(), FaultPlan::torn_append(1, 2));
        s.append("log", b"first").unwrap();
        let err = s.append("log", b"second").unwrap_err();
        assert_eq!(err, DurableError::InjectedCrash);
        assert!(s.crashed());
        // Only the torn prefix of the failing append survived.
        assert_eq!(mem.read("log").unwrap().unwrap(), b"firstse");
        // Everything afterwards fails too.
        assert_eq!(s.read("log").unwrap_err(), DurableError::InjectedCrash);
        assert_eq!(
            s.append("log", b"x").unwrap_err(),
            DurableError::InjectedCrash
        );
        assert_eq!(s.remove("log").unwrap_err(), DurableError::InjectedCrash);
    }

    #[test]
    fn torn_prefix_bit_flip() {
        let mem = MemStorage::new();
        let plan = FaultPlan {
            crash_after_appends: Some(0),
            torn_keep_bytes: 3,
            flip: Some(BitFlip { byte: 1, bit: 0 }),
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(mem.clone(), plan);
        assert!(s.append("log", b"abcdef").is_err());
        assert_eq!(mem.read("log").unwrap().unwrap(), b"acc"); // 'b'^1='c'
    }

    #[test]
    fn read_flip_is_transient_and_one_shot() {
        let mem = MemStorage::new();
        let plan = FaultPlan {
            flip_read: Some(ReadFlip {
                nth: 1,
                byte: 0,
                bit: 1,
            }),
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(mem.clone(), plan);
        s.append("snap", b"abc").unwrap();
        assert_eq!(s.read("snap").unwrap().unwrap(), b"abc"); // read 0: clean
        assert_eq!(s.read("snap").unwrap().unwrap(), b"cbc"); // read 1: flipped in flight
        assert!(s.read_flip_spent());
        assert_eq!(s.read("snap").unwrap().unwrap(), b"abc"); // healed
        assert_eq!(mem.read("snap").unwrap().unwrap(), b"abc"); // at rest untouched
        assert_eq!(s.reads_seen(), 3);
        assert!(!s.crashed());
    }

    #[test]
    fn read_stable_heals_transient_flip() {
        use crate::storage::read_stable;
        let mem = MemStorage::new();
        let plan = FaultPlan {
            flip_read: Some(ReadFlip {
                nth: 0,
                byte: 2,
                bit: 7,
            }),
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(mem.clone(), plan);
        s.append("wal", b"hello").unwrap();
        // First read is mangled, but the stable reader keeps going until
        // two consecutive reads agree — and they agree on clean bytes.
        assert_eq!(read_stable(&s, "wal", 4).unwrap().unwrap(), b"hello");
        assert_eq!(read_stable(&s, "missing", 4).unwrap(), None);
    }

    #[test]
    fn injected_faults_land_in_the_flight_recorder() {
        let rec = Rc::new(FlightRecorder::new(16));
        let plan = FaultPlan {
            crash_after_appends: Some(1),
            torn_keep_bytes: 2,
            flip: Some(BitFlip { byte: 0, bit: 1 }),
            flip_read: Some(ReadFlip {
                nth: 0,
                byte: 3,
                bit: 7,
            }),
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(MemStorage::new(), plan).with_recorder(rec.clone());
        s.append("wal.log", b"first").unwrap();
        let _ = s.read("wal.log").unwrap();
        assert!(s.append("wal.log", b"second").is_err());
        let tail = rec.tail_summaries(10);
        assert_eq!(tail.len(), 2, "one event per injected fault: {tail:?}");
        assert!(tail[0].contains("fault.read_flip"), "{tail:?}");
        assert!(tail[0].contains("nth=0"), "{tail:?}");
        assert!(tail[1].contains("fault.crash.append"), "{tail:?}");
        assert!(
            tail[1].contains("torn_keep=2") && tail[1].contains("flip=0:1"),
            "{tail:?}"
        );

        let mut s2 = FaultyStorage::new(
            MemStorage::new(),
            FaultPlan {
                crash_on_atomic_write: Some(0),
                ..FaultPlan::default()
            },
        );
        s2.set_recorder(rec.clone());
        assert!(s2.write_atomic("snap", b"v").is_err());
        assert!(rec.tail_summaries(1)[0].contains("fault.crash.atomic_write"));
    }

    #[test]
    fn crash_on_atomic_write_preserves_old_content() {
        let mem = MemStorage::new();
        let plan = FaultPlan {
            crash_on_atomic_write: Some(1),
            ..FaultPlan::default()
        };
        let mut s = FaultyStorage::new(mem.clone(), plan);
        s.write_atomic("snap", b"v1").unwrap();
        assert!(s.write_atomic("snap", b"v2").is_err());
        assert_eq!(mem.read("snap").unwrap().unwrap(), b"v1");
    }
}
