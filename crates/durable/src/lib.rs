//! # asr-durable — durability for access-support databases
//!
//! Kemper & Moerkotte's access support relations are *derived* data: the
//! snapshot format (`asr-core/persist`) stores only their configuration
//! and rebuilds them on load.  That makes cold recovery O(database).
//! This crate adds the classical log-structured alternative so recovery
//! is O(delta) instead:
//!
//! * a **write-ahead log** ([`wal`]) of logical schema/object mutations
//!   and ASR maintenance operations — length-prefixed, CRC-32-checksummed
//!   frames with monotonic LSNs and group flush ([`FlushPolicy`]);
//! * **checkpoints** ([`db`]) that capture the whole database through the
//!   existing snapshot format, record the LSN they cover, and truncate
//!   the log;
//! * **recovery** that loads the latest checkpoint and replays the WAL
//!   tail through the incremental maintenance engine (Section 6 of the
//!   paper) rather than rebuilding every ASR from scratch, detecting and
//!   discarding torn tails by the CRC rule;
//! * a **fault-injection harness** ([`fault`], [`storage`]): storage is a
//!   trait with a real-file-system and an in-memory backend, and a
//!   decorator that crashes after N writes, tears the final append, or
//!   flips bits (on the write *and* read paths) — driving the exhaustive
//!   crash-recovery test in `tests/crash_recovery.rs`;
//! * **WAL segmentation** ([`segment`]): the log rotates into sealed,
//!   whole-file-checksummed segments indexed by `segments.manifest`,
//!   with archived checkpoint copies retained for history;
//! * **log shipping** ([`ship`], [`replica`]): a [`LogShipper`] streams
//!   sealed segments and live tail frames over an in-process [`Channel`]
//!   to a [`ReplicaApplier`], which detects gaps and corruption by LSN
//!   and CRC, NACKs, and converges a warm standby even when the channel
//!   drops, duplicates, reorders, truncates or bit-flips deliveries
//!   ([`FaultyChannel`]);
//! * **point-in-time recovery** ([`recover_to_lsn`]): rebuild the
//!   database as of any retained LSN from the newest archived checkpoint
//!   at or below the bound plus segment replay.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
pub mod db;
pub mod error;
pub mod fault;
pub mod record;
pub mod replica;
pub mod segment;
pub mod ship;
pub mod storage;
pub mod wal;

pub use crc::crc32;
pub use db::{
    recover_to_lsn, DeltaCheckpointReport, DurableDatabase, GroupCommitStatus, OpenDurable,
    PendingCheckpoint, PitrReport, PruneReport, RecoveryReport, WalStatus, CHECKPOINT_FILE,
    DEFAULT_SEGMENT_THRESHOLD, DELTA_CHAIN_LIMIT, FLIGHT_TAIL_EVENTS, MANIFEST_FILE, WAL_FILE,
};
pub use error::{DurableError, Result};
pub use fault::{BitFlip, FaultPlan, FaultyStorage, ReadFlip};
pub use record::{LogOp, Record};
pub use replica::{OfferOutcome, ReplicaApplier, ReplicaStatus};
pub use segment::{
    checkpoint_archive_name, segment_file_name, SegmentManifest, SegmentMeta, SEGMENT_MANIFEST_FILE,
};
pub use ship::{
    replicate, BackoffPolicy, Channel, ChannelStats, ChaosProfile, FaultyChannel, LogShipper,
    LosslessChannel, Need, ReplicateOptions, ShipReport,
};
pub use storage::{read_stable, FsStorage, MemStorage, Storage};
pub use wal::{frame, scan_wal, FlushPolicy, TornReason, WalScan, WalWriter};
