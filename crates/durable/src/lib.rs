//! # asr-durable — durability for access-support databases
//!
//! Kemper & Moerkotte's access support relations are *derived* data: the
//! snapshot format (`asr-core/persist`) stores only their configuration
//! and rebuilds them on load.  That makes cold recovery O(database).
//! This crate adds the classical log-structured alternative so recovery
//! is O(delta) instead:
//!
//! * a **write-ahead log** ([`wal`]) of logical schema/object mutations
//!   and ASR maintenance operations — length-prefixed, CRC-32-checksummed
//!   frames with monotonic LSNs and group flush ([`FlushPolicy`]);
//! * **checkpoints** ([`db`]) that capture the whole database through the
//!   existing snapshot format, record the LSN they cover, and truncate
//!   the log;
//! * **recovery** that loads the latest checkpoint and replays the WAL
//!   tail through the incremental maintenance engine (Section 6 of the
//!   paper) rather than rebuilding every ASR from scratch, detecting and
//!   discarding torn tails by the CRC rule;
//! * a **fault-injection harness** ([`fault`], [`storage`]): storage is a
//!   trait with a real-file-system and an in-memory backend, and a
//!   decorator that crashes after N writes, tears the final append, or
//!   flips bits — driving the exhaustive crash-recovery test in
//!   `tests/crash_recovery.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
pub mod db;
pub mod error;
pub mod fault;
pub mod record;
pub mod storage;
pub mod wal;

pub use crc::crc32;
pub use db::{
    DurableDatabase, OpenDurable, RecoveryReport, WalStatus, CHECKPOINT_FILE, MANIFEST_FILE,
    WAL_FILE,
};
pub use error::{DurableError, Result};
pub use fault::{BitFlip, FaultPlan, FaultyStorage};
pub use record::{LogOp, Record};
pub use storage::{FsStorage, MemStorage, Storage};
pub use wal::{frame, scan_wal, FlushPolicy, TornReason, WalScan, WalWriter};
