//! Logical WAL records: one per schema/object mutation or ASR
//! maintenance operation.
//!
//! Records are *logical* (the operation, not the page images it dirtied):
//! replay pushes each one back through [`asr_core::Database`]'s
//! incremental maintenance engine, so recovery costs are proportional to
//! the delta since the last checkpoint rather than to the database size.
//!
//! Each record's payload is a single line of space-separated tokens in
//! the same percent-escaped encoding as the GOM snapshot format:
//!
//! ```text
//! <lsn> NEW <type> i<oid>
//! <lsn> SET i<owner> <attr> <value>
//! <lsn> INS i<set> <value>
//! <lsn> REM i<set> <value>
//! <lsn> DEL i<oid>
//! <lsn> VAR <name> <value>
//! <lsn> SIZE <type> <bytes>
//! <lsn> MKASR <id> <path> <extension> <cut,cut,…> <0|1>
//! <lsn> RMASR <id>
//! ```
//!
//! `NEW` logs the OID the instantiation *produced*, and `MKASR` the
//! [`AsrId`] the creation produced: replay re-executes the operation with
//! the logged outcome forced (or verified), so recovered state is
//! bit-for-bit the state that was logged even when the OID generator or
//! ASR slot table would naturally have chosen differently.

use asr_core::AsrId;
use asr_gom::snapshot::{decode_value, encode_value, escape, unescape};
use asr_gom::{Oid, Value};

use crate::error::{DurableError, Result};

/// One logical operation against the database, as logged and replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// `instantiate(ty)` produced `oid`.
    New {
        /// Type name instantiated.
        ty: String,
        /// The OID the original execution assigned.
        oid: Oid,
    },
    /// `set_attribute(owner, attr, value)`.
    Set {
        /// Tuple object updated.
        owner: Oid,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// `insert_into_set(set, elem)` (covers attribute-set inserts too —
    /// the wrapper resolves the owning attribute to its set OID first).
    Insert {
        /// Set object.
        set: Oid,
        /// Element inserted.
        elem: Value,
    },
    /// `remove_from_set(set, elem)`.
    Remove {
        /// Set object.
        set: Oid,
        /// Element removed.
        elem: Value,
    },
    /// `delete_object(oid)`.
    Delete {
        /// Object deleted.
        oid: Oid,
    },
    /// `bind_variable(name, value)`.
    Bind {
        /// Variable name.
        name: String,
        /// Bound value.
        value: Value,
    },
    /// `set_type_size(ty, bytes)` — logged by type *name* so it replays
    /// against whatever `TypeId` the recovered schema assigns.
    TypeSize {
        /// Type name.
        ty: String,
        /// Clustered object size in bytes.
        bytes: usize,
    },
    /// `create_asr_on(path, config)` produced `id`.
    CreateAsr {
        /// The ASR id the original execution assigned.
        id: AsrId,
        /// Dotted path expression.
        path: String,
        /// Extension name (`canonical`/`full`/`left`/`right`).
        extension: String,
        /// Decomposition cut points.
        cuts: Vec<usize>,
        /// Whether set-occurrence OIDs are kept.
        keep_set_oids: bool,
    },
    /// `drop_asr(id)`.
    DropAsr {
        /// The dropped ASR's id.
        id: AsrId,
    },
}

/// A [`LogOp`] stamped with its log sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Monotonically increasing log sequence number (1-based).
    pub lsn: u64,
    /// The logged operation.
    pub op: LogOp,
}

fn oid_token(oid: Oid) -> String {
    format!("i{}", oid.as_raw())
}

fn parse_oid(tok: &str) -> Result<Oid> {
    tok.strip_prefix('i')
        .and_then(|r| r.parse::<u64>().ok())
        .map(Oid::from_raw)
        .ok_or_else(|| DurableError::Corrupt(format!("bad oid token `{tok}`")))
}

fn parse_value(tok: &str) -> Result<Value> {
    decode_value(tok).map_err(|e| DurableError::Corrupt(format!("bad value token `{tok}`: {e}")))
}

fn parse_usize(tok: &str, what: &str) -> Result<usize> {
    tok.parse()
        .map_err(|_| DurableError::Corrupt(format!("bad {what} `{tok}`")))
}

impl Record {
    /// Serialize to the space-separated payload line (no trailing newline).
    pub fn to_payload(&self) -> String {
        let lsn = self.lsn;
        match &self.op {
            LogOp::New { ty, oid } => {
                format!("{lsn} NEW {} {}", escape(ty), oid_token(*oid))
            }
            LogOp::Set { owner, attr, value } => format!(
                "{lsn} SET {} {} {}",
                oid_token(*owner),
                escape(attr),
                encode_value(value)
            ),
            LogOp::Insert { set, elem } => {
                format!("{lsn} INS {} {}", oid_token(*set), encode_value(elem))
            }
            LogOp::Remove { set, elem } => {
                format!("{lsn} REM {} {}", oid_token(*set), encode_value(elem))
            }
            LogOp::Delete { oid } => format!("{lsn} DEL {}", oid_token(*oid)),
            LogOp::Bind { name, value } => {
                format!("{lsn} VAR {} {}", escape(name), encode_value(value))
            }
            LogOp::TypeSize { ty, bytes } => {
                format!("{lsn} SIZE {} {bytes}", escape(ty))
            }
            LogOp::CreateAsr {
                id,
                path,
                extension,
                cuts,
                keep_set_oids,
            } => {
                let cuts: Vec<String> = cuts.iter().map(ToString::to_string).collect();
                format!(
                    "{lsn} MKASR {id} {} {} {} {}",
                    escape(path),
                    escape(extension),
                    cuts.join(","),
                    u8::from(*keep_set_oids)
                )
            }
            LogOp::DropAsr { id } => format!("{lsn} RMASR {id}"),
        }
    }

    /// Parse a payload line back into a record.
    ///
    /// Payloads reaching this parser have already passed their CRC, so a
    /// parse failure is a version mismatch or logic bug — a hard
    /// [`DurableError::Corrupt`], not a silently discardable torn tail.
    pub fn from_payload(line: &str) -> Result<Record> {
        let bad = |msg: String| DurableError::Corrupt(msg);
        let toks: Vec<&str> = line.split(' ').collect();
        if toks.len() < 2 {
            return Err(bad(format!("record too short: `{line}`")));
        }
        let lsn: u64 = toks[0]
            .parse()
            .map_err(|_| bad(format!("bad lsn `{}`", toks[0])))?;
        let arity = |n: usize| -> Result<()> {
            if toks.len() == n {
                Ok(())
            } else {
                Err(bad(format!("wrong arity for `{line}`")))
            }
        };
        let un = |tok: &str| -> Result<String> {
            unescape(tok).map_err(|e| bad(format!("bad token `{tok}`: {e}")))
        };
        let op = match toks[1] {
            "NEW" => {
                arity(4)?;
                LogOp::New {
                    ty: un(toks[2])?,
                    oid: parse_oid(toks[3])?,
                }
            }
            "SET" => {
                arity(5)?;
                LogOp::Set {
                    owner: parse_oid(toks[2])?,
                    attr: un(toks[3])?,
                    value: parse_value(toks[4])?,
                }
            }
            "INS" => {
                arity(4)?;
                LogOp::Insert {
                    set: parse_oid(toks[2])?,
                    elem: parse_value(toks[3])?,
                }
            }
            "REM" => {
                arity(4)?;
                LogOp::Remove {
                    set: parse_oid(toks[2])?,
                    elem: parse_value(toks[3])?,
                }
            }
            "DEL" => {
                arity(3)?;
                LogOp::Delete {
                    oid: parse_oid(toks[2])?,
                }
            }
            "VAR" => {
                arity(4)?;
                LogOp::Bind {
                    name: un(toks[2])?,
                    value: parse_value(toks[3])?,
                }
            }
            "SIZE" => {
                arity(4)?;
                LogOp::TypeSize {
                    ty: un(toks[2])?,
                    bytes: parse_usize(toks[3], "size")?,
                }
            }
            "MKASR" => {
                arity(7)?;
                let cuts = toks[5]
                    .split(',')
                    .filter(|c| !c.is_empty())
                    .map(|c| parse_usize(c, "cut"))
                    .collect::<Result<Vec<_>>>()?;
                LogOp::CreateAsr {
                    id: parse_usize(toks[2], "asr id")?,
                    path: un(toks[3])?,
                    extension: un(toks[4])?,
                    cuts,
                    keep_set_oids: toks[6] == "1",
                }
            }
            "RMASR" => {
                arity(3)?;
                LogOp::DropAsr {
                    id: parse_usize(toks[2], "asr id")?,
                }
            }
            other => return Err(bad(format!("unknown record tag `{other}`"))),
        };
        Ok(Record { lsn, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogOp> {
        vec![
            LogOp::New {
                ty: "ROBOT ARM".into(),
                oid: Oid::from_raw(17),
            },
            LogOp::Set {
                owner: Oid::from_raw(3),
                attr: "Name".into(),
                value: Value::string("a b%c=d"),
            },
            LogOp::Insert {
                set: Oid::from_raw(9),
                elem: Value::Ref(Oid::from_raw(2)),
            },
            LogOp::Remove {
                set: Oid::from_raw(9),
                elem: Value::Null,
            },
            LogOp::Delete {
                oid: Oid::from_raw(0),
            },
            LogOp::Bind {
                name: "MyVar".into(),
                value: Value::Integer(-5),
            },
            LogOp::TypeSize {
                ty: "Division".into(),
                bytes: 500,
            },
            LogOp::CreateAsr {
                id: 2,
                path: "ROBOT.Arm.MountedTool".into(),
                extension: "full".into(),
                cuts: vec![0, 2, 3],
                keep_set_oids: true,
            },
            LogOp::DropAsr { id: 2 },
        ]
    }

    #[test]
    fn payload_round_trip() {
        for (i, op) in samples().into_iter().enumerate() {
            let rec = Record {
                lsn: i as u64 + 1,
                op,
            };
            let line = rec.to_payload();
            assert!(!line.contains('\n'), "single line: {line}");
            let back = Record::from_payload(&line).unwrap();
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn malformed_payloads_are_corrupt_errors() {
        for bad in [
            "",
            "5",
            "x NEW T i1",
            "5 NEW T",
            "5 NEW T zebra",
            "5 SET i1 Name",
            "5 SET i1 Name Q:7",
            "5 MKASR 0 P full 0,x 1",
            "5 MKASR nine P full 0 1",
            "5 BOGUS i1",
            "5 SIZE T many",
        ] {
            let err = Record::from_payload(bad).unwrap_err();
            assert!(matches!(err, DurableError::Corrupt(_)), "`{bad}` → {err:?}");
        }
    }
}
