//! The write-ahead log: checksummed framing, group flush, and the
//! torn-tail scanner used during recovery.
//!
//! # On-disk frame
//!
//! Each record occupies one frame of
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! The payload is the record's text line ([`Record::to_payload`]).  The
//! CRC covers only the payload; the length prefix is implicitly validated
//! by the CRC check (a corrupted length either points past the end of the
//! file — an incomplete frame — or frames the wrong bytes, which then
//! fail the CRC).
//!
//! # Torn-tail rule
//!
//! A crash can tear the last append, so [`scan_wal`] stops — and recovery
//! discards everything from that offset on — at the first of:
//!
//! 1. an incomplete 8-byte frame header,
//! 2. a length that exceeds the remaining bytes,
//! 3. a CRC mismatch.
//!
//! A frame that passes its CRC but fails to *parse* is different: the
//! bytes were written intact, so the log is from an incompatible version
//! or a logic bug, and recovery fails with [`DurableError::Corrupt`]
//! rather than silently dropping acknowledged history.

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::record::Record;
use crate::storage::Storage;

/// Maximum sane payload length (a frame claiming more is treated as torn
/// garbage even if the file happens to be long enough).
const MAX_PAYLOAD: u32 = 1 << 24;

/// When buffered records are forced to storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every record — maximum durability, one append each.
    EveryRecord,
    /// Group commit: flush once `n` records are pending (and on
    /// checkpoint/explicit flush).  Up to `n - 1` acknowledged operations
    /// can be lost in a crash.
    EveryN(usize),
    /// Flush only on an explicit [`WalWriter::flush`] (or checkpoint).
    Explicit,
}

impl FlushPolicy {
    fn threshold(self) -> usize {
        match self {
            FlushPolicy::EveryRecord => 1,
            FlushPolicy::EveryN(n) => n.max(1),
            FlushPolicy::Explicit => usize::MAX,
        }
    }
}

/// Frame one payload: `[len][crc][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a WAL scan stopped before the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than 8 bytes remained — a torn frame header.
    PartialHeader,
    /// The header's length points past the end of the file (or is
    /// implausibly large).
    LengthBeyondEof,
    /// The payload bytes do not match the header's CRC.
    CrcMismatch,
}

impl TornReason {
    /// Short human-readable label for status output.
    pub fn label(self) -> &'static str {
        match self {
            TornReason::PartialHeader => "partial header",
            TornReason::LengthBeyondEof => "length beyond EOF",
            TornReason::CrcMismatch => "crc mismatch",
        }
    }
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact record, in log order.
    pub records: Vec<Record>,
    /// Bytes of the valid prefix (where the next append would go after a
    /// truncating recovery).
    pub valid_bytes: usize,
    /// Bytes of discarded tail (0 when the file ends cleanly).
    pub torn_bytes: usize,
    /// Why the tail was discarded, when it was.
    pub torn_reason: Option<TornReason>,
}

/// Scan raw WAL bytes, applying the torn-tail rule.
///
/// Returns `Err(Corrupt)` only for CRC-valid frames whose payload fails
/// to parse — torn tails are reported in the scan result, not as errors.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn_reason = None;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < 8 {
            torn_reason = Some(TornReason::PartialHeader);
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD || (len as usize) > remaining - 8 {
            torn_reason = Some(TornReason::LengthBeyondEof);
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            torn_reason = Some(TornReason::CrcMismatch);
            break;
        }
        let text = std::str::from_utf8(payload).map_err(|_| {
            DurableError::Corrupt(format!("CRC-valid record at offset {pos} is not UTF-8"))
        })?;
        records.push(Record::from_payload(text)?);
        pos += 8 + len as usize;
    }
    Ok(WalScan {
        records,
        valid_bytes: pos,
        torn_bytes: bytes.len() - pos,
        torn_reason,
    })
}

/// The append side of the log: frames records, buffers them according to
/// the [`FlushPolicy`], and appends to a file in the provided storage.
#[derive(Debug)]
pub struct WalWriter {
    file: String,
    policy: FlushPolicy,
    next_lsn: u64,
    buf: Vec<u8>,
    pending: usize,
    durable_bytes: usize,
    flushes: u64,
}

impl WalWriter {
    /// A writer appending to `file`, continuing after `durable_bytes` of
    /// existing log with `next_lsn` as the next sequence number.
    pub fn new(
        file: impl Into<String>,
        policy: FlushPolicy,
        next_lsn: u64,
        durable_bytes: usize,
    ) -> Self {
        WalWriter {
            file: file.into(),
            policy,
            next_lsn,
            buf: Vec::new(),
            pending: 0,
            durable_bytes,
            flushes: 0,
        }
    }

    /// The LSN the next logged operation will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the last record handed out (0 before the first).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Records framed but not yet flushed to storage.
    pub fn pending_records(&self) -> usize {
        self.pending
    }

    /// Bytes known durable in the log file.
    pub fn durable_bytes(&self) -> usize {
        self.durable_bytes
    }

    /// Number of storage appends performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The active flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Change the flush policy; takes effect from the next append.
    pub fn set_policy(&mut self, policy: FlushPolicy) {
        self.policy = policy;
    }

    /// Stamp `op` with the next LSN, frame it, and flush if the policy
    /// says so.  Returns the record's LSN.
    pub fn append<S: Storage>(&mut self, storage: &mut S, op: crate::record::LogOp) -> Result<u64> {
        let lsn = self.next_lsn;
        let rec = Record { lsn, op };
        self.buf
            .extend_from_slice(&frame(rec.to_payload().as_bytes()));
        self.next_lsn += 1;
        self.pending += 1;
        if self.pending >= self.policy.threshold() {
            self.flush(storage)?;
        }
        Ok(lsn)
    }

    /// Force all buffered records to storage (one group append).
    pub fn flush<S: Storage>(&mut self, storage: &mut S) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        storage.append(&self.file, &self.buf)?;
        self.durable_bytes += self.buf.len();
        self.buf.clear();
        self.pending = 0;
        self.flushes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogOp;
    use crate::storage::MemStorage;
    use asr_gom::{Oid, Value};

    fn op(i: u64) -> LogOp {
        LogOp::Set {
            owner: Oid::from_raw(i),
            attr: "Name".into(),
            value: Value::Integer(i as i64),
        }
    }

    #[test]
    fn every_record_policy_appends_each() {
        let mut mem = MemStorage::new();
        let mut w = WalWriter::new("wal.log", FlushPolicy::EveryRecord, 1, 0);
        for i in 0..3 {
            let lsn = w.append(&mut mem, op(i)).unwrap();
            assert_eq!(lsn, i + 1);
        }
        assert_eq!(w.flushes(), 3);
        let scan = scan_wal(&mem.read("wal.log").unwrap().unwrap()).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records[2].lsn, 3);
        assert_eq!(scan.valid_bytes, w.durable_bytes());
    }

    #[test]
    fn group_commit_buffers_until_threshold() {
        let mut mem = MemStorage::new();
        let mut w = WalWriter::new("wal.log", FlushPolicy::EveryN(3), 1, 0);
        w.append(&mut mem, op(0)).unwrap();
        w.append(&mut mem, op(1)).unwrap();
        assert_eq!(mem.len("wal.log"), 0, "nothing durable yet");
        assert_eq!(w.pending_records(), 2);
        w.append(&mut mem, op(2)).unwrap();
        assert_eq!(w.flushes(), 1, "one group append for three records");
        assert_eq!(
            scan_wal(&mem.read("wal.log").unwrap().unwrap())
                .unwrap()
                .records
                .len(),
            3
        );
    }

    #[test]
    fn explicit_policy_waits_for_flush() {
        let mut mem = MemStorage::new();
        let mut w = WalWriter::new("wal.log", FlushPolicy::Explicit, 1, 0);
        for i in 0..5 {
            w.append(&mut mem, op(i)).unwrap();
        }
        assert_eq!(mem.len("wal.log"), 0);
        w.flush(&mut mem).unwrap();
        w.flush(&mut mem).unwrap(); // idempotent when empty
        assert_eq!(w.flushes(), 1);
        assert_eq!(
            scan_wal(&mem.read("wal.log").unwrap().unwrap())
                .unwrap()
                .records
                .len(),
            5
        );
    }

    #[test]
    fn scan_detects_each_torn_tail_shape() {
        let mut mem = MemStorage::new();
        let mut w = WalWriter::new("wal.log", FlushPolicy::EveryRecord, 1, 0);
        w.append(&mut mem, op(0)).unwrap();
        w.append(&mut mem, op(1)).unwrap();
        let clean = mem.read("wal.log").unwrap().unwrap();

        // Partial header.
        let mut torn = clean.clone();
        torn.extend_from_slice(&[1, 2, 3]);
        let scan = scan_wal(&torn).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_reason, Some(TornReason::PartialHeader));
        assert_eq!(scan.torn_bytes, 3);

        // Length beyond EOF: full header claiming a huge payload.
        let mut torn = clean.clone();
        torn.extend_from_slice(&999u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"short");
        let scan = scan_wal(&torn).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_reason, Some(TornReason::LengthBeyondEof));

        // CRC mismatch: flip a payload bit of the *last* record.
        let mut torn = clean.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        let scan = scan_wal(&torn).unwrap();
        assert_eq!(scan.records.len(), 1, "first record still intact");
        assert_eq!(scan.torn_reason, Some(TornReason::CrcMismatch));
        assert!(scan.torn_bytes > 8);

        // Truncation at every byte offset never errors and never loses
        // more than the torn record.
        for k in 0..clean.len() {
            let scan = scan_wal(&clean[..k]).unwrap();
            assert!(scan.records.len() <= 2);
            assert_eq!(scan.valid_bytes + scan.torn_bytes, k);
        }
    }

    #[test]
    fn crc_valid_garbage_is_a_hard_error() {
        let framed = frame(b"not a record at all");
        let err = scan_wal(&framed).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "{err:?}");
        let framed = frame(&[0xFF, 0xFE, 0x80]);
        let err = scan_wal(&framed).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn writer_resumes_after_existing_log() {
        let mut mem = MemStorage::new();
        let mut w = WalWriter::new("wal.log", FlushPolicy::EveryRecord, 1, 0);
        w.append(&mut mem, op(0)).unwrap();
        let bytes = mem.read("wal.log").unwrap().unwrap();
        let scan = scan_wal(&bytes).unwrap();
        let mut w2 = WalWriter::new(
            "wal.log",
            FlushPolicy::EveryRecord,
            scan.records.last().unwrap().lsn + 1,
            scan.valid_bytes,
        );
        w2.append(&mut mem, op(1)).unwrap();
        let scan = scan_wal(&mem.read("wal.log").unwrap().unwrap()).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].lsn, 2);
    }
}
