//! The receiving side of log shipping: apply deliveries, detect gaps
//! and corruption, and expose a NACK cursor.
//!
//! A [`ReplicaApplier`] is the warm standby's state machine.  It starts
//! empty, bootstraps from a shipped checkpoint, then applies segment and
//! tail frames strictly in LSN order through the same replay engine
//! crash recovery uses.  Anything else — a damaged envelope, an LSN that
//! skips ahead, a stale duplicate — is *classified*, counted, and
//! reported back as an [`OfferOutcome`] so the shipping pump can NACK
//! and re-ship; the applier's own state only ever advances along valid,
//! contiguous history.  A replay that contradicts logged history (an
//! insert recorded as effective replaying as a no-op) is a typed error,
//! never a silent divergence.
//!
//! The applier retains the byte image of the last full-state checkpoint
//! it absorbed.  When the primary has pruned the segments the replica
//! would otherwise replay, the pump renegotiates with
//! [`Need::DeltaBootstrap`] carrying that base's LSN, and the shipper
//! sends only the delta checkpoints above it — each applied strictly
//! against the retained base, which is then re-synthesized from the
//! patched database so the byte-identity oracle keeps holding.

use std::collections::BTreeMap;

use asr_core::{AsrId, Database};

use crate::db::{apply_op, parse_checkpoint, remap_from_ids, split_checkpoint};
use crate::db::{ASRIDS_MAGIC, CKPT_MAGIC};
use crate::error::Result;
use crate::ship::{Need, ShipMessage};
use crate::wal::scan_wal;

/// How the applier classified one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// A checkpoint delivery seeded (or re-seeded) the replica at this
    /// LSN.
    Bootstrapped {
        /// The checkpoint's covering LSN.
        lsn: u64,
    },
    /// Frames applied; `records` advanced the replica (0 never occurs —
    /// a delivery whose records are all old classifies as `Duplicate`).
    Applied {
        /// Records newly applied from this delivery.
        records: u64,
    },
    /// Everything in the delivery was already applied (duplicated or
    /// re-shipped history) — ignored.
    Duplicate,
    /// The delivery starts past the replica's frontier (something before
    /// it was lost or reordered) — NACK, nothing applied.
    Gap {
        /// The replica's applied LSN.
        have: u64,
        /// The first LSN the delivery offered.
        got: u64,
    },
    /// The envelope was damaged (truncated or failing its CRC), or
    /// frames inside it were — NACK, nothing applied.
    Corrupt,
}

/// A point-in-time summary of the applier (what `\replica status`
/// prints, lag aside — lag needs the primary's tip).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Whether a checkpoint has seeded the replica yet.
    pub bootstrapped: bool,
    /// Highest contiguously applied LSN.
    pub applied_lsn: u64,
    /// Records applied over the replica's lifetime.
    pub records_applied: u64,
    /// Checkpoint bootstraps (1 normally; more after re-seeds).
    pub bootstraps: u64,
    /// Bootstraps served by delta checkpoints patched onto a retained
    /// base (a subset of `bootstraps`).
    pub delta_bootstraps: u64,
    /// Deliveries ignored as duplicates.
    pub duplicates: u64,
    /// Deliveries NACKed for an LSN gap.
    pub gaps: u64,
    /// Deliveries NACKed as corrupt.
    pub corrupt: u64,
    /// Total delivery bytes offered (including damaged ones).
    pub bytes_received: u64,
}

/// The byte image of the last full-state checkpoint the replica
/// absorbed — what a delta checkpoint patches against.
#[derive(Debug)]
struct RetainedBase {
    lsn: u64,
    snap: Vec<u8>,
}

/// The replica-side state machine (see module docs).
#[derive(Debug, Default)]
pub struct ReplicaApplier {
    db: Option<Database>,
    applied_lsn: u64,
    asr_remap: BTreeMap<AsrId, AsrId>,
    base: Option<RetainedBase>,
    status: ReplicaStatus,
}

impl ReplicaApplier {
    /// An empty, unseeded replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a checkpoint has seeded the replica.
    pub fn is_bootstrapped(&self) -> bool {
        self.db.is_some()
    }

    /// Highest contiguously applied LSN (0 before bootstrap).
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn
    }

    /// What the shipper should send next — the NACK/resume cursor.
    pub fn needed(&self) -> Need {
        if self.db.is_some() {
            Need::From(self.applied_lsn + 1)
        } else {
            Need::Checkpoint
        }
    }

    /// What to ask for when [`Self::needed`]'s cursor can no longer be
    /// served (the primary pruned that history): a delta bootstrap on
    /// the retained base when there is one, a full checkpoint otherwise.
    pub fn reseed_need(&self) -> Need {
        match &self.base {
            Some(b) => Need::DeltaBootstrap(b.lsn),
            None => Need::Checkpoint,
        }
    }

    /// The replica database, once bootstrapped (read access for queries
    /// and the convergence check).
    pub fn db(&self) -> Option<&Database> {
        self.db.as_ref()
    }

    /// Take the replica database out (e.g. to promote it).
    pub fn into_database(self) -> Option<Database> {
        self.db
    }

    /// The replica's snapshot serialization — the byte-identity oracle
    /// tests compare against the primary's.
    pub fn snapshot(&self) -> Option<String> {
        self.db.as_ref().map(Database::save_to_string)
    }

    /// Current counters.
    pub fn status(&self) -> ReplicaStatus {
        self.status
    }

    /// Classify and (when valid and in order) apply one delivery.
    ///
    /// `Err` is reserved for conditions that must stop replication
    /// loudly: a CRC-valid delivery whose replay contradicts logged
    /// history, or a replay-side database failure.  Everything the
    /// channel can cause — damage, loss-induced gaps, duplication —
    /// comes back as an `Ok` outcome for the pump to retry.
    pub fn offer(&mut self, delivery: &[u8]) -> Result<OfferOutcome> {
        self.status.bytes_received += delivery.len() as u64;
        let Some(msg) = ShipMessage::decode(delivery) else {
            self.status.corrupt += 1;
            return Ok(OfferOutcome::Corrupt);
        };
        let outcome = match msg {
            ShipMessage::Checkpoint(bytes) => {
                let parsed = match parse_checkpoint(bytes.clone(), "shipped checkpoint") {
                    Ok(p) => p,
                    Err(_) => {
                        // The envelope CRC passed but the snapshot does
                        // not parse — a mangled delivery that the CRC
                        // could not catch is still channel damage from
                        // the replica's point of view: NACK and re-ship.
                        self.status.corrupt += 1;
                        return Ok(OfferOutcome::Corrupt);
                    }
                };
                if self.db.is_some() && parsed.lsn <= self.applied_lsn {
                    self.status.duplicates += 1;
                    OfferOutcome::Duplicate
                } else {
                    self.applied_lsn = parsed.lsn;
                    self.asr_remap = parsed.asr_remap;
                    self.db = Some(parsed.db);
                    self.base = Some(RetainedBase {
                        lsn: parsed.lsn,
                        snap: bytes,
                    });
                    self.status.bootstraps += 1;
                    OfferOutcome::Bootstrapped { lsn: parsed.lsn }
                }
            }
            ShipMessage::DeltaCheckpoint(bytes) => self.offer_delta(bytes)?,
            ShipMessage::Segment { frames, .. } | ShipMessage::Frames(frames) => {
                let Some(db) = self.db.as_mut() else {
                    // Frames before any checkpoint: can't apply anything.
                    // (No database yet means no tracer to record the NACK
                    // on — the shipping pump records it on the primary.)
                    self.status.gaps += 1;
                    return Ok(OfferOutcome::Gap { have: 0, got: 0 });
                };
                // The replica records its side of the round on its own
                // tracer; an early NACK return drops the span, which
                // still finalizes with whatever was applied so far.
                let mut span = db.tracer().span("replica.apply");
                let Ok(scan) = scan_wal(&frames) else {
                    self.status.corrupt += 1;
                    db.tracer()
                        .event("replica.nack", &[("kind", "corrupt".to_string())]);
                    return Ok(OfferOutcome::Corrupt);
                };
                if scan.torn_bytes > 0 {
                    // The shipper only ships valid prefixes; torn frames
                    // inside a delivery mean the channel damaged it in a
                    // way the envelope CRC did not cover (it did — but
                    // stay defensive).
                    self.status.corrupt += 1;
                    db.tracer()
                        .event("replica.nack", &[("kind", "corrupt".to_string())]);
                    return Ok(OfferOutcome::Corrupt);
                }
                let mut applied = 0u64;
                for rec in &scan.records {
                    if rec.lsn <= self.applied_lsn {
                        continue; // overlap with already-applied history
                    }
                    if rec.lsn != self.applied_lsn + 1 {
                        self.status.gaps += 1;
                        db.tracer().event(
                            "replica.nack",
                            &[
                                ("kind", "gap".to_string()),
                                ("have", self.applied_lsn.to_string()),
                                ("got", rec.lsn.to_string()),
                            ],
                        );
                        return Ok(OfferOutcome::Gap {
                            have: self.applied_lsn,
                            got: rec.lsn,
                        });
                    }
                    apply_op(db, &rec.op, &mut self.asr_remap)?;
                    self.applied_lsn = rec.lsn;
                    applied += 1;
                }
                self.status.records_applied += applied;
                span.add_attr("applied", applied.to_string());
                span.finish();
                if applied == 0 {
                    self.status.duplicates += 1;
                    OfferOutcome::Duplicate
                } else {
                    OfferOutcome::Applied { records: applied }
                }
            }
        };
        self.status.bootstrapped = self.db.is_some();
        self.status.applied_lsn = self.applied_lsn;
        if let Some(db) = &self.db {
            let metrics = db.tracer().metrics();
            metrics.set_gauge("replica.applied_lsn", self.applied_lsn as f64);
            metrics.set_gauge("replica.gaps", self.status.gaps as f64);
            metrics.set_gauge("replica.corrupt", self.status.corrupt as f64);
        }
        Ok(outcome)
    }

    /// Classify and apply a delta checkpoint delivery against the
    /// retained base.  Lineage decides: a delta whose embedded base is
    /// the retained base applies even when its LSN trails `applied_lsn`
    /// (the replica may have replayed frames past the base); a delta on
    /// some *other* base is stale history (duplicate) or a lost link in
    /// the chain (gap).
    fn offer_delta(&mut self, bytes: Vec<u8>) -> Result<OfferOutcome> {
        let corrupt = |status: &mut ReplicaStatus| {
            status.corrupt += 1;
            Ok(OfferOutcome::Corrupt)
        };
        let Ok(parts) = split_checkpoint(bytes, "shipped delta checkpoint") else {
            return corrupt(&mut self.status);
        };
        let Ok(base_id) = Database::delta_base_id(&parts.body) else {
            return corrupt(&mut self.status);
        };
        if parts.lsn <= base_id {
            // A delta claiming to cover no more history than its own
            // base is self-referential damage, not valid lineage.
            return corrupt(&mut self.status);
        }
        let Some(base) = &self.base else {
            self.status.gaps += 1;
            return Ok(OfferOutcome::Gap {
                have: 0,
                got: parts.lsn,
            });
        };
        if base.lsn != base_id {
            return Ok(if parts.lsn <= self.applied_lsn {
                self.status.duplicates += 1;
                OfferOutcome::Duplicate
            } else {
                self.status.gaps += 1;
                OfferOutcome::Gap {
                    have: base.lsn,
                    got: parts.lsn,
                }
            });
        }
        // The retained base came from a delivery that already parsed (or
        // from our own serialization): failure here is replica-local
        // state damage, which must stop replication loudly.
        let base_parsed = parse_checkpoint(base.snap.clone(), "retained base checkpoint")?;
        let Ok(patched) = base_parsed.db.apply_delta_from_string(&parts.body) else {
            // Strict apply refused the delta (page damage, unknown ASR,
            // …): channel damage from the replica's point of view.
            return corrupt(&mut self.status);
        };
        self.applied_lsn = parts.lsn;
        self.asr_remap = remap_from_ids(&parts.session_ids);
        // Re-synthesize the retained base from the patched database so
        // the next delta in the chain lands on full-state bytes — and so
        // byte-identity with the primary's serialization keeps holding.
        let ids: Vec<String> = parts.session_ids.iter().map(AsrId::to_string).collect();
        let snap = format!(
            "{CKPT_MAGIC} {}\n{ASRIDS_MAGIC} {}\n{}",
            parts.lsn,
            ids.join(","),
            patched.save_to_string()
        );
        self.base = Some(RetainedBase {
            lsn: parts.lsn,
            snap: snap.into_bytes(),
        });
        self.db = Some(patched);
        self.status.bootstraps += 1;
        self.status.delta_bootstraps += 1;
        Ok(OfferOutcome::Bootstrapped { lsn: parts.lsn })
    }
}
