//! WAL segmentation: sealed log segments, archived checkpoints, and the
//! manifest that indexes both.
//!
//! # Why segments
//!
//! A single `wal.log` is enough for crash recovery, but replication and
//! point-in-time recovery need *history*: the shipper streams whole
//! sealed files to a replica, and `recover_to_lsn` replays from an old
//! checkpoint forward.  So the active log rotates into immutable
//! segments:
//!
//! * `wal.000001.seg`, `wal.000002.seg`, … — each a byte-for-byte copy
//!   of a retired `wal.log` (the same `[len][crc][payload]` frames),
//!   whole-file checksummed at seal time;
//! * `ckpt.000000000042.snap` — an archived copy of `checkpoint.snap`
//!   as it stood at checkpoint LSN 42, kept so PITR can start below the
//!   current checkpoint;
//! * `segments.manifest` — the index over both.
//!
//! # Manifest grammar
//!
//! ```text
//! SEGS 1
//! S <seqno> <first_lsn> <last_lsn> <bytes> <crc32-hex>
//! C <checkpoint_lsn>
//! D <checkpoint_lsn> <base_lsn>
//! ```
//!
//! `S` lines are sealed segments in rotation (= LSN) order; `C` lines
//! are archived checkpoints in ascending LSN order.  A `D` line marks an
//! archived checkpoint as an `ASRDB 3` *delta* whose application needs
//! the archived checkpoint at `base_lsn` (which may itself be a delta —
//! lineage chains down to a full snapshot).  The manifest is
//! replaced atomically, *before* the new `checkpoint.snap` is published
//! during a checkpoint — every crash window then falls back to the old
//! checkpoint plus a longer (duplicate-tolerant) replay, never to a
//! manifest that references state which does not exist.
//!
//! A directory without `segments.manifest` is a pre-segmentation
//! database: recovery treats it as an empty manifest (checkpoint +
//! `wal.log` only), which keeps the v1 golden fixtures loading.

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::storage::{read_stable, Storage};

/// The segment/checkpoint index file.
pub const SEGMENT_MANIFEST_FILE: &str = "segments.manifest";

const SEG_MAGIC: &str = "SEGS 1";

/// How many disagreeing read pairs [`read_stable`] tolerates before
/// declaring the read path broken (shared by all recovery-side reads).
pub(crate) const READ_RETRIES: usize = 4;

/// The file name of sealed segment `seqno`.
pub fn segment_file_name(seqno: u64) -> String {
    format!("wal.{seqno:06}.seg")
}

/// The file name of the archived checkpoint covering `lsn`.
pub fn checkpoint_archive_name(lsn: u64) -> String {
    format!("ckpt.{lsn:012}.snap")
}

/// One sealed, immutable log segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Rotation sequence number (1-based, monotonic, never reused after
    /// a successful seal).
    pub seqno: u64,
    /// LSN of the first record in the segment.
    pub first_lsn: u64,
    /// LSN of the last record in the segment.
    pub last_lsn: u64,
    /// Exact size of the segment file in bytes.
    pub bytes: u64,
    /// CRC-32 of the whole segment file.
    pub crc: u32,
}

impl SegmentMeta {
    /// The file this segment is stored under.
    pub fn file_name(&self) -> String {
        segment_file_name(self.seqno)
    }

    /// Check `data` against the sealed size and whole-file checksum.
    /// Sealed segments were fully acknowledged, so a mismatch is at-rest
    /// corruption — a hard error for the caller, never a silent discard.
    pub fn verify(&self, data: &[u8]) -> Result<()> {
        if data.len() as u64 != self.bytes {
            return Err(DurableError::Corrupt(format!(
                "segment {} is {} bytes, manifest says {}",
                self.file_name(),
                data.len(),
                self.bytes
            )));
        }
        let got = crc32(data);
        if got != self.crc {
            return Err(DurableError::Corrupt(format!(
                "segment {} fails its whole-file CRC ({got:08x} != {:08x})",
                self.file_name(),
                self.crc
            )));
        }
        Ok(())
    }
}

/// The parsed `segments.manifest`: sealed segments plus archived
/// checkpoint LSNs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentManifest {
    /// Sealed segments in rotation (= LSN) order.
    pub segments: Vec<SegmentMeta>,
    /// Archived checkpoint LSNs, ascending; each has a
    /// [`checkpoint_archive_name`] file.
    pub checkpoints: Vec<u64>,
    /// Delta lineage: `(checkpoint_lsn, base_lsn)` pairs, ascending by
    /// checkpoint LSN.  A checkpoint LSN absent from this list is a full
    /// snapshot.
    pub deltas: Vec<(u64, u64)>,
}

impl SegmentManifest {
    /// Serialize to the manifest grammar.
    pub fn encode(&self) -> String {
        let mut out = String::from(SEG_MAGIC);
        out.push('\n');
        for s in &self.segments {
            out.push_str(&format!(
                "S {} {} {} {} {:08x}\n",
                s.seqno, s.first_lsn, s.last_lsn, s.bytes, s.crc
            ));
        }
        for c in &self.checkpoints {
            out.push_str(&format!("C {c}\n"));
        }
        for (lsn, base) in &self.deltas {
            out.push_str(&format!("D {lsn} {base}\n"));
        }
        out
    }

    /// Parse the manifest grammar.
    pub fn decode(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(SEG_MAGIC) {
            return Err(DurableError::Corrupt(format!(
                "bad segments.manifest magic (expected `{SEG_MAGIC}`)"
            )));
        }
        let bad =
            |line: &str| DurableError::Corrupt(format!("bad segments.manifest line `{line}`"));
        let mut manifest = SegmentManifest::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("S") => {
                    let mut num = || -> Result<u64> {
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad(line))
                    };
                    let (seqno, first_lsn, last_lsn, bytes) = (num()?, num()?, num()?, num()?);
                    let crc = parts
                        .next()
                        .and_then(|t| u32::from_str_radix(t, 16).ok())
                        .ok_or_else(|| bad(line))?;
                    if parts.next().is_some() || first_lsn > last_lsn {
                        return Err(bad(line));
                    }
                    manifest.segments.push(SegmentMeta {
                        seqno,
                        first_lsn,
                        last_lsn,
                        bytes,
                        crc,
                    });
                }
                Some("C") => {
                    let lsn = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad(line))?;
                    if parts.next().is_some() {
                        return Err(bad(line));
                    }
                    manifest.checkpoints.push(lsn);
                }
                Some("D") => {
                    let mut num = || -> Result<u64> {
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad(line))
                    };
                    let (lsn, base) = (num()?, num()?);
                    // A delta based on itself (or the future) can never
                    // resolve — reject the lineage at parse time.
                    if parts.next().is_some() || base >= lsn {
                        return Err(bad(line));
                    }
                    manifest.deltas.push((lsn, base));
                }
                _ => return Err(bad(line)),
            }
        }
        Ok(manifest)
    }

    /// Load the manifest from `storage`; a missing file is an empty
    /// manifest (a pre-segmentation database).  Reads are stabilized —
    /// the manifest gates which history exists, so a transiently flipped
    /// read must not be trusted.
    pub fn load<S: Storage>(storage: &S) -> Result<Self> {
        match read_stable(storage, SEGMENT_MANIFEST_FILE, READ_RETRIES)? {
            None => Ok(SegmentManifest::default()),
            Some(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| DurableError::Corrupt("segments.manifest is not UTF-8".into()))?;
                Self::decode(&text)
            }
        }
    }

    /// Atomically replace the manifest in `storage`.
    pub fn store<S: Storage>(&self, storage: &mut S) -> Result<()> {
        storage.write_atomic(SEGMENT_MANIFEST_FILE, self.encode().as_bytes())
    }

    /// The sequence number the next sealed segment should take.
    pub fn next_seqno(&self) -> u64 {
        self.segments.last().map_or(1, |s| s.seqno + 1)
    }

    /// Total bytes held in sealed segments.
    pub fn archived_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// The newest archived checkpoint at or below `bound`, if any.
    pub fn newest_checkpoint_at_or_below(&self, bound: u64) -> Option<u64> {
        self.checkpoints
            .iter()
            .copied()
            .filter(|c| *c <= bound)
            .max()
    }

    /// Record an archived checkpoint LSN (idempotent, keeps order).
    pub fn add_checkpoint(&mut self, lsn: u64) {
        if !self.checkpoints.contains(&lsn) {
            self.checkpoints.push(lsn);
            self.checkpoints.sort_unstable();
        }
    }

    /// Record an archived *delta* checkpoint at `lsn` whose application
    /// needs the archived checkpoint at `base` (idempotent, keeps order).
    pub fn add_delta_checkpoint(&mut self, lsn: u64, base: u64) {
        self.add_checkpoint(lsn);
        if !self.deltas.iter().any(|(l, _)| *l == lsn) {
            self.deltas.push((lsn, base));
            self.deltas.sort_unstable();
        }
    }

    /// The base the archived checkpoint at `lsn` is a delta over, if it
    /// is one (`None` means a full snapshot).
    pub fn delta_base_of(&self, lsn: u64) -> Option<u64> {
        self.deltas
            .iter()
            .find(|(l, _)| *l == lsn)
            .map(|(_, base)| *base)
    }

    /// How many deltas sit between the checkpoint at `lsn` and its full
    /// base (0 for a full snapshot).  A broken lineage (cycle or a base
    /// whose record is gone) is reported as the walk length so far —
    /// callers that must *resolve* the chain surface the error when they
    /// read the missing archive.
    pub fn delta_depth(&self, lsn: u64) -> usize {
        self.chain_to_full(lsn).map_or(0, |c| c.len() - 1)
    }

    /// The checkpoint LSNs from the full base up to (and including)
    /// `lsn`, oldest first: `[full, delta, …, lsn]`.  A full checkpoint
    /// resolves to `[lsn]`.  Errors on a cyclic lineage.
    pub fn chain_to_full(&self, lsn: u64) -> Result<Vec<u64>> {
        let mut chain = vec![lsn];
        let mut cur = lsn;
        while let Some(base) = self.delta_base_of(cur) {
            if chain.contains(&base) || chain.len() > self.deltas.len() + 1 {
                return Err(DurableError::Corrupt(format!(
                    "delta checkpoint lineage for LSN {lsn} is cyclic at {base}"
                )));
            }
            chain.push(base);
            cur = base;
        }
        chain.reverse();
        Ok(chain)
    }

    /// The archived checkpoints that must survive a prune keeping
    /// `keep_lsn`: every checkpoint at or above the floor, plus —
    /// transitively — every base a retained delta needs.
    pub fn required_checkpoints(&self, keep_lsn: u64) -> std::collections::BTreeSet<u64> {
        let mut required: std::collections::BTreeSet<u64> = self
            .checkpoints
            .iter()
            .copied()
            .filter(|c| *c >= keep_lsn)
            .collect();
        let mut frontier: Vec<u64> = required.iter().copied().collect();
        while let Some(lsn) = frontier.pop() {
            if let Some(base) = self.delta_base_of(lsn) {
                if required.insert(base) {
                    frontier.push(base);
                }
            }
        }
        required
    }

    /// The first LSN of the oldest retained history, if any segments
    /// remain.
    pub fn oldest_segment_first_lsn(&self) -> Option<u64> {
        self.segments.first().map(|s| s.first_lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample() -> SegmentManifest {
        SegmentManifest {
            segments: vec![
                SegmentMeta {
                    seqno: 1,
                    first_lsn: 1,
                    last_lsn: 9,
                    bytes: 420,
                    crc: 0xdead_beef,
                },
                SegmentMeta {
                    seqno: 2,
                    first_lsn: 10,
                    last_lsn: 17,
                    bytes: 390,
                    crc: 0x0000_00ff,
                },
            ],
            checkpoints: vec![0, 9],
            deltas: vec![(9, 0)],
        }
    }

    #[test]
    fn codec_round_trip() {
        let m = sample();
        let text = m.encode();
        assert!(text.starts_with("SEGS 1\n"));
        assert!(text.contains("S 1 1 9 420 deadbeef\n"));
        assert!(text.contains("C 9\n"));
        assert!(text.contains("D 9 0\n"));
        assert_eq!(SegmentManifest::decode(&text).unwrap(), m);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SegmentManifest::decode("nope").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nS 1 2 1 9 00\n").is_err()); // first > last
        assert!(SegmentManifest::decode("SEGS 1\nS 1 1\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nC x\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nX 1\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nC 1 2\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nD 5\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nD 5 5\n").is_err()); // self-based
        assert!(SegmentManifest::decode("SEGS 1\nD 5 9\n").is_err()); // future base
        assert!(SegmentManifest::decode("SEGS 1\nD 9 5 1\n").is_err());
    }

    #[test]
    fn delta_lineage_resolves_and_guards_cycles() {
        let mut m = SegmentManifest::default();
        m.add_checkpoint(3);
        m.add_delta_checkpoint(7, 3);
        m.add_delta_checkpoint(12, 7);
        assert_eq!(m.delta_base_of(12), Some(7));
        assert_eq!(m.delta_base_of(3), None);
        assert_eq!(m.chain_to_full(12).unwrap(), vec![3, 7, 12]);
        assert_eq!(m.chain_to_full(3).unwrap(), vec![3]);
        assert_eq!(m.delta_depth(12), 2);
        assert_eq!(m.delta_depth(3), 0);
        // add_delta_checkpoint is idempotent per checkpoint LSN.
        m.add_delta_checkpoint(12, 7);
        assert_eq!(m.deltas, vec![(7, 3), (12, 7)]);
        // A hand-corrupted cyclic lineage (only constructible in memory —
        // decode rejects `base >= lsn`) is a typed error, not a hang.
        let cyclic = SegmentManifest {
            deltas: vec![(3, 7), (7, 3)],
            checkpoints: vec![3, 7],
            segments: vec![],
        };
        assert!(cyclic.chain_to_full(7).is_err());
    }

    #[test]
    fn required_checkpoints_keep_delta_bases() {
        let mut m = SegmentManifest::default();
        m.add_checkpoint(0);
        m.add_checkpoint(3);
        m.add_delta_checkpoint(7, 3);
        m.add_delta_checkpoint(12, 7);
        // Keeping LSN 12 keeps its whole lineage but drops checkpoint 0.
        let req = m.required_checkpoints(12);
        assert!(req.contains(&12) && req.contains(&7) && req.contains(&3));
        assert!(!req.contains(&0));
        // A floor below everything keeps everything.
        assert_eq!(m.required_checkpoints(0).len(), 4);
    }

    #[test]
    fn load_store_and_missing_is_empty() {
        let mut mem = MemStorage::new();
        assert_eq!(
            SegmentManifest::load(&mem).unwrap(),
            SegmentManifest::default()
        );
        let m = sample();
        m.store(&mut mem).unwrap();
        assert_eq!(SegmentManifest::load(&mem).unwrap(), m);
        assert_eq!(m.next_seqno(), 3);
        assert_eq!(m.archived_bytes(), 810);
        assert_eq!(m.newest_checkpoint_at_or_below(8), Some(0));
        assert_eq!(m.newest_checkpoint_at_or_below(100), Some(9));
        assert_eq!(
            SegmentManifest::default().newest_checkpoint_at_or_below(5),
            None
        );
    }

    #[test]
    fn verify_checks_size_and_crc() {
        let data = b"framed bytes";
        let meta = SegmentMeta {
            seqno: 1,
            first_lsn: 1,
            last_lsn: 2,
            bytes: data.len() as u64,
            crc: crate::crc::crc32(data),
        };
        meta.verify(data).unwrap();
        assert!(meta.verify(b"framed byteX").is_err());
        assert!(meta.verify(b"short").is_err());
    }

    #[test]
    fn names_are_zero_padded_and_sortable() {
        assert_eq!(segment_file_name(7), "wal.000007.seg");
        assert_eq!(checkpoint_archive_name(42), "ckpt.000000000042.snap");
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
