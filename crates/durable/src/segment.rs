//! WAL segmentation: sealed log segments, archived checkpoints, and the
//! manifest that indexes both.
//!
//! # Why segments
//!
//! A single `wal.log` is enough for crash recovery, but replication and
//! point-in-time recovery need *history*: the shipper streams whole
//! sealed files to a replica, and `recover_to_lsn` replays from an old
//! checkpoint forward.  So the active log rotates into immutable
//! segments:
//!
//! * `wal.000001.seg`, `wal.000002.seg`, … — each a byte-for-byte copy
//!   of a retired `wal.log` (the same `[len][crc][payload]` frames),
//!   whole-file checksummed at seal time;
//! * `ckpt.000000000042.snap` — an archived copy of `checkpoint.snap`
//!   as it stood at checkpoint LSN 42, kept so PITR can start below the
//!   current checkpoint;
//! * `segments.manifest` — the index over both.
//!
//! # Manifest grammar
//!
//! ```text
//! SEGS 1
//! S <seqno> <first_lsn> <last_lsn> <bytes> <crc32-hex>
//! C <checkpoint_lsn>
//! ```
//!
//! `S` lines are sealed segments in rotation (= LSN) order; `C` lines
//! are archived checkpoints in ascending LSN order.  The manifest is
//! replaced atomically, *before* the new `checkpoint.snap` is published
//! during a checkpoint — every crash window then falls back to the old
//! checkpoint plus a longer (duplicate-tolerant) replay, never to a
//! manifest that references state which does not exist.
//!
//! A directory without `segments.manifest` is a pre-segmentation
//! database: recovery treats it as an empty manifest (checkpoint +
//! `wal.log` only), which keeps the v1 golden fixtures loading.

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::storage::{read_stable, Storage};

/// The segment/checkpoint index file.
pub const SEGMENT_MANIFEST_FILE: &str = "segments.manifest";

const SEG_MAGIC: &str = "SEGS 1";

/// How many disagreeing read pairs [`read_stable`] tolerates before
/// declaring the read path broken (shared by all recovery-side reads).
pub(crate) const READ_RETRIES: usize = 4;

/// The file name of sealed segment `seqno`.
pub fn segment_file_name(seqno: u64) -> String {
    format!("wal.{seqno:06}.seg")
}

/// The file name of the archived checkpoint covering `lsn`.
pub fn checkpoint_archive_name(lsn: u64) -> String {
    format!("ckpt.{lsn:012}.snap")
}

/// One sealed, immutable log segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Rotation sequence number (1-based, monotonic, never reused after
    /// a successful seal).
    pub seqno: u64,
    /// LSN of the first record in the segment.
    pub first_lsn: u64,
    /// LSN of the last record in the segment.
    pub last_lsn: u64,
    /// Exact size of the segment file in bytes.
    pub bytes: u64,
    /// CRC-32 of the whole segment file.
    pub crc: u32,
}

impl SegmentMeta {
    /// The file this segment is stored under.
    pub fn file_name(&self) -> String {
        segment_file_name(self.seqno)
    }

    /// Check `data` against the sealed size and whole-file checksum.
    /// Sealed segments were fully acknowledged, so a mismatch is at-rest
    /// corruption — a hard error for the caller, never a silent discard.
    pub fn verify(&self, data: &[u8]) -> Result<()> {
        if data.len() as u64 != self.bytes {
            return Err(DurableError::Corrupt(format!(
                "segment {} is {} bytes, manifest says {}",
                self.file_name(),
                data.len(),
                self.bytes
            )));
        }
        let got = crc32(data);
        if got != self.crc {
            return Err(DurableError::Corrupt(format!(
                "segment {} fails its whole-file CRC ({got:08x} != {:08x})",
                self.file_name(),
                self.crc
            )));
        }
        Ok(())
    }
}

/// The parsed `segments.manifest`: sealed segments plus archived
/// checkpoint LSNs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentManifest {
    /// Sealed segments in rotation (= LSN) order.
    pub segments: Vec<SegmentMeta>,
    /// Archived checkpoint LSNs, ascending; each has a
    /// [`checkpoint_archive_name`] file.
    pub checkpoints: Vec<u64>,
}

impl SegmentManifest {
    /// Serialize to the manifest grammar.
    pub fn encode(&self) -> String {
        let mut out = String::from(SEG_MAGIC);
        out.push('\n');
        for s in &self.segments {
            out.push_str(&format!(
                "S {} {} {} {} {:08x}\n",
                s.seqno, s.first_lsn, s.last_lsn, s.bytes, s.crc
            ));
        }
        for c in &self.checkpoints {
            out.push_str(&format!("C {c}\n"));
        }
        out
    }

    /// Parse the manifest grammar.
    pub fn decode(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(SEG_MAGIC) {
            return Err(DurableError::Corrupt(format!(
                "bad segments.manifest magic (expected `{SEG_MAGIC}`)"
            )));
        }
        let bad =
            |line: &str| DurableError::Corrupt(format!("bad segments.manifest line `{line}`"));
        let mut manifest = SegmentManifest::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("S") => {
                    let mut num = || -> Result<u64> {
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad(line))
                    };
                    let (seqno, first_lsn, last_lsn, bytes) = (num()?, num()?, num()?, num()?);
                    let crc = parts
                        .next()
                        .and_then(|t| u32::from_str_radix(t, 16).ok())
                        .ok_or_else(|| bad(line))?;
                    if parts.next().is_some() || first_lsn > last_lsn {
                        return Err(bad(line));
                    }
                    manifest.segments.push(SegmentMeta {
                        seqno,
                        first_lsn,
                        last_lsn,
                        bytes,
                        crc,
                    });
                }
                Some("C") => {
                    let lsn = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad(line))?;
                    if parts.next().is_some() {
                        return Err(bad(line));
                    }
                    manifest.checkpoints.push(lsn);
                }
                _ => return Err(bad(line)),
            }
        }
        Ok(manifest)
    }

    /// Load the manifest from `storage`; a missing file is an empty
    /// manifest (a pre-segmentation database).  Reads are stabilized —
    /// the manifest gates which history exists, so a transiently flipped
    /// read must not be trusted.
    pub fn load<S: Storage>(storage: &S) -> Result<Self> {
        match read_stable(storage, SEGMENT_MANIFEST_FILE, READ_RETRIES)? {
            None => Ok(SegmentManifest::default()),
            Some(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| DurableError::Corrupt("segments.manifest is not UTF-8".into()))?;
                Self::decode(&text)
            }
        }
    }

    /// Atomically replace the manifest in `storage`.
    pub fn store<S: Storage>(&self, storage: &mut S) -> Result<()> {
        storage.write_atomic(SEGMENT_MANIFEST_FILE, self.encode().as_bytes())
    }

    /// The sequence number the next sealed segment should take.
    pub fn next_seqno(&self) -> u64 {
        self.segments.last().map_or(1, |s| s.seqno + 1)
    }

    /// Total bytes held in sealed segments.
    pub fn archived_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// The newest archived checkpoint at or below `bound`, if any.
    pub fn newest_checkpoint_at_or_below(&self, bound: u64) -> Option<u64> {
        self.checkpoints
            .iter()
            .copied()
            .filter(|c| *c <= bound)
            .max()
    }

    /// Record an archived checkpoint LSN (idempotent, keeps order).
    pub fn add_checkpoint(&mut self, lsn: u64) {
        if !self.checkpoints.contains(&lsn) {
            self.checkpoints.push(lsn);
            self.checkpoints.sort_unstable();
        }
    }

    /// The first LSN of the oldest retained history, if any segments
    /// remain.
    pub fn oldest_segment_first_lsn(&self) -> Option<u64> {
        self.segments.first().map(|s| s.first_lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample() -> SegmentManifest {
        SegmentManifest {
            segments: vec![
                SegmentMeta {
                    seqno: 1,
                    first_lsn: 1,
                    last_lsn: 9,
                    bytes: 420,
                    crc: 0xdead_beef,
                },
                SegmentMeta {
                    seqno: 2,
                    first_lsn: 10,
                    last_lsn: 17,
                    bytes: 390,
                    crc: 0x0000_00ff,
                },
            ],
            checkpoints: vec![0, 9],
        }
    }

    #[test]
    fn codec_round_trip() {
        let m = sample();
        let text = m.encode();
        assert!(text.starts_with("SEGS 1\n"));
        assert!(text.contains("S 1 1 9 420 deadbeef\n"));
        assert!(text.contains("C 9\n"));
        assert_eq!(SegmentManifest::decode(&text).unwrap(), m);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SegmentManifest::decode("nope").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nS 1 2 1 9 00\n").is_err()); // first > last
        assert!(SegmentManifest::decode("SEGS 1\nS 1 1\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nC x\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nX 1\n").is_err());
        assert!(SegmentManifest::decode("SEGS 1\nC 1 2\n").is_err());
    }

    #[test]
    fn load_store_and_missing_is_empty() {
        let mut mem = MemStorage::new();
        assert_eq!(
            SegmentManifest::load(&mem).unwrap(),
            SegmentManifest::default()
        );
        let m = sample();
        m.store(&mut mem).unwrap();
        assert_eq!(SegmentManifest::load(&mem).unwrap(), m);
        assert_eq!(m.next_seqno(), 3);
        assert_eq!(m.archived_bytes(), 810);
        assert_eq!(m.newest_checkpoint_at_or_below(8), Some(0));
        assert_eq!(m.newest_checkpoint_at_or_below(100), Some(9));
        assert_eq!(
            SegmentManifest::default().newest_checkpoint_at_or_below(5),
            None
        );
    }

    #[test]
    fn verify_checks_size_and_crc() {
        let data = b"framed bytes";
        let meta = SegmentMeta {
            seqno: 1,
            first_lsn: 1,
            last_lsn: 2,
            bytes: data.len() as u64,
            crc: crate::crc::crc32(data),
        };
        meta.verify(data).unwrap();
        assert!(meta.verify(b"framed byteX").is_err());
        assert!(meta.verify(b"short").is_err());
    }

    #[test]
    fn names_are_zero_padded_and_sortable() {
        assert_eq!(segment_file_name(7), "wal.000007.seg");
        assert_eq!(checkpoint_archive_name(42), "ckpt.000000000042.snap");
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
