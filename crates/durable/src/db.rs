//! [`DurableDatabase`]: an [`asr_core::Database`] whose mutations are
//! write-ahead logged, checkpointed, and recoverable.
//!
//! # Files
//!
//! A durable database directory holds three files:
//!
//! * `MANIFEST` — marks the directory as a durable database
//!   (`ASRWAL 1`) and mirrors the checkpoint LSN for diagnostics;
//! * `checkpoint.snap` — a `CKPT <lsn>` header and an `ASRIDS` line
//!   (the live session ASR ids, in snapshot order) followed by the
//!   regular [`Database::save_to_string`] snapshot;
//! * `wal.log` — checksummed frames of logical records since the
//!   checkpoint ([`crate::wal`]).
//!
//! # Protocol
//!
//! Every effective mutation is applied to the in-memory database and then
//! appended to the WAL (no-ops — setting an attribute to its current
//! value, inserting a present element — are filtered and *not* logged, so
//! the log replays exactly the operations that changed state).  Apply
//! happens before append because some outcomes (the OID an instantiation
//! picks, the id an ASR creation gets) are only known afterwards and are
//! part of the record; this is safe because the only state that survives
//! a crash *is* the checkpoint plus the log — in-memory state is lost
//! either way, and a failed append poisons the session so nothing
//! unlogged can be acknowledged afterwards.
//!
//! A checkpoint flushes the WAL, atomically writes the snapshot (with its
//! covering LSN in the header), rewrites the manifest, and removes the
//! log.  The snapshot's *own* header LSN is authoritative during
//! recovery, so every crash window is safe: a new snapshot next to a
//! stale manifest or a not-yet-removed log merely causes records with
//! `lsn <= checkpoint LSN` to be skipped.
//!
//! # Recovery
//!
//! [`DurableDatabase::open`] loads the checkpoint, scans the log under
//! the torn-tail rule (discarding at most the unacknowledged tail),
//! truncates any torn garbage, and replays the surviving records through
//! the incremental maintenance engine — cost proportional to the delta
//! since the checkpoint, not to the database size.
//!
//! # ASR id spaces
//!
//! The snapshot format stores only *live* ASRs, so loading a checkpoint
//! compacts dropped slots away while the crashed session kept logging
//! under its own (holey) ids.  The `ASRIDS` header line maps snapshot
//! order back to session ids, recovery translates replayed ids through
//! it, and whenever that translation was non-trivial recovery finishes
//! with an immediate checkpoint — truncating the log so records in the
//! old id space can never sit next to records in the new one.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::path::Path;

use asr_core::{AsrConfig, AsrId, AsrLoadMode, Database, Decomposition, Extension};
use asr_gom::{Oid, Value};
use asr_pagesim::{StructureId, StructureKind, PAGE_SIZE};

use crate::error::{DurableError, Result};
use crate::record::LogOp;
use crate::storage::{FsStorage, Storage};
use crate::wal::{scan_wal, FlushPolicy, WalWriter};

/// Marker + diagnostics file.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Checkpoint snapshot file.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";
/// Write-ahead log file.
pub const WAL_FILE: &str = "wal.log";

const MANIFEST_MAGIC: &str = "ASRWAL 1";
const CKPT_MAGIC: &str = "CKPT";
const ASRIDS_MAGIC: &str = "ASRIDS";

/// What [`DurableDatabase::open`] did to bring the database back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN the loaded checkpoint covers.
    pub checkpoint_lsn: u64,
    /// Records replayed from the WAL tail.
    pub records_replayed: u64,
    /// Records skipped because the checkpoint already covered them.
    pub records_skipped: u64,
    /// Torn tail bytes discarded (and truncated away).
    pub torn_bytes: u64,
    /// Why the tail was discarded, when it was.
    pub torn_reason: Option<&'static str>,
    /// Modeled pages read to load the checkpoint *file* (headers, design
    /// and base sections).  Physical-section bytes are excluded: those
    /// pages are the ASR trees' images, and restoring them charges one
    /// read per node to the trees themselves.
    pub checkpoint_pages_read: u64,
    /// Modeled pages read to scan the WAL.
    pub wal_pages_read: u64,
    /// How each ASR came back from the checkpoint, in id order —
    /// physically adopted page images (`ASRDB 2`) or a rebuild.
    pub asr_load_modes: Vec<(AsrId, AsrLoadMode)>,
}

/// Point-in-time WAL status (what `\wal status` prints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalStatus {
    /// Active flush policy.
    pub policy: FlushPolicy,
    /// LSN of the last logged record (0 when none yet).
    pub last_lsn: u64,
    /// LSN the current checkpoint covers.
    pub checkpoint_lsn: u64,
    /// Bytes durably in the log file.
    pub durable_bytes: usize,
    /// Records framed but not yet flushed.
    pub pending_records: usize,
    /// Whether a storage failure poisoned the session.
    pub poisoned: bool,
}

/// A write-ahead-logged, checkpointed, crash-recoverable database.
///
/// Immutable access goes through `Deref<Target = Database>` (queries,
/// stats, the tracer); every mutation goes through the logged wrappers so
/// nothing durable can be skipped.
#[derive(Debug)]
pub struct DurableDatabase<S: Storage> {
    db: Database,
    storage: S,
    wal: WalWriter,
    checkpoint_lsn: u64,
    poisoned: bool,
    wal_sid: StructureId,
    ckpt_sid: StructureId,
    report: RecoveryReport,
}

fn pages(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(PAGE_SIZE as u64)
}

fn manifest_text(checkpoint_lsn: u64) -> String {
    format!("{MANIFEST_MAGIC}\ncheckpoint_lsn {checkpoint_lsn}\n")
}

impl<S: Storage> DurableDatabase<S> {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Make `db` durable in (empty) `storage`: writes an initial
    /// checkpoint capturing the schema and current state, then starts
    /// logging.  Errors with [`DurableError::AlreadyExists`] when the
    /// storage already holds a durable database.
    pub fn create(storage: S, db: Database, policy: FlushPolicy) -> Result<Self> {
        if storage.read(MANIFEST_FILE)?.is_some() {
            return Err(DurableError::AlreadyExists(
                "manifest present; use open() instead".into(),
            ));
        }
        let mut this = DurableDatabase {
            wal_sid: db.stats().register_structure(StructureKind::Wal, WAL_FILE),
            ckpt_sid: db
                .stats()
                .register_structure(StructureKind::Wal, CHECKPOINT_FILE),
            db,
            storage,
            wal: WalWriter::new(WAL_FILE, policy, 1, 0),
            checkpoint_lsn: 0,
            poisoned: false,
            report: RecoveryReport::default(),
        };
        this.checkpoint()?;
        Ok(this)
    }

    /// Recover the database from `storage`: load the latest checkpoint
    /// and replay the WAL tail through incremental maintenance,
    /// discarding (and truncating) a torn tail.
    pub fn open(storage: S) -> Result<Self> {
        Self::open_with(storage, FlushPolicy::EveryRecord)
    }

    /// [`Self::open`] with an explicit flush policy for the new session.
    pub fn open_with(mut storage: S, policy: FlushPolicy) -> Result<Self> {
        let r = Self::recover(&mut storage, policy)?;
        let mut this = DurableDatabase {
            db: r.db,
            storage,
            wal: r.wal,
            checkpoint_lsn: r.checkpoint_lsn,
            poisoned: false,
            wal_sid: r.wal_sid,
            ckpt_sid: r.ckpt_sid,
            report: r.report,
        };
        if r.ids_remapped {
            // Replay translated ASR ids (dropped slots were compacted by
            // the checkpoint).  Checkpoint now so the log restarts in the
            // current id space — old-space and new-space records must
            // never share a log.
            this.checkpoint()?;
        }
        Ok(this)
    }

    fn recover(storage: &mut S, policy: FlushPolicy) -> Result<Recovered> {
        // Manifest: the existence + version check.
        let manifest = storage
            .read(MANIFEST_FILE)?
            .ok_or_else(|| DurableError::NotADatabase("no MANIFEST in storage".into()))?;
        let manifest = String::from_utf8(manifest)
            .map_err(|_| DurableError::Corrupt("MANIFEST is not UTF-8".into()))?;
        if manifest.lines().next().map(str::trim) != Some(MANIFEST_MAGIC) {
            return Err(DurableError::Corrupt(format!(
                "bad MANIFEST magic (expected `{MANIFEST_MAGIC}`)"
            )));
        }

        // Checkpoint: a `CKPT <lsn>` header (authoritative — a crash
        // between writing the snapshot and the manifest leaves the
        // manifest stale), an `ASRIDS` session-id line, then a regular
        // snapshot.
        let snap = storage.read(CHECKPOINT_FILE)?.ok_or_else(|| {
            DurableError::Corrupt("MANIFEST present but checkpoint.snap missing".into())
        })?;
        let snap_bytes = snap.len();
        let snap = String::from_utf8(snap)
            .map_err(|_| DurableError::Corrupt("checkpoint.snap is not UTF-8".into()))?;
        let (header, rest) = snap
            .split_once('\n')
            .ok_or_else(|| DurableError::Corrupt("checkpoint.snap is empty".into()))?;
        let checkpoint_lsn: u64 = header
            .strip_prefix(CKPT_MAGIC)
            .map(str::trim)
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| DurableError::Corrupt(format!("bad checkpoint header `{header}`")))?;
        let (ids_line, body) = rest
            .split_once('\n')
            .ok_or_else(|| DurableError::Corrupt("checkpoint.snap missing ASRIDS line".into()))?;
        let session_ids: Vec<AsrId> = ids_line
            .strip_prefix(ASRIDS_MAGIC)
            .ok_or_else(|| DurableError::Corrupt(format!("bad ASRIDS line `{ids_line}`")))?
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse()
                    .map_err(|_| DurableError::Corrupt(format!("bad ASR id `{t}` in ASRIDS")))
            })
            .collect::<Result<_>>()?;
        let (mut db, load) = Database::load_from_string_report(body)?;
        // The physical section's pages were just charged as tree restore
        // reads by the load; the file charge covers the rest.
        let checkpoint_pages_read = pages(snap_bytes - load.physical_bytes.min(snap_bytes));

        // Loading compacted the snapshot's ASRs into slots 0..k; seed the
        // replay translation from the session ids they had when logged.
        let mut asr_remap: BTreeMap<AsrId, AsrId> = BTreeMap::new();
        for (slot, orig) in session_ids.iter().enumerate() {
            if *orig != slot {
                asr_remap.insert(*orig, slot);
            }
        }

        // WAL tail: scan under the torn-tail rule, replay what the
        // checkpoint does not already cover.
        let wal_bytes = storage.read(WAL_FILE)?.unwrap_or_default();
        let wal_pages_read = pages(wal_bytes.len());
        let scan = scan_wal(&wal_bytes)?;
        if scan.torn_bytes > 0 {
            // Truncate the garbage so future appends extend a valid log.
            storage.write_atomic(WAL_FILE, &wal_bytes[..scan.valid_bytes])?;
        }
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        let mut last_lsn = checkpoint_lsn;
        for rec in &scan.records {
            last_lsn = last_lsn.max(rec.lsn);
            if rec.lsn <= checkpoint_lsn {
                skipped += 1;
                continue;
            }
            apply_op(&mut db, &rec.op, &mut asr_remap)?;
            replayed += 1;
        }

        let report = RecoveryReport {
            checkpoint_lsn,
            records_replayed: replayed,
            records_skipped: skipped,
            torn_bytes: scan.torn_bytes as u64,
            torn_reason: scan.torn_reason.map(|r| r.label()),
            checkpoint_pages_read,
            wal_pages_read,
            asr_load_modes: load.asrs,
        };
        // Surface recovery through the freshly-built database's
        // observability layer (page reads + metrics counters).
        let stats = db.stats();
        let wal_sid = stats.register_structure(StructureKind::Wal, WAL_FILE);
        let ckpt_sid = stats.register_structure(StructureKind::Wal, CHECKPOINT_FILE);
        for _ in 0..checkpoint_pages_read {
            stats.count_read_for(ckpt_sid);
        }
        for _ in 0..wal_pages_read {
            stats.count_read_for(wal_sid);
        }
        let metrics = db.tracer().metrics();
        metrics.inc_counter("wal.recovery.records_replayed", replayed);
        metrics.inc_counter("wal.recovery.records_skipped", skipped);
        metrics.inc_counter("wal.recovery.torn_bytes", scan.torn_bytes as u64);
        metrics.set_gauge("wal.checkpoint_lsn", checkpoint_lsn as f64);

        Ok(Recovered {
            db,
            wal: WalWriter::new(WAL_FILE, policy, last_lsn + 1, scan.valid_bytes),
            checkpoint_lsn,
            wal_sid,
            ckpt_sid,
            report,
            ids_remapped: !asr_remap.is_empty(),
        })
    }

    /// The report from the `open()` that produced this handle (all zeros
    /// for a freshly created database).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Give up durability and keep the in-memory database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// The wrapped database (also available through `Deref`).
    pub fn database(&self) -> &Database {
        &self.db
    }

    // ------------------------------------------------------------------
    // WAL control
    // ------------------------------------------------------------------

    /// Current WAL status.
    pub fn wal_status(&self) -> WalStatus {
        WalStatus {
            policy: self.wal.policy(),
            last_lsn: self.wal.last_lsn(),
            checkpoint_lsn: self.checkpoint_lsn,
            durable_bytes: self.wal.durable_bytes(),
            pending_records: self.wal.pending_records(),
            poisoned: self.poisoned,
        }
    }

    /// Change the group-flush policy (takes effect from the next record).
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) {
        self.wal.set_policy(policy);
    }

    /// Force buffered records to storage.
    pub fn flush(&mut self) -> Result<()> {
        self.check_alive()?;
        let before = self.wal.durable_bytes();
        let res = self.wal.flush(&mut self.storage);
        self.note_log_growth(before);
        self.poison_on_err(res)
    }

    /// Checkpoint: flush the WAL, atomically write the snapshot and
    /// manifest, then truncate the log.  Recovery afterwards starts from
    /// this state.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.check_alive()?;
        let before = self.wal.durable_bytes();
        let res = self.wal.flush(&mut self.storage);
        self.note_log_growth(before);
        self.poison_on_err(res)?;
        let lsn = self.wal.last_lsn();
        let ids: Vec<String> = self.db.asrs().map(|(id, _)| id.to_string()).collect();
        let snap = format!(
            "{CKPT_MAGIC} {lsn}\n{ASRIDS_MAGIC} {}\n{}",
            ids.join(","),
            self.db.save_to_string()
        );
        let res = self.storage.write_atomic(CHECKPOINT_FILE, snap.as_bytes());
        self.poison_on_err(res)?;
        let res = self
            .storage
            .write_atomic(MANIFEST_FILE, manifest_text(lsn).as_bytes());
        self.poison_on_err(res)?;
        let res = self.storage.remove(WAL_FILE);
        self.poison_on_err(res)?;
        self.checkpoint_lsn = lsn;
        self.wal = WalWriter::new(WAL_FILE, self.wal.policy(), lsn + 1, 0);
        for _ in 0..pages(snap.len()) {
            self.db.stats().count_write_for(self.ckpt_sid);
        }
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.checkpoints", 1);
        metrics.set_gauge("wal.checkpoint_lsn", lsn as f64);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Logged mutations
    // ------------------------------------------------------------------

    /// Create and register an object of `type_name` (logged).
    pub fn instantiate(&mut self, type_name: &str) -> Result<Oid> {
        self.check_alive()?;
        let oid = self.db.instantiate(type_name)?;
        self.log(LogOp::New {
            ty: type_name.to_string(),
            oid,
        })?;
        Ok(oid)
    }

    /// Assign an attribute with ASR maintenance (logged unless the value
    /// is unchanged).
    pub fn set_attribute(&mut self, owner: Oid, attr: &str, value: Value) -> Result<()> {
        self.check_alive()?;
        if self.db.base().get_attribute(owner, attr)? == value {
            return Ok(()); // no-op: nothing to maintain, nothing to log
        }
        self.db.set_attribute(owner, attr, value.clone())?;
        self.log(LogOp::Set {
            owner,
            attr: attr.to_string(),
            value,
        })
    }

    /// Insert into a set object with ASR maintenance (logged when the
    /// element was actually added).
    pub fn insert_into_set(&mut self, set: Oid, elem: Value) -> Result<bool> {
        self.check_alive()?;
        if !self.db.insert_into_set(set, elem.clone())? {
            return Ok(false);
        }
        self.log(LogOp::Insert { set, elem })?;
        Ok(true)
    }

    /// Remove from a set object with ASR maintenance (logged when the
    /// element was actually present).
    pub fn remove_from_set(&mut self, set: Oid, elem: &Value) -> Result<bool> {
        self.check_alive()?;
        if !self.db.remove_from_set(set, elem)? {
            return Ok(false);
        }
        self.log(LogOp::Remove {
            set,
            elem: elem.clone(),
        })?;
        Ok(true)
    }

    /// `insert o into owner.attr` — resolves the owning attribute to its
    /// set and logs the set-level insert.
    pub fn insert_into_attr_set(&mut self, owner: Oid, attr: &str, elem: Value) -> Result<bool> {
        self.check_alive()?;
        let set = self
            .db
            .base()
            .get_attribute(owner, attr)?
            .as_ref_oid()
            .ok_or_else(|| {
                DurableError::Asr(asr_core::AsrError::BadUpdatePosition(format!(
                    "{owner}.{attr} is NULL"
                )))
            })?;
        self.insert_into_set(set, elem)
    }

    /// Delete an object (logged; ASRs rebuild as in the plain database).
    pub fn delete_object(&mut self, oid: Oid) -> Result<()> {
        self.check_alive()?;
        self.db.delete_object(oid)?;
        self.log(LogOp::Delete { oid })
    }

    /// Bind a persistent variable (logged).
    pub fn bind_variable(&mut self, name: &str, value: Value) -> Result<()> {
        self.check_alive()?;
        self.db.bind_variable(name, value.clone());
        self.log(LogOp::Bind {
            name: name.to_string(),
            value,
        })
    }

    /// Configure the clustered object size of a type, by name (logged).
    pub fn set_type_size(&mut self, type_name: &str, bytes: usize) -> Result<()> {
        self.check_alive()?;
        let ty = self.db.base().schema().require(type_name)?;
        self.db.set_type_size(ty, bytes);
        self.log(LogOp::TypeSize {
            ty: type_name.to_string(),
            bytes,
        })
    }

    /// Build an access support relation over a dotted path (logged).
    pub fn create_asr_on(&mut self, dotted: &str, config: AsrConfig) -> Result<AsrId> {
        self.check_alive()?;
        let op = LogOp::CreateAsr {
            id: 0, // patched below with the assigned id
            path: dotted.to_string(),
            extension: config.extension.name().to_string(),
            cuts: config.decomposition.cuts().to_vec(),
            keep_set_oids: config.keep_set_oids,
        };
        let id = self.db.create_asr_on(dotted, config)?;
        let op = match op {
            LogOp::CreateAsr {
                path,
                extension,
                cuts,
                keep_set_oids,
                ..
            } => LogOp::CreateAsr {
                id,
                path,
                extension,
                cuts,
                keep_set_oids,
            },
            _ => unreachable!(),
        };
        self.log(op)?;
        Ok(id)
    }

    /// Drop an access support relation (logged).
    pub fn drop_asr(&mut self, id: AsrId) -> Result<()> {
        self.check_alive()?;
        self.db.drop_asr(id)?;
        self.log(LogOp::DropAsr { id })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_alive(&self) -> Result<()> {
        if self.poisoned {
            Err(DurableError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison_on_err<T>(&mut self, r: Result<T>) -> Result<T> {
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// Append one logical record, honouring the flush policy and
    /// attributing modeled page writes to the log's tail pages (group
    /// commit writes the shared tail page once, not once per record).
    fn log(&mut self, op: LogOp) -> Result<()> {
        let before = self.wal.durable_bytes();
        let res = self.wal.append(&mut self.storage, op);
        self.note_log_growth(before);
        self.poison_on_err(res)?;
        self.db.tracer().metrics().inc_counter("wal.records", 1);
        Ok(())
    }

    /// Charge page writes for log growth from `before` to the current
    /// durable size: the tail page plus any newly filled pages.
    fn note_log_growth(&mut self, before: usize) {
        let after = self.wal.durable_bytes();
        if after == before {
            return;
        }
        let first = before / PAGE_SIZE;
        let last = (after - 1) / PAGE_SIZE;
        for _ in first..=last {
            self.db.stats().count_write_for(self.wal_sid);
        }
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.flushes", 1);
        metrics.inc_counter("wal.bytes", (after - before) as u64);
    }
}

impl<S: Storage> Deref for DurableDatabase<S> {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

/// Replay one logical record against a recovering database.
///
/// ASR ids are remapped: checkpoint snapshots compact dropped slots away,
/// so an id logged after a drop may differ from the id the re-creation
/// yields; `asr_remap` carries logged-id → actual-id for later drops.
fn apply_op(db: &mut Database, op: &LogOp, asr_remap: &mut BTreeMap<AsrId, AsrId>) -> Result<()> {
    match op {
        LogOp::New { ty, oid } => {
            // Forced-OID restore: replay must reproduce the logged OID
            // even where a fresh instantiation would pick another one
            // (e.g. the pre-checkpoint maximum OID was deleted).
            db.instantiate_with_oid(ty, *oid)?;
        }
        LogOp::Set { owner, attr, value } => db.set_attribute(*owner, attr, value.clone())?,
        LogOp::Insert { set, elem } => {
            if !db.insert_into_set(*set, elem.clone())? {
                return Err(DurableError::ReplayMismatch(format!(
                    "insert into {set} was logged as effective but replayed as a no-op"
                )));
            }
        }
        LogOp::Remove { set, elem } => {
            if !db.remove_from_set(*set, elem)? {
                return Err(DurableError::ReplayMismatch(format!(
                    "remove from {set} was logged as effective but replayed as a no-op"
                )));
            }
        }
        LogOp::Delete { oid } => db.delete_object(*oid)?,
        LogOp::Bind { name, value } => db.bind_variable(name, value.clone()),
        LogOp::TypeSize { ty, bytes } => {
            let id = db.base().schema().require(ty)?;
            db.set_type_size(id, *bytes);
        }
        LogOp::CreateAsr {
            id,
            path,
            extension,
            cuts,
            keep_set_oids,
        } => {
            let ext = Extension::ALL
                .into_iter()
                .find(|e| e.name() == extension)
                .ok_or_else(|| {
                    DurableError::Corrupt(format!("unknown extension `{extension}` in WAL"))
                })?;
            let config = AsrConfig {
                extension: ext,
                decomposition: Decomposition::new(cuts.clone())?,
                keep_set_oids: *keep_set_oids,
            };
            let actual = db.create_asr_on(path, config)?;
            if actual != *id {
                asr_remap.insert(*id, actual);
            }
        }
        LogOp::DropAsr { id } => {
            let actual = asr_remap.get(id).copied().unwrap_or(*id);
            db.drop_asr(actual)?;
        }
    }
    Ok(())
}

/// Everything recovery produces except the storage handle itself (which
/// the caller still owns and moves into the assembled database).
struct Recovered {
    db: Database,
    wal: WalWriter,
    checkpoint_lsn: u64,
    wal_sid: StructureId,
    ckpt_sid: StructureId,
    report: RecoveryReport,
    /// Replay had to translate ASR ids — the log must restart in the new
    /// id space (open() checkpoints immediately).
    ids_remapped: bool,
}

/// Extension trait putting `Database::open_durable(dir)` /
/// `Database::create_durable(dir)` in scope: file-system-backed
/// durability with one import.
pub trait OpenDurable: Sized {
    /// Recover a durable database from `dir`.
    fn open_durable(dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>>;

    /// Make this database durable in `dir` (which must not already hold
    /// one), flushing every record.
    fn create_durable(self, dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>>;
}

impl OpenDurable for Database {
    fn open_durable(dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>> {
        DurableDatabase::open(FsStorage::new(dir)?)
    }

    fn create_durable(self, dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>> {
        DurableDatabase::create(FsStorage::new(dir)?, self, FlushPolicy::EveryRecord)
    }
}
