//! [`DurableDatabase`]: an [`asr_core::Database`] whose mutations are
//! write-ahead logged, checkpointed, and recoverable.
//!
//! # Files
//!
//! A durable database directory holds:
//!
//! * `MANIFEST` — marks the directory as a durable database
//!   (`ASRWAL 1`) and mirrors the checkpoint LSN for diagnostics;
//! * `checkpoint.snap` — a `CKPT <lsn>` header and an `ASRIDS` line
//!   (the live session ASR ids, in snapshot order) followed by the
//!   regular [`Database::save_to_string`] snapshot;
//! * `wal.log` — checksummed frames of logical records since the last
//!   rotation ([`crate::wal`]);
//! * `wal.NNNNNN.seg`, `ckpt.NNNNNNNNNNNN.snap`, `segments.manifest` —
//!   sealed log segments and archived checkpoints for replication and
//!   point-in-time recovery ([`crate::segment`]).  A directory without
//!   `segments.manifest` (pre-segmentation, e.g. the v1 golden fixture)
//!   recovers through the plain checkpoint + `wal.log` path.
//!
//! # Protocol
//!
//! Every effective mutation is applied to the in-memory database and then
//! appended to the WAL (no-ops — setting an attribute to its current
//! value, inserting a present element — are filtered and *not* logged, so
//! the log replays exactly the operations that changed state).  Apply
//! happens before append because some outcomes (the OID an instantiation
//! picks, the id an ASR creation gets) are only known afterwards and are
//! part of the record; this is safe because the only state that survives
//! a crash *is* the checkpoint plus the log — in-memory state is lost
//! either way, and a failed append poisons the session so nothing
//! unlogged can be acknowledged afterwards.
//!
//! A checkpoint is *fuzzy*: `begin_checkpoint` flushes the WAL, takes
//! the fence LSN, and pins the state at the fence in an immutable
//! snapshot ([`asr_core::CheckpointSource`]); `complete_checkpoint`
//! serializes from that pin — concurrently with new commits — and
//! atomically writes the snapshot (with the fence LSN in its header)
//! before rewriting the manifest.  The log is never truncated by a
//! checkpoint: the snapshot's *own* header LSN is authoritative during
//! recovery, so records with `lsn <= checkpoint LSN` are simply skipped
//! and the next rotation seals them away.
//!
//! # Recovery
//!
//! [`DurableDatabase::open`] loads the checkpoint, scans the log under
//! the torn-tail rule (discarding at most the unacknowledged tail),
//! truncates any torn garbage, and replays the surviving records through
//! the incremental maintenance engine — cost proportional to the delta
//! since the checkpoint, not to the database size.
//!
//! # ASR id spaces
//!
//! The snapshot format stores only *live* ASRs, so loading a checkpoint
//! compacts dropped slots away while the crashed session kept logging
//! under its own (holey) ids.  The `ASRIDS` header line maps snapshot
//! order back to session ids, recovery translates replayed ids through
//! it, and whenever that translation was non-trivial recovery finishes
//! with an immediate checkpoint — truncating the log so records in the
//! old id space can never sit next to records in the new one.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use asr_core::{
    AsrConfig, AsrId, AsrLoadMode, CheckpointSource, Database, Decomposition, Extension, Snapshot,
};
use asr_gom::{Oid, Schema, Value};
use asr_obs::FlightRecorder;
use asr_pagesim::{StructureId, StructureKind, PAGE_SIZE};

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::record::{LogOp, Record};
use crate::segment::{checkpoint_archive_name, SegmentManifest, SegmentMeta, READ_RETRIES};
use crate::storage::{read_stable, FsStorage, Storage};
use crate::wal::{scan_wal, FlushPolicy, WalWriter};

/// Marker + diagnostics file.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Checkpoint snapshot file.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";
/// Write-ahead log file.
pub const WAL_FILE: &str = "wal.log";

const MANIFEST_MAGIC: &str = "ASRWAL 1";
pub(crate) const CKPT_MAGIC: &str = "CKPT";
pub(crate) const ASRIDS_MAGIC: &str = "ASRIDS";

/// Structure-id label for modeled segment I/O.
const SEG_STRUCTURE: &str = "wal.segments";

/// Default size at which the active log rotates into a sealed segment.
/// Large enough that small interactive sessions and the crash-recovery
/// fuzzer never rotate unless they opt in via
/// [`DurableDatabase::set_segment_threshold`].
pub const DEFAULT_SEGMENT_THRESHOLD: usize = 64 * 1024;

/// How many flight-recorder events failure paths attach to their report
/// or error message ([`RecoveryReport::flight_tail`], the
/// [`DurableError::ReplicationStalled`] text).
pub const FLIGHT_TAIL_EVENTS: usize = 12;

/// Longest base→delta lineage [`DurableDatabase::checkpoint_delta`] will
/// extend before falling back to a full checkpoint.  Bounds both the
/// recovery chain walk and how much history a chain pins against
/// [`DurableDatabase::prune_segments`].
pub const DELTA_CHAIN_LIMIT: usize = 8;

/// What [`DurableDatabase::open`] did to bring the database back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN the loaded checkpoint covers.
    pub checkpoint_lsn: u64,
    /// Records replayed from the WAL tail.
    pub records_replayed: u64,
    /// Records skipped because the checkpoint already covered them.
    pub records_skipped: u64,
    /// Torn tail bytes discarded (and truncated away).
    pub torn_bytes: u64,
    /// Why the tail was discarded, when it was.
    pub torn_reason: Option<&'static str>,
    /// Modeled pages read to load the checkpoint *file* (headers, design
    /// and base sections).  Physical-section bytes are excluded: those
    /// pages are the ASR trees' images, and restoring them charges one
    /// read per node to the trees themselves.
    pub checkpoint_pages_read: u64,
    /// Modeled pages read to scan the WAL.
    pub wal_pages_read: u64,
    /// How each ASR came back from the checkpoint, in id order —
    /// physically adopted page images (`ASRDB 2`), delta-patched images
    /// (`ASRDB 3`), or a rebuild.
    pub asr_load_modes: Vec<(AsrId, AsrLoadMode)>,
    /// Deltas applied on top of the full base to resolve the checkpoint
    /// (0 when `checkpoint.snap` was itself a full snapshot).
    pub delta_chain: usize,
    /// The flight recorder's last events when recovery finished, compact
    /// one-line summaries oldest first.  When the session's recorder was
    /// shared with a fault injector (the crash-recovery harness does
    /// this), the tail names the injected fault that forced recovery.
    pub flight_tail: Vec<String>,
}

/// Point-in-time WAL status (what `\wal status` prints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalStatus {
    /// Active flush policy.
    pub policy: FlushPolicy,
    /// LSN of the last logged record (0 when none yet).
    pub last_lsn: u64,
    /// LSN the current checkpoint covers.
    pub checkpoint_lsn: u64,
    /// Bytes durably in the log file.
    pub durable_bytes: usize,
    /// Records framed but not yet flushed.
    pub pending_records: usize,
    /// Whether a storage failure poisoned the session.
    pub poisoned: bool,
    /// Sealed segments currently retained.
    pub segment_count: usize,
    /// Total bytes held in sealed segments.
    pub archived_bytes: u64,
    /// First LSN crash recovery would replay (everything at or below the
    /// checkpoint LSN is prunable).
    pub oldest_needed_lsn: u64,
    /// The oldest LSN point-in-time recovery can still reach (the oldest
    /// archived checkpoint), when any history is archived.
    pub pitr_floor_lsn: Option<u64>,
    /// Base of the current checkpoint when it is a delta (`None` for a
    /// full snapshot).
    pub delta_base_lsn: Option<u64>,
    /// Deltas between the current checkpoint and its full base (0 for a
    /// full snapshot).
    pub delta_chain_depth: usize,
    /// Modeled pages the last checkpoint of this session wrote (0 before
    /// the first one).
    pub last_checkpoint_pages: u64,
    /// Modeled pages an equivalent *full* checkpoint would have written
    /// (equals `last_checkpoint_pages` when the last one was full).
    pub last_checkpoint_pages_full: u64,
    /// Group-commit pipeline counters, when the pipeline is enabled.
    pub group: Option<GroupCommitStatus>,
}

/// What [`DurableDatabase::checkpoint_delta`] wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCheckpointReport {
    /// LSN the new checkpoint covers.
    pub lsn: u64,
    /// The base checkpoint the delta applies to (`None` when the call
    /// fell back to a full checkpoint).
    pub base_lsn: Option<u64>,
    /// Bytes of the published snapshot document.
    pub snapshot_bytes: u64,
    /// Modeled pages written (`checkpoint.snap` + its archived copy).
    pub pages_written: u64,
    /// Modeled pages an equivalent full checkpoint would have written.
    pub pages_full: u64,
    /// Deltas between the new checkpoint and its full base (0 when the
    /// call wrote a full snapshot).
    pub chain_depth: usize,
}

impl DeltaCheckpointReport {
    /// `true` when the checkpoint was written as a delta.
    pub fn is_delta(&self) -> bool {
        self.base_lsn.is_some()
    }
}

/// Histogram bounds for group-commit batch sizes (records and sessions
/// per flushed group).
const GROUP_BATCH_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Histogram bounds for group-commit latency (milliseconds from the
/// first pending commit to the flush that made it durable).
const GROUP_COMMIT_MS_BOUNDS: [f64; 6] = [0.05, 0.1, 0.5, 1.0, 5.0, 20.0];

/// Live state of the cross-session group-commit pipeline.
///
/// While enabled, the WAL runs under [`FlushPolicy::Explicit`] and
/// sessions announce commit points through
/// [`DurableDatabase::submit_commit`]; the pipeline flushes once per
/// *group* of commits — one `storage.append` (the modeled fsync) covers
/// every record of every session in the batch.
#[derive(Debug)]
struct GroupCommit {
    /// Flush once this many sessions have a commit pending.
    target: usize,
    /// Sessions with a commit submitted but not yet durable.
    pending: usize,
    /// When the oldest pending commit arrived (drives the commit-latency
    /// histogram); `None` while the group is empty.
    opened: Option<Instant>,
    /// Policy to restore when the pipeline is disabled.
    prev_policy: FlushPolicy,
    /// Groups flushed (batches that carried at least one record).
    groups: u64,
    /// Session commits made durable.
    commits: u64,
    /// Records made durable through the pipeline.
    records: u64,
    /// Modeled fsyncs (non-empty flushes) the pipeline performed.
    fsyncs: u64,
    /// Flush a *partial* group once this many ops (logged records +
    /// commit submissions) have elapsed since the group opened —
    /// `None` waits for a full group (or an explicit flush).
    deadline_ops: Option<u64>,
    /// Ops elapsed since the pipeline last flushed.
    ops_since_open: u64,
    /// Groups flushed by the deadline rather than by filling up.
    deadline_flushes: u64,
}

/// Point-in-time counters of the group-commit pipeline (the
/// `wal.group.*` slice of [`WalStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitStatus {
    /// Sessions per group the pipeline waits for before flushing.
    pub target: usize,
    /// Sessions with a commit pending in the currently open group.
    pub pending_sessions: usize,
    /// Groups flushed so far.
    pub groups: u64,
    /// Session commits made durable so far.
    pub commits: u64,
    /// Records made durable through the pipeline so far.
    pub records: u64,
    /// Modeled fsyncs the pipeline performed so far.
    pub fsyncs: u64,
    /// Op-count deadline for flushing a partial group (`None` = wait
    /// for a full group).
    pub deadline_ops: Option<u64>,
    /// Ops elapsed since the pipeline last flushed.
    pub ops_since_open: u64,
    /// Groups flushed by the deadline rather than by filling up.
    pub deadline_flushes: u64,
}

impl GroupCommitStatus {
    /// Fsyncs per committed session — the group-commit win (`< 1.0`
    /// whenever batches carry more than one session's commit).
    pub fn fsyncs_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.fsyncs as f64 / self.commits as f64
        }
    }
}

/// A checkpoint that has been *begun* but not yet published.
///
/// [`DurableDatabase::begin_checkpoint`] takes the WAL fence LSN and
/// pins the database state at that fence in an immutable
/// [`CheckpointSource`]; the session may keep committing — and readers
/// may keep querying [`PendingCheckpoint::snapshot`] — while the caller
/// serializes and publishes the image with
/// [`DurableDatabase::complete_checkpoint`].
#[derive(Debug)]
pub struct PendingCheckpoint {
    fence: u64,
    base_lsn: u64,
    want_delta: bool,
    ids: Vec<String>,
    source: CheckpointSource,
}

impl PendingCheckpoint {
    /// The LSN this checkpoint will cover once published: every record
    /// at or below the fence is inside the pinned image, every record
    /// above it stays in the log for replay.
    pub fn fence(&self) -> u64 {
        self.fence
    }

    /// The pinned read-only view the checkpoint serializes from.
    /// Queries against it run concurrently with the session's writes
    /// *and* with [`DurableDatabase::complete_checkpoint`] itself.
    pub fn snapshot(&self) -> &Snapshot {
        self.source.snapshot()
    }
}

/// What a [`recover_to_lsn`] replay did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PitrReport {
    /// The LSN bound that was requested.
    pub bound: u64,
    /// The archived checkpoint the replay started from.
    pub checkpoint_lsn: u64,
    /// Records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Records skipped as duplicates (already covered by the checkpoint
    /// or an earlier segment — rotation crash windows can overlap).
    pub records_skipped: u64,
    /// Sealed segments read during the replay.
    pub segments_read: u64,
    /// Modeled pages read (checkpoint + segments + tail).
    pub pages_read: u64,
}

/// What [`DurableDatabase::prune_segments`] reclaimed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Sealed segments deleted (all were fully covered by the newest
    /// checkpoint).
    pub segments_removed: u64,
    /// Bytes those segments held.
    pub bytes_reclaimed: u64,
    /// Archived checkpoints older than the newest one deleted with them.
    pub checkpoints_removed: u64,
}

/// A write-ahead-logged, checkpointed, crash-recoverable database.
///
/// Immutable access goes through `Deref<Target = Database>` (queries,
/// stats, the tracer); every mutation goes through the logged wrappers so
/// nothing durable can be skipped.
#[derive(Debug)]
pub struct DurableDatabase<S: Storage> {
    db: Database,
    storage: S,
    wal: WalWriter,
    checkpoint_lsn: u64,
    poisoned: bool,
    wal_sid: StructureId,
    ckpt_sid: StructureId,
    seg_sid: StructureId,
    report: RecoveryReport,
    manifest: SegmentManifest,
    /// LSN of the first record in the active `wal.log` (the next LSN
    /// when the file is empty) — the `first_lsn` a seal would record.
    active_first_lsn: u64,
    segment_threshold: usize,
    /// Modeled pages the last checkpoint wrote and what a full one would
    /// have cost — the `\wal status` "pages saved vs full" line.
    last_ckpt_pages: (u64, u64),
    /// The cross-session group-commit pipeline, when enabled.
    group: Option<GroupCommit>,
    /// Highest fence a [`Self::begin_checkpoint`] ever took.  Beginning
    /// a checkpoint resets the database's dirty tracking at the fence,
    /// so if a pending checkpoint is abandoned (never completed) the
    /// next delta would silently miss the pre-fence changes — deltas are
    /// therefore refused until a *full* checkpoint republishes past the
    /// orphaned fence.
    fuzzy_fence: u64,
    /// Black-box recorder subscribed to the database's tracer; failure
    /// paths read their last-N-events tail from here.
    flightrec: Rc<FlightRecorder>,
}

fn pages(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(PAGE_SIZE as u64)
}

fn manifest_text(checkpoint_lsn: u64) -> String {
    format!("{MANIFEST_MAGIC}\ncheckpoint_lsn {checkpoint_lsn}\n")
}

impl<S: Storage> DurableDatabase<S> {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Make `db` durable in (empty) `storage`: writes an initial
    /// checkpoint capturing the schema and current state, then starts
    /// logging.  Errors with [`DurableError::AlreadyExists`] when the
    /// storage already holds a durable database.
    pub fn create(storage: S, db: Database, policy: FlushPolicy) -> Result<Self> {
        if storage.read(MANIFEST_FILE)?.is_some() {
            return Err(DurableError::AlreadyExists(
                "manifest present; use open() instead".into(),
            ));
        }
        let flightrec = FlightRecorder::shared();
        db.tracer().add_sink(flightrec.clone());
        let mut this = DurableDatabase {
            wal_sid: db.stats().register_structure(StructureKind::Wal, WAL_FILE),
            ckpt_sid: db
                .stats()
                .register_structure(StructureKind::Wal, CHECKPOINT_FILE),
            seg_sid: db
                .stats()
                .register_structure(StructureKind::Wal, SEG_STRUCTURE),
            db,
            storage,
            wal: WalWriter::new(WAL_FILE, policy, 1, 0),
            checkpoint_lsn: 0,
            poisoned: false,
            report: RecoveryReport::default(),
            manifest: SegmentManifest::default(),
            active_first_lsn: 1,
            segment_threshold: DEFAULT_SEGMENT_THRESHOLD,
            last_ckpt_pages: (0, 0),
            group: None,
            fuzzy_fence: 0,
            flightrec,
        };
        this.checkpoint()?;
        Ok(this)
    }

    /// Recover the database from `storage`: load the latest checkpoint
    /// and replay the WAL tail through incremental maintenance,
    /// discarding (and truncating) a torn tail.
    pub fn open(storage: S) -> Result<Self> {
        Self::open_with(storage, FlushPolicy::EveryRecord)
    }

    /// [`Self::open`] with an explicit flush policy for the new session.
    pub fn open_with(storage: S, policy: FlushPolicy) -> Result<Self> {
        Self::open_with_recorder(storage, policy, FlightRecorder::shared())
    }

    /// [`Self::open_with`] recovering into a caller-supplied flight
    /// recorder.  The crash-recovery harness shares one recorder between
    /// a [`crate::FaultyStorage`] and the reopening database, so the
    /// recovery report's [`RecoveryReport::flight_tail`] names the
    /// injected fault alongside the recovery phases it forced.
    pub fn open_with_recorder(
        mut storage: S,
        policy: FlushPolicy,
        flightrec: Rc<FlightRecorder>,
    ) -> Result<Self> {
        let r = Self::recover(&mut storage, policy, &flightrec)?;
        let mut this = DurableDatabase {
            db: r.db,
            storage,
            wal: r.wal,
            checkpoint_lsn: r.checkpoint_lsn,
            poisoned: false,
            wal_sid: r.wal_sid,
            ckpt_sid: r.ckpt_sid,
            seg_sid: r.seg_sid,
            report: r.report,
            manifest: r.manifest,
            active_first_lsn: r.active_first_lsn,
            segment_threshold: DEFAULT_SEGMENT_THRESHOLD,
            last_ckpt_pages: (0, 0),
            group: None,
            fuzzy_fence: r.checkpoint_lsn,
            flightrec,
        };
        if r.ids_remapped {
            // Replay translated ASR ids (dropped slots were compacted by
            // the checkpoint).  Checkpoint now so the log restarts in the
            // current id space — old-space and new-space records must
            // never share a log.
            this.checkpoint()?;
        }
        Ok(this)
    }

    fn recover(
        storage: &mut S,
        policy: FlushPolicy,
        flightrec: &Rc<FlightRecorder>,
    ) -> Result<Recovered> {
        // Manifest: the existence + version check.  Every recovery-side
        // read is stabilized — a single read can be transiently mangled
        // in flight, and recovery acting on it (truncating, re-writing)
        // would turn a one-off fault into permanent loss.
        let manifest = read_stable(storage, MANIFEST_FILE, READ_RETRIES)?
            .ok_or_else(|| DurableError::NotADatabase("no MANIFEST in storage".into()))?;
        let manifest = String::from_utf8(manifest)
            .map_err(|_| DurableError::Corrupt("MANIFEST is not UTF-8".into()))?;
        if manifest.lines().next().map(str::trim) != Some(MANIFEST_MAGIC) {
            return Err(DurableError::Corrupt(format!(
                "bad MANIFEST magic (expected `{MANIFEST_MAGIC}`)"
            )));
        }

        // Checkpoint: its own `CKPT <lsn>` header is authoritative — a
        // crash between writing the snapshot and the manifest leaves the
        // manifest stale.
        let snap = read_stable(storage, CHECKPOINT_FILE, READ_RETRIES)?.ok_or_else(|| {
            DurableError::Corrupt("MANIFEST present but checkpoint.snap missing".into())
        })?;
        let parsed = parse_checkpoint_chain(storage, snap, CHECKPOINT_FILE)?;
        let ParsedCheckpoint {
            mut db,
            lsn: checkpoint_lsn,
            mut asr_remap,
            pages_read: checkpoint_pages_read,
            asr_load_modes,
            delta_chain,
            ..
        } = parsed;

        // The tracer only exists once the checkpoint-built database does,
        // so the black box attaches here and the checkpoint load itself
        // is recorded as an after-the-fact event rather than a span.
        db.tracer().add_sink(flightrec.clone());
        db.tracer().event(
            "recovery.checkpoint_loaded",
            &[
                ("lsn", checkpoint_lsn.to_string()),
                ("pages", checkpoint_pages_read.to_string()),
                ("delta_chain", delta_chain.to_string()),
            ],
        );

        // Sealed segments first (rotation/checkpoint crash windows can
        // leave records both sealed and still in `wal.log`; the LSN
        // cursor skips duplicates), then the active log under the
        // torn-tail rule.
        let seg_manifest = SegmentManifest::load(storage)?;
        let mut cursor = ReplayCursor::new(checkpoint_lsn);
        let mut seg_pages_read = 0u64;
        let mut seg_span = db.tracer().span("recovery.segment_replay");
        for seg in &seg_manifest.segments {
            if seg.last_lsn <= checkpoint_lsn {
                continue; // fully covered; prunable, not needed
            }
            let data = read_stable(storage, &seg.file_name(), READ_RETRIES)?.ok_or_else(|| {
                DurableError::Corrupt(format!(
                    "segment {} is in segments.manifest but missing",
                    seg.file_name()
                ))
            })?;
            seg.verify(&data)?;
            seg_pages_read += pages(data.len());
            let scan = scan_wal(&data)?;
            if scan.torn_bytes > 0 {
                // Sealed segments were fully acknowledged at seal time; a
                // torn frame inside one is at-rest corruption, never an
                // unacknowledged tail.
                return Err(DurableError::Corrupt(format!(
                    "sealed segment {} has an invalid frame",
                    seg.file_name()
                )));
            }
            db.tracer().event(
                "recovery.segment_replayed",
                &[
                    ("seqno", seg.seqno.to_string()),
                    ("first_lsn", seg.first_lsn.to_string()),
                    ("last_lsn", seg.last_lsn.to_string()),
                ],
            );
            cursor.apply(&mut db, &scan.records, &mut asr_remap, u64::MAX)?;
        }
        let seg_replayed = cursor.replayed;
        seg_span.add_attr("replayed", seg_replayed.to_string());
        seg_span.finish();

        let wal_bytes = read_stable(storage, WAL_FILE, READ_RETRIES)?.unwrap_or_default();
        let wal_pages_read = pages(wal_bytes.len());
        let mut wal_span = db.tracer().span("recovery.wal_replay");
        let scan = scan_wal(&wal_bytes)?;
        if scan.torn_bytes > 0 {
            db.tracer().event(
                "recovery.torn_tail",
                &[
                    (
                        "reason",
                        scan.torn_reason
                            .map_or("unknown", |r| r.label())
                            .to_string(),
                    ),
                    ("bytes", scan.torn_bytes.to_string()),
                ],
            );
            // Truncate the garbage so future appends extend a valid log.
            storage.write_atomic(WAL_FILE, &wal_bytes[..scan.valid_bytes])?;
        }
        cursor.apply(&mut db, &scan.records, &mut asr_remap, u64::MAX)?;
        wal_span.add_attr("replayed", (cursor.replayed - seg_replayed).to_string());
        wal_span.add_attr("skipped", cursor.skipped.to_string());
        wal_span.finish();
        let active_first_lsn = scan.records.first().map_or(cursor.tip + 1, |r| r.lsn);

        let report = RecoveryReport {
            checkpoint_lsn,
            records_replayed: cursor.replayed,
            records_skipped: cursor.skipped,
            torn_bytes: scan.torn_bytes as u64,
            torn_reason: scan.torn_reason.map(|r| r.label()),
            checkpoint_pages_read,
            wal_pages_read: wal_pages_read + seg_pages_read,
            asr_load_modes,
            delta_chain,
            flight_tail: flightrec.tail_summaries(FLIGHT_TAIL_EVENTS),
        };
        // Surface recovery through the freshly-built database's
        // observability layer (page reads + metrics counters).
        let stats = db.stats();
        let wal_sid = stats.register_structure(StructureKind::Wal, WAL_FILE);
        let ckpt_sid = stats.register_structure(StructureKind::Wal, CHECKPOINT_FILE);
        let seg_sid = stats.register_structure(StructureKind::Wal, SEG_STRUCTURE);
        for _ in 0..checkpoint_pages_read {
            stats.count_read_for(ckpt_sid);
        }
        for _ in 0..wal_pages_read {
            stats.count_read_for(wal_sid);
        }
        for _ in 0..seg_pages_read {
            stats.count_read_for(seg_sid);
        }
        let metrics = db.tracer().metrics();
        metrics.inc_counter("wal.recovery.records_replayed", cursor.replayed);
        metrics.inc_counter("wal.recovery.records_skipped", cursor.skipped);
        metrics.inc_counter("wal.recovery.torn_bytes", scan.torn_bytes as u64);
        metrics.set_gauge("wal.checkpoint_lsn", checkpoint_lsn as f64);
        metrics.set_gauge("wal.segments.count", seg_manifest.segments.len() as f64);
        metrics.set_gauge("wal.segments.bytes", seg_manifest.archived_bytes() as f64);

        Ok(Recovered {
            db,
            wal: WalWriter::new(WAL_FILE, policy, cursor.tip + 1, scan.valid_bytes),
            checkpoint_lsn,
            wal_sid,
            ckpt_sid,
            seg_sid,
            report,
            manifest: seg_manifest,
            active_first_lsn,
            ids_remapped: !asr_remap.is_empty(),
        })
    }

    /// The report from the `open()` that produced this handle (all zeros
    /// for a freshly created database).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The black-box recorder subscribed to this database's tracer.
    /// Holds the last [`FlightRecorder::capacity`] spans/events; failure
    /// paths ([`crate::ship::replicate`] stalls, recovery reports) embed
    /// its tail.  Share it with a [`crate::FaultyChannel`] /
    /// [`crate::FaultyStorage`] so injected faults land in the same
    /// timeline.
    pub fn flight_recorder(&self) -> &Rc<FlightRecorder> {
        &self.flightrec
    }

    /// Give up durability and keep the in-memory database.  When the
    /// group-commit pipeline is on, buffered records are flushed first
    /// (best effort) so a clean teardown loses nothing.
    pub fn into_database(mut self) -> Database {
        if self.group.is_some() && !self.poisoned && self.wal.pending_records() > 0 {
            let _ = self.flush_wal_accounted();
        }
        std::mem::replace(&mut self.db, Database::new(Schema::new()))
    }

    /// The wrapped database (also available through `Deref`).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Pin a snapshot-isolated read view at the current commit epoch
    /// (see [`Database::snapshot`]).  The view is `Send` — readers on
    /// other threads keep answering from it, bit-identically, while
    /// this session continues to apply and log mutations.
    pub fn snapshot(&mut self) -> Snapshot {
        self.db.snapshot()
    }

    // ------------------------------------------------------------------
    // WAL control
    // ------------------------------------------------------------------

    /// Current WAL status.
    pub fn wal_status(&self) -> WalStatus {
        WalStatus {
            policy: self.wal.policy(),
            last_lsn: self.wal.last_lsn(),
            checkpoint_lsn: self.checkpoint_lsn,
            durable_bytes: self.wal.durable_bytes(),
            pending_records: self.wal.pending_records(),
            poisoned: self.poisoned,
            segment_count: self.manifest.segments.len(),
            archived_bytes: self.manifest.archived_bytes(),
            oldest_needed_lsn: self.checkpoint_lsn + 1,
            pitr_floor_lsn: self.manifest.checkpoints.first().copied(),
            delta_base_lsn: self.manifest.delta_base_of(self.checkpoint_lsn),
            delta_chain_depth: self.manifest.delta_depth(self.checkpoint_lsn),
            last_checkpoint_pages: self.last_ckpt_pages.0,
            last_checkpoint_pages_full: self.last_ckpt_pages.1,
            group: self.group_commit_status(),
        }
    }

    /// The segment/checkpoint archive index.
    pub fn segment_manifest(&self) -> &SegmentManifest {
        &self.manifest
    }

    /// The storage backend (read access — e.g. for a
    /// [`crate::ship::LogShipper`] streaming this database's history).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Rotate the active log into a sealed segment once it holds at
    /// least `bytes` durable bytes (checked after each flush).
    pub fn set_segment_threshold(&mut self, bytes: usize) {
        self.segment_threshold = bytes.max(1);
    }

    /// Change the group-flush policy (takes effect from the next record).
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) {
        self.wal.set_policy(policy);
    }

    /// Force buffered records to storage.
    pub fn flush(&mut self) -> Result<()> {
        self.check_alive()?;
        let span = self.db.tracer().span("wal.flush");
        self.flush_wal_accounted()?;
        span.finish();
        self.maybe_rotate()
    }

    // ------------------------------------------------------------------
    // Group commit
    // ------------------------------------------------------------------

    /// Turn on the cross-session group-commit pipeline: the WAL switches
    /// to [`FlushPolicy::Explicit`] and commits submitted through
    /// [`Self::submit_commit`] are batched — the group flushes (one
    /// `storage.append`, the modeled fsync) once `target` sessions have
    /// a commit pending, amortizing one fsync over the whole batch.
    ///
    /// Explicit [`Self::flush`], checkpoints, and rotation still flush
    /// immediately; they close (and account) the open group.  Dropping
    /// the database or calling [`Self::into_database`] with the pipeline
    /// on flushes buffered records, so a clean teardown loses nothing.
    pub fn enable_group_commit(&mut self, target: usize) {
        let target = target.max(1);
        match self.group.as_mut() {
            Some(g) => g.target = target,
            None => {
                let prev_policy = self.wal.policy();
                self.wal.set_policy(FlushPolicy::Explicit);
                self.group = Some(GroupCommit {
                    target,
                    pending: 0,
                    opened: None,
                    prev_policy,
                    groups: 0,
                    commits: 0,
                    records: 0,
                    fsyncs: 0,
                    deadline_ops: None,
                    ops_since_open: 0,
                    deadline_flushes: 0,
                });
            }
        }
    }

    /// Turn the pipeline off: flush whatever the open group holds, then
    /// restore the flush policy that was active before
    /// [`Self::enable_group_commit`].
    pub fn disable_group_commit(&mut self) -> Result<()> {
        if self.group.is_none() {
            return Ok(());
        }
        self.check_alive()?;
        self.flush_wal_accounted()?;
        let g = self.group.take().expect("checked above");
        self.wal.set_policy(g.prev_policy);
        self.maybe_rotate()
    }

    /// Announce a session's commit point to the group-commit pipeline.
    ///
    /// Returns `Ok(true)` when the commit is durable on return (the
    /// group reached its target and flushed, or the pipeline is off and
    /// this degenerated to [`Self::flush`]); `Ok(false)` when the commit
    /// is parked in the open group, to be made durable by the flush that
    /// closes it.
    pub fn submit_commit(&mut self) -> Result<bool> {
        self.check_alive()?;
        if self.group.is_none() {
            self.flush()?;
            return Ok(true);
        }
        let (pending, target, due) = {
            let g = self.group.as_mut().expect("checked above");
            g.pending += 1;
            if g.opened.is_none() {
                g.opened = Some(Instant::now());
            }
            g.ops_since_open += 1;
            let due = g.deadline_ops.is_some_and(|d| g.ops_since_open >= d);
            (g.pending, g.target, due)
        };
        if pending >= target {
            self.flush()?;
            return Ok(true);
        }
        if due {
            self.flush_on_deadline()?;
            return Ok(true);
        }
        self.db
            .tracer()
            .metrics()
            .set_gauge("wal.group.pending_sessions", pending as f64);
        Ok(false)
    }

    /// Arm (or, with `None`, disarm) the group-flush deadline: a
    /// *partial* group flushes once `ops` ops — logged records plus
    /// commit submissions — have elapsed since the group opened, so a
    /// quiet session mix can't park a commit in the buffer
    /// indefinitely.  Deterministic (op-counted, not wall-clock), like
    /// every other schedule in the test harness.  No-op while the
    /// pipeline is off.
    pub fn set_group_commit_deadline(&mut self, ops: Option<u64>) {
        if let Some(g) = self.group.as_mut() {
            g.deadline_ops = ops.map(|o| o.max(1));
        }
    }

    /// A deadline-triggered group flush: count it, then flush normally
    /// (the ledger settles in [`Self::flush_wal_accounted`]).
    fn flush_on_deadline(&mut self) -> Result<()> {
        let pending = {
            let g = self.group.as_mut().expect("deadline implies pipeline");
            g.deadline_flushes += 1;
            g.pending
        };
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.group.deadline_flushes", 1);
        self.db.tracer().event(
            "wal.group.deadline",
            &[("pending_sessions", pending.to_string())],
        );
        self.flush()
    }

    /// Pipeline counters, `None` while group commit is off.
    pub fn group_commit_status(&self) -> Option<GroupCommitStatus> {
        self.group.as_ref().map(|g| GroupCommitStatus {
            target: g.target,
            pending_sessions: g.pending,
            groups: g.groups,
            commits: g.commits,
            records: g.records,
            fsyncs: g.fsyncs,
            deadline_ops: g.deadline_ops,
            ops_since_open: g.ops_since_open,
            deadline_flushes: g.deadline_flushes,
        })
    }

    /// Flush the WAL and settle the group-commit ledger: the pending
    /// commits (and the records that carried them) are durable after
    /// the single `storage.append` a flush performs, so the open group
    /// closes here and the `wal.group.*` metrics record the batch.
    fn flush_wal_accounted(&mut self) -> Result<()> {
        let records = self.wal.pending_records() as u64;
        let before = self.wal.durable_bytes();
        let res = self.wal.flush(&mut self.storage);
        self.note_log_growth(before);
        self.poison_on_err(res)?;
        let Some(g) = self.group.as_mut() else {
            return Ok(());
        };
        let sessions = g.pending as u64;
        let elapsed_ms = g
            .opened
            .take()
            .map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
        g.pending = 0;
        g.ops_since_open = 0;
        g.commits += sessions;
        g.records += records;
        if records > 0 {
            g.groups += 1;
            g.fsyncs += 1;
        }
        let metrics = self.db.tracer().metrics();
        metrics.set_gauge("wal.group.pending_sessions", 0.0);
        if sessions > 0 {
            metrics.inc_counter("wal.group.commits", sessions);
            metrics.observe(
                "wal.group.batch_sessions",
                &GROUP_BATCH_BOUNDS,
                sessions as f64,
            );
            metrics.observe("wal.group.commit_ms", &GROUP_COMMIT_MS_BOUNDS, elapsed_ms);
        }
        if records > 0 {
            metrics.inc_counter("wal.group.records", records);
            metrics.inc_counter("wal.group.fsyncs", 1);
            metrics.observe(
                "wal.group.batch_records",
                &GROUP_BATCH_BOUNDS,
                records as f64,
            );
        }
        Ok(())
    }

    /// Checkpoint: flush, pin the state at the WAL fence, archive a PITR
    /// copy of the snapshot, publish the manifest, then atomically
    /// replace `checkpoint.snap`.
    ///
    /// Composes [`Self::begin_checkpoint`] + [`Self::complete_checkpoint`];
    /// see them for the fence/crash-window reasoning.  The log is *not*
    /// truncated — records at or below the fence are skipped by LSN
    /// during recovery and reclaimed by the next rotation.
    pub fn checkpoint(&mut self) -> Result<()> {
        let pending = self.begin_checkpoint(false)?;
        self.complete_checkpoint(pending).map(|_| ())
    }

    /// Start a fuzzy checkpoint: flush the WAL, take the fence LSN, and
    /// pin the database state at that fence in an immutable
    /// [`CheckpointSource`] snapshot — without pausing the session.
    ///
    /// Performs **no storage writes** of its own, so there is no new
    /// crash window: until [`Self::complete_checkpoint`] publishes the
    /// image, recovery sees the previous checkpoint plus the full log.
    /// Commits logged after `begin` carry LSNs above the fence and stay
    /// in the log for replay over the published image.
    ///
    /// Abandoning the returned [`PendingCheckpoint`] is safe but resets
    /// the delta fence: the next checkpoints fall back to full snapshots
    /// until one publishes past the orphaned fence (beginning a
    /// checkpoint clears the dirty tracking a delta would need).
    pub fn begin_checkpoint(&mut self, want_delta: bool) -> Result<PendingCheckpoint> {
        self.check_alive()?;
        self.flush_wal_accounted()?;
        let fence = self.wal.last_lsn();
        let base_lsn = self.checkpoint_lsn;
        // A delta's dirty sets are only complete when every earlier
        // fence was published (or covered by a published checkpoint).
        let want_delta = want_delta && self.fuzzy_fence <= base_lsn;
        self.fuzzy_fence = fence;
        let ids: Vec<String> = self.db.asrs().map(|(id, _)| id.to_string()).collect();
        let source = self.db.begin_checkpoint();
        Ok(PendingCheckpoint {
            fence,
            base_lsn,
            want_delta,
            ids,
            source,
        })
    }

    /// Publish a begun checkpoint: archive copy + manifest entry first
    /// (PITR history + delta lineage), then the authoritative
    /// `checkpoint.snap` as the commit point, then the diagnostics
    /// `MANIFEST`.
    ///
    /// Every crash window falls *backwards*: until `checkpoint.snap` is
    /// replaced, recovery starts from the previous checkpoint and
    /// replays the longer log; after it, records at or below the fence
    /// are skipped by LSN.  Serialization reads only the pinned
    /// [`CheckpointSource`], so commits that landed between `begin` and
    /// `complete` are invisible to the image — they stay in the log,
    /// above the fence.
    pub fn complete_checkpoint(
        &mut self,
        pending: PendingCheckpoint,
    ) -> Result<DeltaCheckpointReport> {
        self.check_alive()?;
        let PendingCheckpoint {
            fence: lsn,
            base_lsn: base,
            want_delta,
            ids,
            source,
        } = pending;
        if lsn < self.checkpoint_lsn {
            return Err(DurableError::Corrupt(format!(
                "stale checkpoint: fence {lsn} is behind the published checkpoint {}",
                self.checkpoint_lsn
            )));
        }
        let mut span = self.db.tracer().span("wal.checkpoint");
        let full_body = source.save_full();
        let delta_body = if want_delta
            && self.manifest.checkpoints.contains(&base)
            && self.manifest.delta_depth(base) < DELTA_CHAIN_LIMIT
        {
            source.save_delta(base)
        } else {
            None
        };
        let (body, base_lsn) = match delta_body {
            Some(body) => (body, Some(base)),
            None => (full_body.clone(), None),
        };
        let header = format!("{CKPT_MAGIC} {lsn}\n{ASRIDS_MAGIC} {}\n", ids.join(","));
        let snap = format!("{header}{body}");
        let full_snap_len = header.len() + full_body.len();
        let res = self
            .storage
            .write_atomic(&checkpoint_archive_name(lsn), snap.as_bytes());
        self.poison_on_err(res)?;
        match base_lsn {
            Some(b) => self.manifest.add_delta_checkpoint(lsn, b),
            None => self.manifest.add_checkpoint(lsn),
        }
        let res = self.manifest.store(&mut self.storage);
        self.poison_on_err(res)?;
        let res = self.storage.write_atomic(CHECKPOINT_FILE, snap.as_bytes());
        self.poison_on_err(res)?;
        let res = self
            .storage
            .write_atomic(MANIFEST_FILE, manifest_text(lsn).as_bytes());
        self.poison_on_err(res)?;
        self.checkpoint_lsn = lsn;
        let pages_written = pages(2 * snap.len());
        let pages_full = pages(2 * full_snap_len);
        for _ in 0..pages_written {
            // checkpoint.snap + its archived copy
            self.db.stats().count_write_for(self.ckpt_sid);
        }
        self.last_ckpt_pages = (pages_written, pages_full);
        let chain_depth = self.manifest.delta_depth(lsn);
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.checkpoints", 1);
        if base_lsn.is_some() {
            metrics.inc_counter("wal.checkpoints.delta", 1);
        }
        metrics.set_gauge("wal.checkpoint_lsn", lsn as f64);
        metrics.set_gauge("wal.checkpoint.chain_depth", chain_depth as f64);
        metrics.set_gauge("wal.segments.count", self.manifest.segments.len() as f64);
        metrics.set_gauge("wal.segments.bytes", self.manifest.archived_bytes() as f64);
        span.add_attr("lsn", lsn.to_string());
        span.add_attr("bytes", snap.len().to_string());
        span.add_attr(
            "mode",
            if base_lsn.is_some() { "delta" } else { "full" }.to_string(),
        );
        if let Some(b) = base_lsn {
            span.add_attr("base", b.to_string());
        }
        span.finish();
        Ok(DeltaCheckpointReport {
            lsn,
            base_lsn,
            snapshot_bytes: snap.len() as u64,
            pages_written,
            pages_full,
            chain_depth,
        })
    }

    /// [`Self::checkpoint`], but write only what changed since the
    /// current checkpoint: an `ASRDB 3` delta whose base is the previous
    /// checkpoint, with lineage recorded as a `D` record in
    /// `segments.manifest`.  Falls back to a full checkpoint — reported,
    /// never an error — when the physical design changed (deltas never
    /// span ASR creation/drop or type-size changes), when the base
    /// archive is gone, or when the chain would exceed
    /// [`DELTA_CHAIN_LIMIT`].  A call with nothing logged since the
    /// current checkpoint is a no-op (republishing a same-LSN delta
    /// would overwrite its own base archive).
    pub fn checkpoint_delta(&mut self) -> Result<DeltaCheckpointReport> {
        self.check_alive()?;
        self.flush_wal_accounted()?;
        if self.wal.last_lsn() == self.checkpoint_lsn {
            // Nothing logged since the current checkpoint: a delta here
            // would take the same LSN — and the same archive file name —
            // as its own base.  Report the standing lineage instead.
            let mut span = self.db.tracer().span("wal.checkpoint");
            span.add_attr("mode", "noop".to_string());
            span.finish();
            return Ok(DeltaCheckpointReport {
                lsn: self.checkpoint_lsn,
                base_lsn: self.manifest.delta_base_of(self.checkpoint_lsn),
                chain_depth: self.manifest.delta_depth(self.checkpoint_lsn),
                ..DeltaCheckpointReport::default()
            });
        }
        let pending = self.begin_checkpoint(true)?;
        self.complete_checkpoint(pending)
    }

    /// Rotate now: seal the active log (flushing first) into a segment
    /// and publish it in `segments.manifest`.  A no-op returning `None`
    /// when the log holds no records.
    pub fn rotate_segment(&mut self) -> Result<Option<SegmentMeta>> {
        self.check_alive()?;
        let mut span = self.db.tracer().span("wal.rotate");
        self.flush_wal_accounted()?;
        let Some(meta) = self.seal_active_log()? else {
            return Ok(None);
        };
        self.manifest.segments.push(meta);
        let res = self.manifest.store(&mut self.storage);
        self.poison_on_err(res)?;
        let res = self.storage.remove(WAL_FILE);
        self.poison_on_err(res)?;
        self.wal = WalWriter::new(WAL_FILE, self.wal.policy(), self.wal.next_lsn(), 0);
        self.active_first_lsn = self.wal.next_lsn();
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.segments.sealed", 1);
        metrics.set_gauge("wal.segments.count", self.manifest.segments.len() as f64);
        metrics.set_gauge("wal.segments.bytes", self.manifest.archived_bytes() as f64);
        span.add_attr("seqno", meta.seqno.to_string());
        span.add_attr("first_lsn", meta.first_lsn.to_string());
        span.add_attr("last_lsn", meta.last_lsn.to_string());
        span.finish();
        Ok(Some(meta))
    }

    /// Delete sealed segments fully covered by the newest checkpoint,
    /// and archived checkpoints older than it — except checkpoints a
    /// retained delta chain still needs as bases (the PITR floor is
    /// delta-chain aware: pruning never orphans a delta).  Crash
    /// recovery never needs the pruned history; point-in-time recovery
    /// below the current checkpoint stops being served
    /// ([`recover_to_lsn`] then returns
    /// [`DurableError::PitrUnavailable`] for pruned bounds).
    pub fn prune_segments(&mut self) -> Result<PruneReport> {
        self.check_alive()?;
        let mut span = self.db.tracer().span("wal.prune");
        let keep_lsn = self.checkpoint_lsn;
        let required = self.manifest.required_checkpoints(keep_lsn);
        let pruned: Vec<SegmentMeta> = self
            .manifest
            .segments
            .iter()
            .copied()
            .filter(|s| s.last_lsn <= keep_lsn)
            .collect();
        let dropped_ckpts: Vec<u64> = self
            .manifest
            .checkpoints
            .iter()
            .copied()
            .filter(|c| !required.contains(c))
            .collect();
        if pruned.is_empty() && dropped_ckpts.is_empty() {
            return Ok(PruneReport::default());
        }
        let mut next = self.manifest.clone();
        next.segments.retain(|s| s.last_lsn > keep_lsn);
        next.checkpoints.retain(|c| required.contains(c));
        next.deltas.retain(|(l, _)| required.contains(l));
        // Publish the shrunken manifest first: a crash after it leaves
        // unreferenced files behind (harmless), a crash before it loses
        // nothing.
        let res = next.store(&mut self.storage);
        self.poison_on_err(res)?;
        self.manifest = next;
        for seg in &pruned {
            let res = self.storage.remove(&seg.file_name());
            self.poison_on_err(res)?;
        }
        for lsn in &dropped_ckpts {
            let res = self.storage.remove(&checkpoint_archive_name(*lsn));
            self.poison_on_err(res)?;
        }
        let report = PruneReport {
            segments_removed: pruned.len() as u64,
            bytes_reclaimed: pruned.iter().map(|s| s.bytes).sum(),
            checkpoints_removed: dropped_ckpts.len() as u64,
        };
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.segments.pruned", report.segments_removed);
        metrics.set_gauge("wal.segments.count", self.manifest.segments.len() as f64);
        metrics.set_gauge("wal.segments.bytes", self.manifest.archived_bytes() as f64);
        span.add_attr("segments_removed", report.segments_removed.to_string());
        span.add_attr("bytes_reclaimed", report.bytes_reclaimed.to_string());
        span.finish();
        Ok(report)
    }

    /// Write the active log's bytes out as a sealed segment file (no
    /// manifest update, no log truncation — the caller sequences those
    /// for its own crash-window guarantees).  `None` when the log is
    /// empty.
    fn seal_active_log(&mut self) -> Result<Option<SegmentMeta>> {
        if self.wal.durable_bytes() == 0 {
            return Ok(None);
        }
        let bytes = self
            .poison_on_err(read_stable(&self.storage, WAL_FILE, READ_RETRIES))?
            .unwrap_or_default();
        let scan = scan_wal(&bytes)?;
        if scan.torn_bytes > 0 || bytes.len() != self.wal.durable_bytes() {
            // The writer acknowledged these bytes; disagreement here is
            // lost durability, not a crash artefact.
            self.poisoned = true;
            return Err(DurableError::Corrupt(format!(
                "active log holds {} valid of {} expected bytes at seal time",
                scan.valid_bytes,
                self.wal.durable_bytes()
            )));
        }
        let Some(first) = scan.records.first() else {
            return Ok(None);
        };
        let meta = SegmentMeta {
            seqno: self.manifest.next_seqno(),
            first_lsn: first.lsn,
            last_lsn: scan.records.last().expect("non-empty").lsn,
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
        };
        let res = self.storage.write_atomic(&meta.file_name(), &bytes);
        self.poison_on_err(res)?;
        for _ in 0..pages(bytes.len()) {
            self.db.stats().count_write_for(self.seg_sid);
        }
        Ok(Some(meta))
    }

    /// Auto-rotation hook: seal once the durable log crosses the
    /// threshold and nothing is buffered (group-commit buffers flush on
    /// their own schedule; rotation never forces them early).
    fn maybe_rotate(&mut self) -> Result<()> {
        if self.wal.pending_records() == 0 && self.wal.durable_bytes() >= self.segment_threshold {
            self.rotate_segment()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Logged mutations
    // ------------------------------------------------------------------

    /// Create and register an object of `type_name` (logged).
    pub fn instantiate(&mut self, type_name: &str) -> Result<Oid> {
        self.check_alive()?;
        let oid = self.db.instantiate(type_name)?;
        self.log(LogOp::New {
            ty: type_name.to_string(),
            oid,
        })?;
        Ok(oid)
    }

    /// Assign an attribute with ASR maintenance (logged unless the value
    /// is unchanged).
    pub fn set_attribute(&mut self, owner: Oid, attr: &str, value: Value) -> Result<()> {
        self.check_alive()?;
        if self.db.base().get_attribute(owner, attr)? == value {
            return Ok(()); // no-op: nothing to maintain, nothing to log
        }
        self.db.set_attribute(owner, attr, value.clone())?;
        self.log(LogOp::Set {
            owner,
            attr: attr.to_string(),
            value,
        })
    }

    /// Insert into a set object with ASR maintenance (logged when the
    /// element was actually added).
    pub fn insert_into_set(&mut self, set: Oid, elem: Value) -> Result<bool> {
        self.check_alive()?;
        if !self.db.insert_into_set(set, elem.clone())? {
            return Ok(false);
        }
        self.log(LogOp::Insert { set, elem })?;
        Ok(true)
    }

    /// Remove from a set object with ASR maintenance (logged when the
    /// element was actually present).
    pub fn remove_from_set(&mut self, set: Oid, elem: &Value) -> Result<bool> {
        self.check_alive()?;
        if !self.db.remove_from_set(set, elem)? {
            return Ok(false);
        }
        self.log(LogOp::Remove {
            set,
            elem: elem.clone(),
        })?;
        Ok(true)
    }

    /// `insert o into owner.attr` — resolves the owning attribute to its
    /// set and logs the set-level insert.
    pub fn insert_into_attr_set(&mut self, owner: Oid, attr: &str, elem: Value) -> Result<bool> {
        self.check_alive()?;
        let set = self
            .db
            .base()
            .get_attribute(owner, attr)?
            .as_ref_oid()
            .ok_or_else(|| {
                DurableError::Asr(asr_core::AsrError::BadUpdatePosition(format!(
                    "{owner}.{attr} is NULL"
                )))
            })?;
        self.insert_into_set(set, elem)
    }

    /// Delete an object (logged; ASRs rebuild as in the plain database).
    pub fn delete_object(&mut self, oid: Oid) -> Result<()> {
        self.check_alive()?;
        self.db.delete_object(oid)?;
        self.log(LogOp::Delete { oid })
    }

    /// Bind a persistent variable (logged).
    pub fn bind_variable(&mut self, name: &str, value: Value) -> Result<()> {
        self.check_alive()?;
        self.db.bind_variable(name, value.clone());
        self.log(LogOp::Bind {
            name: name.to_string(),
            value,
        })
    }

    /// Configure the clustered object size of a type, by name (logged).
    pub fn set_type_size(&mut self, type_name: &str, bytes: usize) -> Result<()> {
        self.check_alive()?;
        let ty = self.db.base().schema().require(type_name)?;
        self.db.set_type_size(ty, bytes);
        self.log(LogOp::TypeSize {
            ty: type_name.to_string(),
            bytes,
        })
    }

    /// Build an access support relation over a dotted path (logged).
    pub fn create_asr_on(&mut self, dotted: &str, config: AsrConfig) -> Result<AsrId> {
        self.check_alive()?;
        let op = LogOp::CreateAsr {
            id: 0, // patched below with the assigned id
            path: dotted.to_string(),
            extension: config.extension.name().to_string(),
            cuts: config.decomposition.cuts().to_vec(),
            keep_set_oids: config.keep_set_oids,
        };
        let id = self.db.create_asr_on(dotted, config)?;
        let op = match op {
            LogOp::CreateAsr {
                path,
                extension,
                cuts,
                keep_set_oids,
                ..
            } => LogOp::CreateAsr {
                id,
                path,
                extension,
                cuts,
                keep_set_oids,
            },
            _ => unreachable!(),
        };
        self.log(op)?;
        Ok(id)
    }

    /// Drop an access support relation (logged).
    pub fn drop_asr(&mut self, id: AsrId) -> Result<()> {
        self.check_alive()?;
        self.db.drop_asr(id)?;
        self.log(LogOp::DropAsr { id })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_alive(&self) -> Result<()> {
        if self.poisoned {
            Err(DurableError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison_on_err<T>(&mut self, r: Result<T>) -> Result<T> {
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// Append one logical record, honouring the flush policy and
    /// attributing modeled page writes to the log's tail pages (group
    /// commit writes the shared tail page once, not once per record).
    fn log(&mut self, op: LogOp) -> Result<()> {
        let mut span = self.db.tracer().span("wal.append");
        let before = self.wal.durable_bytes();
        let res = self.wal.append(&mut self.storage, op);
        self.note_log_growth(before);
        self.poison_on_err(res)?;
        self.db.tracer().metrics().inc_counter("wal.records", 1);
        span.add_attr("lsn", self.wal.last_lsn().to_string());
        span.finish();
        // Each logged record ticks the group-flush deadline: parked
        // records and commits flush once the op budget elapses, even if
        // the group never fills (or never opens — a deadline bounds the
        // durability lag of *any* buffered record).
        let due = match self.group.as_mut() {
            Some(g) if g.deadline_ops.is_some() => {
                g.ops_since_open += 1;
                g.deadline_ops.is_some_and(|d| g.ops_since_open >= d)
            }
            _ => false,
        };
        if due {
            self.flush_on_deadline()?;
        }
        self.maybe_rotate()
    }

    /// Charge page writes for log growth from `before` to the current
    /// durable size: the tail page plus any newly filled pages.
    fn note_log_growth(&mut self, before: usize) {
        let after = self.wal.durable_bytes();
        if after == before {
            return;
        }
        let first = before / PAGE_SIZE;
        let last = (after - 1) / PAGE_SIZE;
        for _ in first..=last {
            self.db.stats().count_write_for(self.wal_sid);
        }
        let metrics = self.db.tracer().metrics();
        metrics.inc_counter("wal.flushes", 1);
        metrics.inc_counter("wal.bytes", (after - before) as u64);
    }
}

impl<S: Storage> Deref for DurableDatabase<S> {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

impl<S: Storage> Drop for DurableDatabase<S> {
    /// Clean-shutdown durability for the group-commit pipeline: records
    /// parked in an open group are flushed (best effort) so dropping a
    /// session that batched its commits loses nothing.  Sessions
    /// *without* the pipeline keep the historical semantics — dropping
    /// one models a process crash, and the unflushed suffix is lost
    /// (the crash-recovery harness relies on exactly that).
    fn drop(&mut self) {
        if self.group.is_some() && !self.poisoned && self.wal.pending_records() > 0 {
            let _ = self.flush_wal_accounted();
        }
    }
}

/// Replay one logical record against a recovering database.
///
/// ASR ids are remapped: checkpoint snapshots compact dropped slots away,
/// so an id logged after a drop may differ from the id the re-creation
/// yields; `asr_remap` carries logged-id → actual-id for later drops.
pub(crate) fn apply_op(
    db: &mut Database,
    op: &LogOp,
    asr_remap: &mut BTreeMap<AsrId, AsrId>,
) -> Result<()> {
    match op {
        LogOp::New { ty, oid } => {
            // Forced-OID restore: replay must reproduce the logged OID
            // even where a fresh instantiation would pick another one
            // (e.g. the pre-checkpoint maximum OID was deleted).
            db.instantiate_with_oid(ty, *oid)?;
        }
        LogOp::Set { owner, attr, value } => db.set_attribute(*owner, attr, value.clone())?,
        LogOp::Insert { set, elem } => {
            if !db.insert_into_set(*set, elem.clone())? {
                return Err(DurableError::ReplayMismatch(format!(
                    "insert into {set} was logged as effective but replayed as a no-op"
                )));
            }
        }
        LogOp::Remove { set, elem } => {
            if !db.remove_from_set(*set, elem)? {
                return Err(DurableError::ReplayMismatch(format!(
                    "remove from {set} was logged as effective but replayed as a no-op"
                )));
            }
        }
        LogOp::Delete { oid } => db.delete_object(*oid)?,
        LogOp::Bind { name, value } => db.bind_variable(name, value.clone()),
        LogOp::TypeSize { ty, bytes } => {
            let id = db.base().schema().require(ty)?;
            db.set_type_size(id, *bytes);
        }
        LogOp::CreateAsr {
            id,
            path,
            extension,
            cuts,
            keep_set_oids,
        } => {
            let ext = Extension::ALL
                .into_iter()
                .find(|e| e.name() == extension)
                .ok_or_else(|| {
                    DurableError::Corrupt(format!("unknown extension `{extension}` in WAL"))
                })?;
            let config = AsrConfig {
                extension: ext,
                decomposition: Decomposition::new(cuts.clone())?,
                keep_set_oids: *keep_set_oids,
            };
            let actual = db.create_asr_on(path, config)?;
            if actual != *id {
                asr_remap.insert(*id, actual);
            }
        }
        LogOp::DropAsr { id } => {
            let actual = asr_remap.get(id).copied().unwrap_or(*id);
            db.drop_asr(actual)?;
        }
    }
    Ok(())
}

/// Everything recovery produces except the storage handle itself (which
/// the caller still owns and moves into the assembled database).
struct Recovered {
    db: Database,
    wal: WalWriter,
    checkpoint_lsn: u64,
    wal_sid: StructureId,
    ckpt_sid: StructureId,
    seg_sid: StructureId,
    report: RecoveryReport,
    manifest: SegmentManifest,
    active_first_lsn: u64,
    /// Replay had to translate ASR ids — the log must restart in the new
    /// id space (open() checkpoints immediately).
    ids_remapped: bool,
}

/// A checkpoint file pulled apart: header LSN, ASR id translation seeded
/// from the `ASRIDS` line, and the loaded database.
pub(crate) struct ParsedCheckpoint {
    pub(crate) db: Database,
    pub(crate) lsn: u64,
    pub(crate) asr_remap: BTreeMap<AsrId, AsrId>,
    /// Modeled pages to read the checkpoint *file(s)* (headers, design
    /// and base sections — physical-section bytes are charged to the ASR
    /// trees by the load itself).  A delta chain sums every link.
    pub(crate) pages_read: u64,
    pub(crate) asr_load_modes: Vec<(AsrId, AsrLoadMode)>,
    /// Deltas applied on top of the full base (0 for a full snapshot).
    pub(crate) delta_chain: usize,
    /// Raw bytes of every checkpoint file read (the top document plus
    /// any chain links).
    pub(crate) total_bytes: usize,
}

/// A checkpoint document split at its header: the `CKPT` LSN, the
/// `ASRIDS` session ids, and the snapshot body (full or delta).
pub(crate) struct CheckpointParts {
    pub(crate) lsn: u64,
    pub(crate) session_ids: Vec<AsrId>,
    pub(crate) body: String,
    pub(crate) total_bytes: usize,
}

/// Split a `CKPT <lsn>` + `ASRIDS` + body document without loading it.
pub(crate) fn split_checkpoint(bytes: Vec<u8>, what: &str) -> Result<CheckpointParts> {
    let total_bytes = bytes.len();
    let snap = String::from_utf8(bytes)
        .map_err(|_| DurableError::Corrupt(format!("{what} is not UTF-8")))?;
    let (header, rest) = snap
        .split_once('\n')
        .ok_or_else(|| DurableError::Corrupt(format!("{what} is empty")))?;
    let lsn: u64 = header
        .strip_prefix(CKPT_MAGIC)
        .map(str::trim)
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| DurableError::Corrupt(format!("bad checkpoint header `{header}`")))?;
    let (ids_line, body) = rest
        .split_once('\n')
        .ok_or_else(|| DurableError::Corrupt(format!("{what} missing ASRIDS line")))?;
    let session_ids: Vec<AsrId> = ids_line
        .strip_prefix(ASRIDS_MAGIC)
        .ok_or_else(|| DurableError::Corrupt(format!("bad ASRIDS line `{ids_line}`")))?
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse()
                .map_err(|_| DurableError::Corrupt(format!("bad ASR id `{t}` in ASRIDS")))
        })
        .collect::<Result<_>>()?;
    Ok(CheckpointParts {
        lsn,
        session_ids,
        body: body.to_string(),
        total_bytes,
    })
}

/// Loading compacts the snapshot's ASRs into slots 0..k; seed the replay
/// translation from the session ids they had when logged.
pub(crate) fn remap_from_ids(session_ids: &[AsrId]) -> BTreeMap<AsrId, AsrId> {
    let mut asr_remap: BTreeMap<AsrId, AsrId> = BTreeMap::new();
    for (slot, orig) in session_ids.iter().enumerate() {
        if *orig != slot {
            asr_remap.insert(*orig, slot);
        }
    }
    asr_remap
}

fn assemble_parsed(
    lsn: u64,
    session_ids: &[AsrId],
    db: Database,
    load: asr_core::LoadReport,
    total_bytes: usize,
) -> ParsedCheckpoint {
    ParsedCheckpoint {
        db,
        lsn,
        asr_remap: remap_from_ids(session_ids),
        pages_read: pages(total_bytes - load.physical_bytes.min(total_bytes)),
        asr_load_modes: load.asrs,
        delta_chain: load.delta_chain,
        total_bytes,
    }
}

/// Parse a `CKPT <lsn>` + `ASRIDS` + *full* snapshot checkpoint body (a
/// shipped bootstrap delivery, or any checkpoint known to be full).  A
/// delta body is an error — it cannot be loaded without its base chain
/// (see [`parse_checkpoint_chain`]).
pub(crate) fn parse_checkpoint(bytes: Vec<u8>, what: &str) -> Result<ParsedCheckpoint> {
    let parts = split_checkpoint(bytes, what)?;
    if Database::is_delta_snapshot(&parts.body) {
        return Err(DurableError::Corrupt(format!(
            "{what} is a delta checkpoint; its base chain is required to load it"
        )));
    }
    let (db, load) = Database::load_from_string_report(&parts.body)?;
    Ok(assemble_parsed(
        parts.lsn,
        &parts.session_ids,
        db,
        load,
        parts.total_bytes,
    ))
}

/// Parse a checkpoint document, resolving `ASRDB 3` delta bodies through
/// their archived base chain: each delta names its base checkpoint LSN,
/// whose [`checkpoint_archive_name`] file is read from `storage`, down
/// to a full snapshot; the chain is then applied oldest-first (leniently
/// — a patch that cannot apply falls back to a charged rebuild, as crash
/// recovery must come back up).
pub(crate) fn parse_checkpoint_chain<S: Storage>(
    storage: &S,
    snap: Vec<u8>,
    what: &str,
) -> Result<ParsedCheckpoint> {
    let top = split_checkpoint(snap, what)?;
    if !Database::is_delta_snapshot(&top.body) {
        let (db, load) = Database::load_from_string_report(&top.body)?;
        return Ok(assemble_parsed(
            top.lsn,
            &top.session_ids,
            db,
            load,
            top.total_bytes,
        ));
    }
    let mut total_bytes = top.total_bytes;
    let mut delta_texts: Vec<String> = Vec::new(); // newest first
    let mut visited = std::collections::BTreeSet::from([top.lsn]);
    let mut base_id = Database::delta_base_id(&top.body)?;
    delta_texts.push(top.body);
    let base_parts = loop {
        if !visited.insert(base_id) {
            return Err(DurableError::Corrupt(format!(
                "delta checkpoint chain under {what} is cyclic at LSN {base_id}"
            )));
        }
        let name = checkpoint_archive_name(base_id);
        let bytes = read_stable(storage, &name, READ_RETRIES)?.ok_or_else(|| {
            DurableError::Corrupt(format!(
                "{what} is a delta over checkpoint LSN {base_id}, but its archive {name} is missing"
            ))
        })?;
        let parts = split_checkpoint(bytes, &name)?;
        if parts.lsn != base_id {
            return Err(DurableError::Corrupt(format!(
                "archived checkpoint {name} claims LSN {}",
                parts.lsn
            )));
        }
        total_bytes += parts.total_bytes;
        if Database::is_delta_snapshot(&parts.body) {
            base_id = Database::delta_base_id(&parts.body)?;
            delta_texts.push(parts.body);
        } else {
            break parts;
        }
    };
    delta_texts.reverse();
    let refs: Vec<&str> = delta_texts.iter().map(String::as_str).collect();
    let (db, load) = Database::load_from_chain_report(&base_parts.body, &refs)?;
    Ok(assemble_parsed(
        top.lsn,
        &top.session_ids,
        db,
        load,
        total_bytes,
    ))
}

/// LSN-driven replay over possibly-overlapping record streams
/// (checkpoint < segments < active log): duplicates are skipped, gaps
/// are hard errors, records past `bound` are ignored.
struct ReplayCursor {
    /// Highest LSN applied (or covered by the starting checkpoint).
    tip: u64,
    replayed: u64,
    skipped: u64,
}

impl ReplayCursor {
    fn new(checkpoint_lsn: u64) -> Self {
        ReplayCursor {
            tip: checkpoint_lsn,
            replayed: 0,
            skipped: 0,
        }
    }

    fn apply(
        &mut self,
        db: &mut Database,
        records: &[Record],
        asr_remap: &mut BTreeMap<AsrId, AsrId>,
        bound: u64,
    ) -> Result<()> {
        for rec in records {
            if rec.lsn > bound {
                break; // records are in LSN order within a stream
            }
            if rec.lsn <= self.tip {
                self.skipped += 1;
                continue;
            }
            if rec.lsn != self.tip + 1 {
                return Err(DurableError::Corrupt(format!(
                    "LSN gap in replay: have {}, next record is {}",
                    self.tip, rec.lsn
                )));
            }
            apply_op(db, &rec.op, asr_remap)?;
            self.tip = rec.lsn;
            self.replayed += 1;
        }
        Ok(())
    }
}

/// Point-in-time recovery: rebuild the database as it stood at LSN
/// `bound`.
///
/// Picks the newest archived checkpoint at or below the bound and
/// replays sealed segments (whole-file CRC verified) plus the active log
/// up to it.  Because the starting checkpoint is the *newest* one under
/// the bound, the replayed range never crosses a checkpoint — so the
/// `ASRIDS` id translation of that one checkpoint covers every replayed
/// record.
///
/// Read-only: storage is not modified (a torn tail in the live log is
/// tolerated, not truncated).  Returns [`DurableError::PitrUnavailable`]
/// when no archived checkpoint at or below the bound survives (pruned or
/// pre-segmentation database) or when retained history ends before the
/// bound.
pub fn recover_to_lsn<S: Storage>(storage: &S, bound: u64) -> Result<(Database, PitrReport)> {
    let manifest = SegmentManifest::load(storage)?;
    let ckpt_lsn = manifest
        .newest_checkpoint_at_or_below(bound)
        .ok_or_else(|| {
            DurableError::PitrUnavailable(match manifest.checkpoints.first() {
                Some(floor) => {
                    format!("no archived checkpoint at or below LSN {bound} (floor is {floor})")
                }
                None => format!("no archived checkpoints exist (bound {bound})"),
            })
        })?;
    let archive = checkpoint_archive_name(ckpt_lsn);
    let snap = read_stable(storage, &archive, READ_RETRIES)?.ok_or_else(|| {
        DurableError::PitrUnavailable(format!("archived checkpoint {archive} is missing"))
    })?;
    let parsed = parse_checkpoint_chain(storage, snap, &archive)?;
    let mut pages_read = pages(parsed.total_bytes);
    let ParsedCheckpoint {
        mut db,
        lsn,
        mut asr_remap,
        ..
    } = parsed;
    if lsn != ckpt_lsn {
        return Err(DurableError::Corrupt(format!(
            "archived checkpoint {archive} claims LSN {lsn}"
        )));
    }

    let mut cursor = ReplayCursor::new(ckpt_lsn);
    let mut segments_read = 0u64;
    for seg in &manifest.segments {
        if seg.last_lsn <= ckpt_lsn || seg.first_lsn > bound {
            continue;
        }
        let data = read_stable(storage, &seg.file_name(), READ_RETRIES)?.ok_or_else(|| {
            DurableError::Corrupt(format!(
                "segment {} is in segments.manifest but missing",
                seg.file_name()
            ))
        })?;
        seg.verify(&data)?;
        let scan = scan_wal(&data)?;
        if scan.torn_bytes > 0 {
            return Err(DurableError::Corrupt(format!(
                "sealed segment {} has an invalid frame",
                seg.file_name()
            )));
        }
        cursor.apply(&mut db, &scan.records, &mut asr_remap, bound)?;
        segments_read += 1;
        pages_read += pages(data.len());
    }
    if cursor.tip < bound {
        let wal_bytes = read_stable(storage, WAL_FILE, READ_RETRIES)?.unwrap_or_default();
        pages_read += pages(wal_bytes.len());
        let scan = scan_wal(&wal_bytes)?;
        cursor.apply(&mut db, &scan.records, &mut asr_remap, bound)?;
    }
    if cursor.tip < bound {
        return Err(DurableError::PitrUnavailable(format!(
            "retained history ends at LSN {}, bound {bound} is not reachable",
            cursor.tip
        )));
    }
    Ok((
        db,
        PitrReport {
            bound,
            checkpoint_lsn: ckpt_lsn,
            records_replayed: cursor.replayed,
            records_skipped: cursor.skipped,
            segments_read,
            pages_read,
        },
    ))
}

/// Extension trait putting `Database::open_durable(dir)` /
/// `Database::create_durable(dir)` in scope: file-system-backed
/// durability with one import.
pub trait OpenDurable: Sized {
    /// Recover a durable database from `dir`.
    fn open_durable(dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>>;

    /// Make this database durable in `dir` (which must not already hold
    /// one), flushing every record.
    fn create_durable(self, dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>>;
}

impl OpenDurable for Database {
    fn open_durable(dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>> {
        DurableDatabase::open(FsStorage::new(dir)?)
    }

    fn create_durable(self, dir: impl AsRef<Path>) -> Result<DurableDatabase<FsStorage>> {
        DurableDatabase::create(FsStorage::new(dir)?, self, FlushPolicy::EveryRecord)
    }
}
