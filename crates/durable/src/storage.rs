//! The injectable storage abstraction behind the durability subsystem.
//!
//! Everything the WAL and checkpointer persist goes through the
//! [`Storage`] trait, which models exactly the three durability
//! primitives a log-structured design needs:
//!
//! * **append** — sequential writes to the log file (may be *torn* by a
//!   crash: a prefix of the appended bytes survives);
//! * **atomic whole-file replacement** — checkpoint snapshots and the
//!   manifest (write-temp-then-rename on the real file system: either the
//!   old or the new content survives a crash, never a mix);
//! * **whole-file read / remove** — recovery and log truncation.
//!
//! Two backends ship: [`FsStorage`] over a real directory and
//! [`MemStorage`] over a shared in-memory map (whose bytes survive
//! dropping the handle — the crash-recovery fuzz harness "reboots" by
//! reopening a clone of the same map).  [`crate::fault::FaultyStorage`]
//! wraps either to inject crashes, torn writes and bit flips.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::error::{DurableError, Result};

/// Read `name` until two consecutive reads agree, retrying a bounded
/// number of times.
///
/// Recovery must not trust a single read: a transient fault on the read
/// path (bad DMA, an in-flight bit flip — see
/// [`crate::fault::FaultPlan::flip_read`]) can make durable, acknowledged
/// bytes *look* torn, and a recovery that then truncates or re-persists
/// what it read would turn a transient fault into permanent data loss.
/// Double-reading heals one-shot corruption (the retry observes the clean
/// bytes twice); persistent at-rest corruption passes through unchanged,
/// where the CRC layers detect it.  After `retries` disagreeing pairs the
/// read path itself is declared broken with [`DurableError::Storage`].
pub fn read_stable<S: Storage>(storage: &S, name: &str, retries: usize) -> Result<Option<Vec<u8>>> {
    let mut prev = storage.read(name)?;
    for _ in 0..retries.max(1) {
        let next = storage.read(name)?;
        if next == prev {
            return Ok(next);
        }
        prev = next;
    }
    Err(DurableError::Storage(format!(
        "unstable reads of `{name}`: consecutive reads keep disagreeing"
    )))
}

/// Durability primitives the WAL and checkpointer are written against.
pub trait Storage {
    /// The whole content of `name`, or `None` if the file does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Replace `name` atomically: after a crash either the old content or
    /// `data` is observed, never a prefix or a mix.
    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<()>;

    /// Append `data` to `name` (creating it when absent), durably.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<()>;

    /// Delete `name`; deleting a missing file is a no-op.
    fn remove(&mut self, name: &str) -> Result<()>;
}

// ----------------------------------------------------------------------
// Real file system
// ----------------------------------------------------------------------

/// [`Storage`] over a real directory: append-mode writes with
/// `sync_all`, and write-temp-then-rename for atomic replacement.
#[derive(Debug)]
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Open (creating if necessary) the directory `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| DurableError::Storage(format!("create {}: {e}", root.display())))?;
        Ok(FsStorage { root })
    }

    /// The directory this storage persists into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn io_err(&self, what: &str, name: &str, e: std::io::Error) -> DurableError {
        DurableError::Storage(format!("{what} {}: {e}", self.path(name).display()))
    }
}

impl Storage for FsStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(self.io_err("read", name, e)),
        }
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        std::fs::write(&tmp, data)
            .map_err(|e| DurableError::Storage(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, self.path(name)).map_err(|e| self.io_err("rename", name, e))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| self.io_err("open", name, e))?;
        file.write_all(data)
            .and_then(|()| file.sync_all())
            .map_err(|e| self.io_err("append", name, e))
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(self.io_err("remove", name, e)),
        }
    }
}

// ----------------------------------------------------------------------
// Shared in-memory backend
// ----------------------------------------------------------------------

/// In-memory [`Storage`] over a map shared between clones.  The bytes
/// outlive any one handle, which is how the fault-injection harness
/// simulates a machine reboot: drop the crashed database, then reopen a
/// clone of the same storage.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    files: Rc<RefCell<BTreeMap<String, Vec<u8>>>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current size of `name` in bytes (tests/diagnostics).
    pub fn len(&self, name: &str) -> usize {
        self.files.borrow().get(name).map_or(0, Vec::len)
    }

    /// Whether nothing has been persisted yet.
    pub fn is_empty(&self) -> bool {
        self.files.borrow().is_empty()
    }

    /// Flip one bit of an already-persisted file — the "cosmic ray"
    /// failpoint, corrupting data at rest rather than in flight.
    pub fn flip_bit_at_rest(&self, name: &str, byte: usize, bit: u8) -> bool {
        let mut files = self.files.borrow_mut();
        match files.get_mut(name) {
            Some(data) if byte < data.len() => {
                data[byte] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.files.borrow().get(name).cloned())
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.files
            .borrow_mut()
            .insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.files
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.files.borrow_mut().remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trip_and_sharing() {
        let mut a = MemStorage::new();
        let b = a.clone();
        assert!(a.is_empty());
        a.append("log", b"one").unwrap();
        a.append("log", b"two").unwrap();
        assert_eq!(b.read("log").unwrap().unwrap(), b"onetwo");
        a.write_atomic("snap", b"state").unwrap();
        assert_eq!(b.len("snap"), 5);
        a.remove("log").unwrap();
        assert_eq!(b.read("log").unwrap(), None);
        a.remove("log").unwrap(); // idempotent
        assert!(b.flip_bit_at_rest("snap", 0, 0));
        assert_ne!(b.read("snap").unwrap().unwrap(), b"state");
        assert!(!b.flip_bit_at_rest("snap", 99, 0));
    }

    #[test]
    fn fs_storage_round_trip() {
        let dir = std::env::temp_dir().join("asr_durable_fs_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = FsStorage::new(&dir).unwrap();
        assert_eq!(s.read("wal").unwrap(), None);
        s.append("wal", b"aa").unwrap();
        s.append("wal", b"bb").unwrap();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"aabb");
        s.write_atomic("snap", b"v1").unwrap();
        s.write_atomic("snap", b"v2").unwrap();
        assert_eq!(s.read("snap").unwrap().unwrap(), b"v2");
        assert!(!dir.join("snap.tmp").exists(), "temp file renamed away");
        s.remove("wal").unwrap();
        assert_eq!(s.read("wal").unwrap(), None);
        s.remove("wal").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
