//! Hand-rolled CRC-32 (the IEEE 802.3 polynomial, reflected form — the
//! same function `zlib`, PNG and Ethernet use).  The workspace builds
//! fully offline, so the checksum is implemented here rather than pulled
//! from a crate; the lookup table is built at compile time.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (initial value `0xFFFF_FFFF`, final XOR-out).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"ASR WAL record payload 42".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
