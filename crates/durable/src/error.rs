//! Error type of the durability subsystem.

use std::fmt;

use asr_core::AsrError;
use asr_gom::GomError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DurableError>;

/// Errors raised by the write-ahead log, checkpointing and recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The storage backend failed (I/O error on the real file system).
    Storage(String),
    /// A fault-injection failpoint fired: the simulated machine crashed
    /// mid-write.  The session is poisoned afterwards.
    InjectedCrash,
    /// The session hit a storage failure earlier and refuses further
    /// mutations — reopen from storage to recover a consistent state.
    Poisoned,
    /// Durable state that passed its integrity checks still failed to
    /// parse (a version mismatch or a logic bug, *not* a torn write — torn
    /// tails are detected and discarded silently during recovery).
    Corrupt(String),
    /// The directory holds no durable database (no manifest).
    NotADatabase(String),
    /// The directory already holds a durable database; open it instead of
    /// creating over it.
    AlreadyExists(String),
    /// WAL replay diverged from the logged outcome (e.g. an instantiation
    /// produced a different OID than recorded) — the log and checkpoint
    /// disagree about history.
    ReplayMismatch(String),
    /// The requested point-in-time bound cannot be served from the
    /// retained checkpoints and segments (history was pruned, or no
    /// checkpoint at or below the bound survives).
    PitrUnavailable(String),
    /// The shipping pump exhausted its round budget without converging
    /// the replica — the channel lost or mangled too much, too often.
    ReplicationStalled(String),
    /// An error from the database layer while applying an operation.
    Asr(AsrError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Storage(msg) => write!(f, "storage error: {msg}"),
            DurableError::InjectedCrash => write!(f, "injected crash (failpoint fired)"),
            DurableError::Poisoned => {
                write!(f, "durable session poisoned by an earlier storage failure")
            }
            DurableError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            DurableError::NotADatabase(msg) => write!(f, "not a durable database: {msg}"),
            DurableError::AlreadyExists(msg) => {
                write!(f, "durable database already exists: {msg}")
            }
            DurableError::ReplayMismatch(msg) => write!(f, "WAL replay mismatch: {msg}"),
            DurableError::PitrUnavailable(msg) => {
                write!(f, "point-in-time recovery unavailable: {msg}")
            }
            DurableError::ReplicationStalled(msg) => write!(f, "replication stalled: {msg}"),
            DurableError::Asr(e) => write!(f, "database error during replay/apply: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Asr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsrError> for DurableError {
    fn from(e: AsrError) -> Self {
        DurableError::Asr(e)
    }
}

impl From<GomError> for DurableError {
    fn from(e: GomError) -> Self {
        DurableError::Asr(AsrError::Gom(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: DurableError = GomError::UnknownVariable("x".into()).into();
        assert!(e.to_string().contains("database error"));
        assert!(DurableError::InjectedCrash
            .to_string()
            .contains("failpoint"));
        assert!(DurableError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
    }
}
