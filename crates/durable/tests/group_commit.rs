//! The cross-session commit pipeline and fuzzy checkpoints: group
//! commit batches many sessions' commits into one modeled fsync, clean
//! teardown never loses a parked commit, and `begin_checkpoint` /
//! `complete_checkpoint` publish a consistent image while readers and
//! the writer keep going.

mod common;

use asr_core::Database;
use asr_durable::{DurableDatabase, FlushPolicy, MemStorage};
use common::*;

/// Commits submitted under group commit seal exactly at the target, and
/// the whole batch rides one fsync — `fsyncs_per_commit` lands at
/// `1/target`, not `1`.
#[test]
fn group_commit_batches_sessions_into_one_fsync() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x96C0);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    const TARGET: usize = 4;
    dd.enable_group_commit(TARGET);
    for (i, op) in script.iter().enumerate() {
        apply_durable(&mut dd, op).unwrap();
        let sealed = dd.submit_commit().unwrap();
        assert_eq!(
            sealed,
            (i + 1) % TARGET == 0,
            "group must seal exactly when the {TARGET}th commit arrives (commit {i})"
        );
    }
    let status = dd.group_commit_status().unwrap();
    assert_eq!(status.commits, SCRIPT_LEN as u64);
    assert_eq!(status.records, SCRIPT_LEN as u64, "one record per commit");
    assert_eq!(status.fsyncs, (SCRIPT_LEN / TARGET) as u64);
    assert_eq!(status.groups, status.fsyncs);
    assert_eq!(status.pending_sessions, 0);
    assert!(
        (status.fsyncs_per_commit() - 1.0 / TARGET as f64).abs() < 1e-9,
        "expected 1/{TARGET} fsyncs per commit, got {}",
        status.fsyncs_per_commit()
    );
    assert_eq!(dd.wal_status().group, Some(status));
    drop(dd);
    let recovered = DurableDatabase::open(disk).unwrap();
    assert_equivalent(
        &recovered,
        &oracle_at(&s0, &script, SCRIPT_LEN),
        "group-commit recovery",
    );
}

/// The op-count deadline: a group that never fills still flushes once
/// the op budget elapses, so a commit parks for a bounded number of ops
/// — and the flush is attributed to the deadline, not the group seal.
/// Each session here logs one record and submits one commit, so it
/// spends two ticks of the budget.
#[test]
fn deadline_flushes_a_partial_group_after_the_op_budget() {
    let s0 = seed_snapshot();
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    dd.enable_group_commit(8); // far more sessions than will ever arrive
    dd.set_group_commit_deadline(Some(6)); // = three two-tick sessions

    // Two parked commits: four ticks — under the deadline, still open.
    for _ in 0..2 {
        dd.instantiate("BasePart").unwrap();
        assert!(!dd.submit_commit().unwrap(), "group must stay open");
    }
    let status = dd.group_commit_status().unwrap();
    assert_eq!(status.pending_sessions, 2);
    assert_eq!(status.ops_since_open, 4);
    assert_eq!(status.deadline_flushes, 0);

    // The third session's submit is the sixth tick: the partial group
    // flushes even though only 3 of 8 target sessions ever showed up.
    dd.instantiate("BasePart").unwrap();
    assert!(
        dd.submit_commit().unwrap(),
        "the deadline must seal the partial group"
    );
    let status = dd.group_commit_status().unwrap();
    assert_eq!(status.pending_sessions, 0);
    assert_eq!(status.ops_since_open, 0, "ledger resets with the flush");
    assert_eq!(status.deadline_flushes, 1);
    assert_eq!(status.commits, 3);
    assert_eq!(status.fsyncs, 1, "the whole partial group rode one fsync");
    assert_eq!(dd.wal_status().pending_records, 0);
    assert_eq!(
        dd.database()
            .tracer()
            .metrics()
            .counter("wal.group.deadline_flushes"),
        1
    );

    // Everything flushed by the deadline is durable: a crash (drop has
    // nothing buffered left to save) recovers all three commits.
    drop(dd);
    let recovered = DurableDatabase::open(disk).unwrap();
    let mut oracle = Database::load_from_string(&s0).unwrap();
    for _ in 0..3 {
        oracle.instantiate("BasePart").unwrap();
    }
    assert_equivalent(&recovered, &oracle, "deadline-flushed commits");
}

/// Logged records without a single submitted commit also tick the
/// deadline: a quiet mix of plain mutations can't park in the buffer
/// past the op budget, and disarming the deadline restores pure
/// fill-to-target batching.
#[test]
fn deadline_ticks_on_plain_logged_records_and_disarms() {
    let s0 = seed_snapshot();
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk, seed_db, FlushPolicy::EveryRecord).unwrap();
    dd.enable_group_commit(4);
    dd.set_group_commit_deadline(Some(2));

    // No commits submitted at all — two logged records alone trip the
    // deadline and drain the buffer.
    dd.instantiate("BasePart").unwrap();
    assert_eq!(dd.wal_status().pending_records, 1);
    dd.instantiate("BasePart").unwrap();
    assert_eq!(
        dd.wal_status().pending_records,
        0,
        "the second record must trip the op deadline"
    );
    assert_eq!(dd.group_commit_status().unwrap().deadline_flushes, 1);

    // Disarmed, the pipeline is back to waiting for a full group.
    dd.set_group_commit_deadline(None);
    for _ in 0..3 {
        dd.instantiate("BasePart").unwrap();
        assert!(!dd.submit_commit().unwrap(), "no deadline, no early flush");
    }
    assert_eq!(dd.group_commit_status().unwrap().pending_sessions, 3);
    dd.instantiate("BasePart").unwrap();
    assert!(
        dd.submit_commit().unwrap(),
        "the 4th commit seals the group"
    );
    let status = dd.group_commit_status().unwrap();
    assert_eq!(status.deadline_flushes, 1, "only the armed flush counted");
}

/// The drop-flush satellite: a session whose group never reached its
/// target is dropped with every record still in the in-memory buffer —
/// clean teardown flushes the open group, so recovery loses nothing.
#[test]
fn dropped_group_commit_session_loses_nothing() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xD80B);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    dd.enable_group_commit(8);
    let n = 5; // strictly below the target: the group never seals itself
    for op in script.iter().take(n) {
        apply_durable(&mut dd, op).unwrap();
        assert!(!dd.submit_commit().unwrap(), "group must stay open");
    }
    assert_eq!(
        dd.wal_status().pending_records,
        n,
        "the whole suffix is still in memory"
    );
    drop(dd);
    let recovered = DurableDatabase::open(disk).unwrap();
    assert_eq!(recovered.recovery_report().records_replayed, n as u64);
    assert_equivalent(
        &recovered,
        &oracle_at(&s0, &script, n),
        "dropped-but-not-flushed group-commit session",
    );
}

/// `into_database` under group commit flushes the open group before
/// surrendering the in-memory database, same as drop.
#[test]
fn into_database_flushes_the_open_group() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x17D8);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    dd.enable_group_commit(8);
    let n = 3;
    for op in script.iter().take(n) {
        apply_durable(&mut dd, op).unwrap();
        assert!(!dd.submit_commit().unwrap());
    }
    let oracle = oracle_at(&s0, &script, n);
    let db = dd.into_database();
    assert_eq!(
        db.save_to_string(),
        oracle.save_to_string(),
        "into_database must hand back the current state"
    );
    let recovered = DurableDatabase::open(disk).unwrap();
    assert_equivalent(&recovered, &oracle, "into_database teardown");
}

/// The fuzzy-checkpoint acceptance test: a checkpoint no longer blocks
/// concurrent snapshot reads.  The pinned view answers identically
/// while the writer keeps committing and while `complete_checkpoint`
/// publishes; commits that landed after the fence stay in the log and
/// replay over the published image.
#[test]
fn checkpoint_overlaps_snapshot_reads_and_new_commits() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xF022);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    let half = SCRIPT_LEN / 2;
    for op in script.iter().take(half) {
        apply_durable(&mut dd, op).unwrap();
    }

    let pending = dd.begin_checkpoint(false).unwrap();
    assert_eq!(pending.fence(), half as u64, "one LSN per script op");
    let snap = pending.snapshot().clone();
    let pinned = (snap.object_count(), snap.asr_ids());

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            (0..200)
                .map(|_| (snap.object_count(), snap.asr_ids()))
                .collect::<Vec<_>>()
        });
        // The writer session keeps committing while the checkpoint is
        // pending — these records carry LSNs above the fence.
        for op in script.iter().skip(half) {
            apply_durable(&mut dd, op).unwrap();
        }
        let report = dd.complete_checkpoint(pending).unwrap();
        assert_eq!(report.lsn, half as u64, "image covers the fence, not HEAD");
        for view in reader.join().unwrap() {
            assert_eq!(view, pinned, "pinned view must never move");
        }
    });

    drop(dd);
    let recovered = DurableDatabase::open(disk).unwrap();
    let report = recovered.recovery_report();
    assert_eq!(report.checkpoint_lsn, half as u64);
    assert_eq!(
        report.records_replayed,
        (SCRIPT_LEN - half) as u64,
        "post-fence commits replay over the published image"
    );
    assert_equivalent(
        &recovered,
        &oracle_at(&s0, &script, SCRIPT_LEN),
        "fuzzy checkpoint with concurrent commits",
    );
}

/// Abandoning a pending checkpoint resets the dirty tracking a delta
/// would need, so the next delta checkpoint must fall back to a full
/// snapshot — and recovery through it must still match the oracle.
#[test]
fn abandoned_pending_checkpoint_forces_full_fallback() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xABA2);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    let n = 6;
    for op in script.iter().take(n) {
        apply_durable(&mut dd, op).unwrap();
    }
    let pending = dd.begin_checkpoint(true).unwrap();
    drop(pending); // never completed: its fence is now orphaned
    for op in script.iter().skip(n).take(2) {
        apply_durable(&mut dd, op).unwrap();
    }
    let report = dd.checkpoint_delta().unwrap();
    assert!(
        !report.is_delta(),
        "a delta over the orphaned fence would miss the pre-fence changes"
    );
    assert_eq!(report.lsn, (n + 2) as u64);
    drop(dd);
    let recovered = DurableDatabase::open(disk).unwrap();
    assert_equivalent(
        &recovered,
        &oracle_at(&s0, &script, n + 2),
        "full fallback after an abandoned begin",
    );
}

/// A stale `PendingCheckpoint` — one whose fence is behind a checkpoint
/// published after it was begun — is refused instead of rolling the
/// authoritative LSN backwards.
#[test]
fn stale_pending_checkpoint_is_refused() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x57A1);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk, seed_db, FlushPolicy::EveryRecord).unwrap();
    for op in script.iter().take(4) {
        apply_durable(&mut dd, op).unwrap();
    }
    let stale = dd.begin_checkpoint(false).unwrap();
    for op in script.iter().skip(4).take(4) {
        apply_durable(&mut dd, op).unwrap();
    }
    dd.checkpoint().unwrap(); // publishes at LSN 8, past the stale fence
    let err = dd.complete_checkpoint(stale).unwrap_err();
    assert!(
        err.to_string().contains("stale checkpoint"),
        "unexpected error: {err}"
    );
    // The session itself is still healthy — staleness poisons nothing.
    dd.flush().unwrap();
}
