//! Version-2 checkpoint recovery.
//!
//! * The clean path restores every ASR **physically** (page images, no
//!   re-join) and charges strictly fewer checkpoint pages than the file
//!   occupies, because the physical section's bytes are charged to the
//!   restored trees instead.
//! * Corruption inside the physical section degrades to a **per-ASR
//!   rebuild** — recovery still succeeds and is query-equivalent.
//! * A bit-flip sweep over the whole checkpoint must never panic.
//! * The frozen **v1 golden fixture** (committed under
//!   `tests/fixtures/v1_golden/`) must keep recovering byte-for-byte on
//!   current code, pinning backward compatibility in CI.

use asr_core::{AsrConfig, AsrLoadMode, Cell, Database, Decomposition, Extension};
use asr_durable::{
    DurableDatabase, FlushPolicy, MemStorage, Storage, CHECKPOINT_FILE, MANIFEST_FILE, WAL_FILE,
};
use asr_gom::{ObjectBase, Schema, Value};
use asr_pagesim::PAGE_SIZE;

const PATH: &str = "Division.Manufactures.Composition.Name";

fn company_schema() -> Schema {
    let mut s = Schema::new();
    s.define_tuple(
        "Division",
        [("Name", "STRING"), ("Manufactures", "ProdSET")],
    )
    .unwrap();
    s.define_set("ProdSET", "Product").unwrap();
    s.define_tuple(
        "Product",
        [("Name", "STRING"), ("Composition", "BasePartSET")],
    )
    .unwrap();
    s.define_set("BasePartSET", "BasePart").unwrap();
    s.define_tuple("BasePart", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    s
}

/// A small populated company database with all four extensions
/// materialized over the full path, serialized through save/load once so
/// every copy loaded from this text behaves identically.
fn seed_snapshot() -> String {
    let mut db = Database::from_base(ObjectBase::new(company_schema()));
    let d = db.instantiate("Division").unwrap();
    db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
    let ps = db.instantiate("ProdSET").unwrap();
    db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
    let prod = db.instantiate("Product").unwrap();
    db.set_attribute(prod, "Name", Value::string("560 SEC"))
        .unwrap();
    db.insert_into_set(ps, Value::Ref(prod)).unwrap();
    let bs = db.instantiate("BasePartSET").unwrap();
    db.set_attribute(prod, "Composition", Value::Ref(bs))
        .unwrap();
    let part = db.instantiate("BasePart").unwrap();
    db.set_attribute(part, "Name", Value::string("Door"))
        .unwrap();
    db.insert_into_set(bs, Value::Ref(part)).unwrap();
    for ext in Extension::ALL {
        db.create_asr_on(
            PATH,
            AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    }
    let fixed = Database::load_from_string(&db.save_to_string()).unwrap();
    fixed.save_to_string()
}

/// A larger seed whose checkpoint spans several pages, so the charging
/// split between the physical section and the rest of the file is
/// observable at page granularity.
fn seed_snapshot_scaled() -> String {
    let mut db = Database::from_base(ObjectBase::new(company_schema()));
    let d = db.instantiate("Division").unwrap();
    db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
    let ps = db.instantiate("ProdSET").unwrap();
    db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
    for p in 0..40 {
        let prod = db.instantiate("Product").unwrap();
        db.set_attribute(prod, "Name", Value::string(format!("Product {p}")))
            .unwrap();
        db.insert_into_set(ps, Value::Ref(prod)).unwrap();
        let bs = db.instantiate("BasePartSET").unwrap();
        db.set_attribute(prod, "Composition", Value::Ref(bs))
            .unwrap();
        for b in 0..3 {
            let part = db.instantiate("BasePart").unwrap();
            db.set_attribute(part, "Name", Value::string(format!("Part {p}.{b}")))
                .unwrap();
            db.insert_into_set(bs, Value::Ref(part)).unwrap();
        }
    }
    for ext in Extension::ALL {
        db.create_asr_on(
            PATH,
            AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    }
    let fixed = Database::load_from_string(&db.save_to_string()).unwrap();
    fixed.save_to_string()
}

/// Checkpoint the seed into a fresh `MemStorage` and return it.
fn checkpointed_disk(s0: &str) -> MemStorage {
    let disk = MemStorage::new();
    let seed = Database::load_from_string(s0).unwrap();
    let dd = DurableDatabase::create(disk.clone(), seed, FlushPolicy::EveryRecord).unwrap();
    drop(dd);
    disk
}

fn backward_answers(db: &Database, part_name: &str) -> Vec<Vec<asr_gom::Oid>> {
    let target = Cell::Value(Value::string(part_name));
    db.asrs()
        .map(|(id, _)| db.backward(id, 0, 3, &target).unwrap())
        .collect()
}

// ----------------------------------------------------------------------
// Clean path: physical restore
// ----------------------------------------------------------------------

#[test]
fn clean_v2_recovery_restores_asrs_physically() {
    let s0 = seed_snapshot_scaled();
    let disk = checkpointed_disk(&s0);
    let ckpt_bytes = disk.len(CHECKPOINT_FILE);

    let recovered = DurableDatabase::open(disk).unwrap();
    let report = recovered.recovery_report().clone();
    assert_eq!(report.asr_load_modes.len(), 4, "all four ASRs reported");
    for (id, mode) in &report.asr_load_modes {
        assert!(
            mode.is_physical(),
            "asr {id} not physically restored: {mode:?}"
        );
    }

    // The physical section's bytes are charged to the restored trees, so
    // the checkpoint-file charge is strictly below the file's size.
    let full_pages = ckpt_bytes.div_ceil(PAGE_SIZE) as u64;
    assert!(
        report.checkpoint_pages_read < full_pages,
        "physical bytes double-charged: {} >= {full_pages}",
        report.checkpoint_pages_read
    );
    assert!(report.checkpoint_pages_read > 0, "base section still read");

    let oracle = Database::load_from_string(&s0).unwrap();
    assert_eq!(recovered.save_to_string(), oracle.save_to_string());
    assert_eq!(
        backward_answers(&recovered, "Part 0.0"),
        backward_answers(&oracle, "Part 0.0")
    );
    for (_, asr) in recovered.asrs() {
        asr.check_consistency().unwrap();
    }
}

// ----------------------------------------------------------------------
// Corruption inside the physical section: per-ASR fallback
// ----------------------------------------------------------------------

#[test]
fn corrupt_physical_checkpoint_falls_back_per_asr() {
    let s0 = seed_snapshot();
    let oracle = Database::load_from_string(&s0).unwrap();

    // Each mangler edits the checkpoint *text* (CKPT + ASRIDS + v2
    // snapshot) to corrupt one physical section in a different way.
    #[allow(clippy::type_complexity)]
    let manglers: Vec<(&str, Box<dyn Fn(&str) -> String>)> = vec![
        (
            "node kind X",
            Box::new(|t: &str| t.replacen(" L ", " X ", 1)),
        ),
        (
            "deleted node line",
            Box::new(|t: &str| {
                let mut out = String::new();
                let mut dropped = false;
                for line in t.lines() {
                    if !dropped && line.starts_with("N b ") {
                        dropped = true;
                        continue;
                    }
                    out.push_str(line);
                    out.push('\n');
                }
                assert!(dropped, "fixture must contain a backward node line");
                out
            }),
        ),
        (
            "root out of bounds",
            Box::new(|t: &str| {
                let mut out = String::new();
                let mut hit = false;
                for line in t.lines() {
                    if !hit && line.starts_with("T ") {
                        let mut tok: Vec<&str> = line.split(' ').collect();
                        tok[4] = "999999"; // root slot
                        out.push_str(&tok.join(" "));
                        hit = true;
                    } else {
                        out.push_str(line);
                    }
                    out.push('\n');
                }
                assert!(hit, "fixture must contain a tree header");
                out
            }),
        ),
        (
            "unknown rowid in leaf",
            Box::new(|t: &str| {
                let mut out = String::new();
                let mut hit = false;
                for line in t.lines() {
                    if !hit && line.starts_with("R ") {
                        let mut tok: Vec<&str> = line.split(' ').collect();
                        tok[1] = "999999"; // rowid the trees never reference
                        out.push_str(&tok.join(" "));
                        hit = true;
                    } else {
                        out.push_str(line);
                    }
                    out.push('\n');
                }
                assert!(hit, "fixture must contain a row line");
                out
            }),
        ),
    ];

    for (what, mangle) in manglers {
        let disk = checkpointed_disk(&s0);
        let text = String::from_utf8(disk.read(CHECKPOINT_FILE).unwrap().unwrap()).unwrap();
        let mangled = mangle(&text);
        assert_ne!(text, mangled, "{what}: mangler must change the file");
        let mut writer = disk.clone();
        writer
            .write_atomic(CHECKPOINT_FILE, mangled.as_bytes())
            .unwrap();

        let recovered = DurableDatabase::open(disk)
            .unwrap_or_else(|e| panic!("{what}: recovery must fall back, got {e}"));
        let report = recovered.recovery_report().clone();
        assert_eq!(report.asr_load_modes.len(), 4, "{what}");
        let rebuilt = report
            .asr_load_modes
            .iter()
            .filter(|(_, m)| !m.is_physical())
            .count();
        assert!(rebuilt >= 1, "{what}: corruption must force a rebuild");
        for (id, mode) in &report.asr_load_modes {
            if let AsrLoadMode::Rebuilt(reason) = mode {
                assert!(!reason.is_empty(), "{what}: asr {id} reason empty");
            }
        }

        // Rebuilt or restored, the recovered state is the oracle's state.
        assert_eq!(
            recovered.save_to_string(),
            oracle.save_to_string(),
            "{what}"
        );
        assert_eq!(
            backward_answers(&recovered, "Door"),
            backward_answers(&oracle, "Door"),
            "{what}"
        );
        for (_, asr) in recovered.asrs() {
            asr.check_consistency().unwrap();
        }
    }
}

/// Sweep a bit flip across the whole checkpoint file (header, physical
/// section, GOM base): recovery either succeeds with internally
/// consistent ASRs or reports a descriptive error — it must never panic.
#[test]
fn bit_flip_sweep_over_v2_checkpoint_never_panics() {
    let s0 = seed_snapshot();
    let base = checkpointed_disk(&s0);
    let ckpt = base.read(CHECKPOINT_FILE).unwrap().unwrap();
    let manifest = base.read(MANIFEST_FILE).unwrap().unwrap();
    let wal = base.read(WAL_FILE).unwrap().unwrap_or_default();

    let mut opened = 0usize;
    let mut errored = 0usize;
    for byte in (0..ckpt.len()).step_by(13) {
        let mut flipped = ckpt.clone();
        flipped[byte] ^= 1 << (byte % 8);

        let mut disk = MemStorage::new();
        disk.write_atomic(CHECKPOINT_FILE, &flipped).unwrap();
        disk.write_atomic(MANIFEST_FILE, &manifest).unwrap();
        disk.write_atomic(WAL_FILE, &wal).unwrap();

        match DurableDatabase::open(disk) {
            Ok(recovered) => {
                opened += 1;
                // A flip inside a row payload can alter data while staying
                // structurally valid (the checkpoint text carries no CRC),
                // so consistency may legitimately fail here — but checking
                // it must not panic either.
                for (_, asr) in recovered.asrs() {
                    let _ = asr.check_consistency();
                }
            }
            Err(e) => {
                errored += 1;
                assert!(!format!("{e}").is_empty(), "flip@{byte}: silent error");
            }
        }
    }
    // The sweep must actually exercise both outcomes: flips in the GOM
    // base reject the snapshot, flips in the physical section mostly
    // degrade to a rebuild and still open.
    assert!(opened > 0, "no flip recovered ({errored} errors)");
    assert!(errored > 0, "no flip errored ({opened} opens)");
}

// ----------------------------------------------------------------------
// Satellite: the frozen v1 golden fixture
// ----------------------------------------------------------------------

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1_golden");

/// Recover the committed v1 fixture (an `ASRDB 1` checkpoint plus a short
/// WAL tail) on current code: every ASR rebuilds, the replayed tail
/// applies, and the final state matches the frozen expectation
/// byte-for-byte.
#[test]
fn golden_v1_fixture_recovers_on_current_code() {
    let read = |name: &str| -> Vec<u8> {
        std::fs::read(format!("{GOLDEN_DIR}/{name}"))
            .unwrap_or_else(|e| panic!("missing golden fixture file {name}: {e}"))
    };
    let ckpt = read("checkpoint.snap");
    let ckpt_text = String::from_utf8(ckpt.clone()).unwrap();
    assert!(
        ckpt_text.lines().nth(2) == Some("ASRDB 1"),
        "fixture checkpoint must be a v1 snapshot"
    );

    let mut disk = MemStorage::new();
    disk.write_atomic(CHECKPOINT_FILE, &ckpt).unwrap();
    disk.write_atomic(MANIFEST_FILE, &read("MANIFEST")).unwrap();
    disk.write_atomic(WAL_FILE, &read("wal.log")).unwrap();

    let recovered = DurableDatabase::open(disk).unwrap();
    let report = recovered.recovery_report().clone();
    assert!(report.records_replayed > 0, "fixture WAL tail must replay");
    assert!(!report.asr_load_modes.is_empty());
    for (id, mode) in &report.asr_load_modes {
        match mode {
            AsrLoadMode::Rebuilt(reason) => {
                assert!(
                    reason.contains("v1"),
                    "asr {id}: unexpected reason {reason}"
                )
            }
            AsrLoadMode::Physical | AsrLoadMode::Delta { .. } => {
                panic!("asr {id}: v1 snapshot cannot restore physically")
            }
        }
    }

    let expected = String::from_utf8(read("expected_state.snap")).unwrap();
    assert_eq!(
        recovered.save_to_string(),
        expected,
        "golden v1 recovery diverged from the frozen expectation"
    );
    for (_, asr) in recovered.asrs() {
        asr.check_consistency().unwrap();
    }
}

/// Regenerates the golden fixture.  Run explicitly when the fixture must
/// be re-frozen (`cargo test -p asr-durable --test v2_checkpoints -- --ignored`);
/// never runs in CI.
#[test]
#[ignore = "writes tests/fixtures/v1_golden; run only to re-freeze the fixture"]
fn regenerate_v1_golden_fixture() {
    let s0 = seed_snapshot();
    let disk = MemStorage::new();
    let seed = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed, FlushPolicy::EveryRecord).unwrap();
    // A short deterministic WAL tail past the checkpoint.
    let d2 = dd.instantiate("Division").unwrap();
    dd.set_attribute(d2, "Name", Value::string("Trucks"))
        .unwrap();
    dd.bind_variable("Golden", Value::string("fixture"))
        .unwrap();
    drop(dd);

    // Rewrite the checkpoint body as a v1 snapshot, keeping the CKPT and
    // ASRIDS header lines untouched.
    let text = String::from_utf8(disk.read(CHECKPOINT_FILE).unwrap().unwrap()).unwrap();
    let (ckpt_line, rest) = text.split_once('\n').unwrap();
    let (ids_line, body) = rest.split_once('\n').unwrap();
    let v1_body = Database::load_from_string(body)
        .unwrap()
        .save_to_string_v1();
    let v1_ckpt = format!("{ckpt_line}\n{ids_line}\n{v1_body}");

    std::fs::create_dir_all(GOLDEN_DIR).unwrap();
    std::fs::write(format!("{GOLDEN_DIR}/checkpoint.snap"), &v1_ckpt).unwrap();
    std::fs::write(
        format!("{GOLDEN_DIR}/MANIFEST"),
        disk.read(MANIFEST_FILE).unwrap().unwrap(),
    )
    .unwrap();
    std::fs::write(
        format!("{GOLDEN_DIR}/wal.log"),
        disk.read(WAL_FILE).unwrap().unwrap(),
    )
    .unwrap();

    // Freeze the expected post-recovery state from this very recovery.
    let mut fixture = MemStorage::new();
    fixture
        .write_atomic(CHECKPOINT_FILE, v1_ckpt.as_bytes())
        .unwrap();
    fixture
        .write_atomic(MANIFEST_FILE, &disk.read(MANIFEST_FILE).unwrap().unwrap())
        .unwrap();
    fixture
        .write_atomic(WAL_FILE, &disk.read(WAL_FILE).unwrap().unwrap())
        .unwrap();
    let recovered = DurableDatabase::open(fixture).unwrap();
    std::fs::write(
        format!("{GOLDEN_DIR}/expected_state.snap"),
        recovered.save_to_string(),
    )
    .unwrap();
}
