//! Point-in-time recovery properties: for a random effective script,
//! `recover_to_lsn(bound)` at *every* LSN from zero to the durable tip
//! must produce exactly the oracle that replayed that prefix of the
//! script fresh — across checkpoints, segment rotations, and pruning.
//!
//! The LSN ↔ operation bijection from the crash-recovery harness makes
//! the property crisp: bound `b` must equal the oracle after the first
//! `b` script operations, byte for byte.

mod common;

use asr_core::Database;
use asr_durable::{recover_to_lsn, DurableDatabase, DurableError, FlushPolicy, MemStorage};
use common::*;

/// Build a primary with realistic durable topology: a checkpoint a third
/// of the way in, another at two thirds, and a small rotation threshold
/// so sealed segments appear between them.
fn build_primary(s0: &str, script: &[Op], disk: &MemStorage) -> (usize, usize) {
    let ckpt_a = SCRIPT_LEN / 3;
    let ckpt_b = 2 * SCRIPT_LEN / 3;
    let seed_db = Database::load_from_string(s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    dd.set_segment_threshold(192); // rotate every few records
    for (i, op) in script.iter().enumerate() {
        apply_durable(&mut dd, op).unwrap();
        if i + 1 == ckpt_a || i + 1 == ckpt_b {
            dd.checkpoint().unwrap();
        }
    }
    assert!(
        dd.segment_manifest().segments.len() >= 2,
        "threshold must force rotations for the test to mean anything"
    );
    drop(dd);
    (ckpt_a, ckpt_b)
}

/// The core property: every reachable bound reconstructs its exact
/// prefix, and the report's arithmetic is consistent with the LSN ↔ op
/// bijection.
#[test]
fn every_bound_matches_the_oracle_prefix() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x9178);
    let disk = MemStorage::new();
    build_primary(&s0, &script, &disk);

    for bound in 0..=SCRIPT_LEN as u64 {
        let ctx = format!("recover_to_lsn({bound})");
        let (db, report) = recover_to_lsn(&disk, bound).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_equivalent(&db, &oracle_at(&s0, &script, bound as usize), &ctx);
        assert_eq!(report.bound, bound, "{ctx}");
        assert!(
            report.checkpoint_lsn <= bound,
            "{ctx}: checkpoint past bound"
        );
        assert_eq!(
            report.checkpoint_lsn + report.records_replayed,
            bound,
            "{ctx}: replay must land exactly on the bound"
        );
        assert!(report.pages_read > 0, "{ctx}: page accounting missing");
    }
}

/// PITR must pick the *newest* checkpoint at or below the bound: bounds
/// at or past the second checkpoint replay from it, not from the first.
#[test]
fn replay_starts_at_newest_covered_checkpoint() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x9179);
    let disk = MemStorage::new();
    let (ckpt_a, ckpt_b) = build_primary(&s0, &script, &disk);

    let (_, r) = recover_to_lsn(&disk, ckpt_b as u64 - 1).unwrap();
    assert_eq!(
        r.checkpoint_lsn, ckpt_a as u64,
        "just below the 2nd checkpoint"
    );
    let (_, r) = recover_to_lsn(&disk, ckpt_b as u64).unwrap();
    assert_eq!(
        r.checkpoint_lsn, ckpt_b as u64,
        "exactly at the 2nd checkpoint"
    );
    assert_eq!(r.records_replayed, 0);
    let (_, r) = recover_to_lsn(&disk, SCRIPT_LEN as u64).unwrap();
    assert_eq!(r.checkpoint_lsn, ckpt_b as u64, "tip replays from the 2nd");
    assert_eq!(r.records_replayed, (SCRIPT_LEN - ckpt_b) as u64);
}

/// Bounds past the retained tip are a typed error, not a silent clamp.
#[test]
fn bound_past_tip_is_unavailable() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x917A);
    let disk = MemStorage::new();
    build_primary(&s0, &script, &disk);

    let err = recover_to_lsn(&disk, SCRIPT_LEN as u64 + 5).unwrap_err();
    assert!(matches!(err, DurableError::PitrUnavailable(_)), "got {err}");
}

/// PITR is read-only: a full sweep of recoveries must leave the primary
/// exactly as recoverable as before.
#[test]
fn pitr_does_not_disturb_the_primary() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x917B);
    let disk = MemStorage::new();
    build_primary(&s0, &script, &disk);

    for bound in 0..=SCRIPT_LEN as u64 {
        recover_to_lsn(&disk, bound).unwrap();
    }
    let recovered = DurableDatabase::open(disk).unwrap();
    assert_equivalent(
        &recovered,
        &oracle_at(&s0, &script, SCRIPT_LEN),
        "primary after PITR sweep",
    );
}

/// Pruning trades history for space, loudly: after pruning at the
/// newest checkpoint, bounds below it turn into `PitrUnavailable`, and
/// bounds at or above it still reconstruct exactly.
#[test]
fn pruning_fences_pitr_loudly() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x917C);
    let disk = MemStorage::new();
    let (_, ckpt_b) = build_primary(&s0, &script, &disk);

    let mut dd = DurableDatabase::open(disk.clone()).unwrap();
    let status = dd.wal_status();
    assert_eq!(status.pitr_floor_lsn, Some(0), "full history before prune");
    let report = dd.prune_segments().unwrap();
    assert!(report.segments_removed > 0, "prune must reclaim something");
    assert!(report.checkpoints_removed > 0, "older archives must go");
    // The floor rises to the newest checkpoint.  (Opening may itself
    // re-checkpoint at the tip when ASR ids needed translation, so the
    // newest checkpoint is at least the scripted one.)
    let floor = dd.wal_status().pitr_floor_lsn.unwrap();
    assert!(
        (ckpt_b as u64..=SCRIPT_LEN as u64).contains(&floor),
        "floor {floor} outside [{ckpt_b}, {SCRIPT_LEN}]"
    );
    drop(dd);

    for bound in 0..=SCRIPT_LEN as u64 {
        let res = recover_to_lsn(&disk, bound);
        if bound < floor {
            assert!(
                matches!(res, Err(DurableError::PitrUnavailable(_))),
                "bound {bound} below the floor must be refused, got {res:?}"
            );
        } else {
            let (db, _) = res.unwrap_or_else(|e| panic!("bound {bound}: {e}"));
            assert_equivalent(
                &db,
                &oracle_at(&s0, &script, bound as usize),
                &format!("post-prune bound {bound}"),
            );
        }
    }

    // And the pruned primary still crash-recovers to its tip.
    let recovered = DurableDatabase::open(disk).unwrap();
    assert_equivalent(
        &recovered,
        &oracle_at(&s0, &script, SCRIPT_LEN),
        "primary after prune",
    );
}
