//! Failures must carry their own trace: a pinned-seed replication stall
//! and a crash-recovery report each have to arrive with a non-empty
//! flight-recorder tail that *names the injected fault* that caused
//! them.  These are the acceptance tests for the observability layer —
//! if they fail, a production postmortem would be staring at a bare
//! error string again.

mod common;

use asr_core::Database;
use asr_durable::{
    replicate, ChaosProfile, DurableDatabase, DurableError, FaultPlan, FaultyChannel,
    FaultyStorage, FlushPolicy, MemStorage, ReplicaApplier, ReplicateOptions,
};
use asr_obs::FlightRecorder;
use common::*;

/// A blackout stall must embed the flight tail — including the typed
/// `chaos.drop` events for the injected faults — in the error message
/// itself.
#[test]
fn stalled_replication_names_the_injected_fault() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, 0xB1AC_u64); // fixed script
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut primary = DurableDatabase::create(disk, seed_db, FlushPolicy::EveryRecord).unwrap();
    for op in script.iter().take(8) {
        apply_durable(&mut primary, op).unwrap();
    }

    let mut applier = ReplicaApplier::new();
    // Pinned seed: the blackout drops every delivery, deterministically.
    let mut channel = FaultyChannel::new(ChaosProfile::blackout(), 1)
        .with_recorder(primary.flight_recorder().clone());
    let opts = ReplicateOptions {
        max_rounds: 6,
        ..ReplicateOptions::default()
    };
    let err = replicate(&primary, &mut applier, &mut channel, &opts).unwrap_err();
    let DurableError::ReplicationStalled(msg) = err else {
        panic!("expected ReplicationStalled, got {err}");
    };
    assert!(msg.contains("flight tail"), "no tail in stall error: {msg}");
    assert!(
        msg.contains("chaos.drop"),
        "stall error must name the injected fault: {msg}"
    );
    assert!(
        msg.contains("ship.backoff"),
        "stall error should show the backoff ticks too: {msg}"
    );
}

/// A crash-recovery report must carry a tail that spans the crash
/// boundary: the fault event recorded by the dying session and the
/// recovery phases of the reboot, on one timeline.
#[test]
fn recovery_report_names_the_injected_fault() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xF11C);
    let disk = MemStorage::new();
    let recorder = FlightRecorder::shared();

    // Session 1: a torn-append crash at the 4th WAL append, with the
    // shared recorder watching the storage layer.
    let faulty = FaultyStorage::new(disk.clone(), FaultPlan::torn_append(4, 2))
        .with_recorder(recorder.clone());
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(faulty, seed_db, FlushPolicy::EveryRecord).unwrap();
    let mut crashed = false;
    for op in &script {
        match apply_durable(&mut dd, op) {
            Ok(()) => {}
            Err(e) => {
                assert!(
                    matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                    "unexpected failure class: {e}"
                );
                crashed = true;
                break;
            }
        }
    }
    assert!(crashed, "the fault plan must fire within the script");
    drop(dd); // the crash

    // Session 2: reboot sharing the same recorder, so the report's tail
    // reaches back into the crashed session.
    let recovered =
        DurableDatabase::open_with_recorder(disk, FlushPolicy::EveryRecord, recorder.clone())
            .unwrap();
    let report = recovered.recovery_report().clone();
    assert!(
        !report.flight_tail.is_empty(),
        "recovery report must carry a flight tail"
    );
    let tail = report.flight_tail.join("\n");
    assert!(
        tail.contains("fault.crash.append"),
        "tail must name the injected fault:\n{tail}"
    );
    assert!(
        tail.contains("recovery.torn_tail"),
        "tail must show the torn tail the crash left:\n{tail}"
    );
    assert!(
        tail.contains("recovery.wal_replay"),
        "tail must show the replay phase:\n{tail}"
    );
    // The same tail is available live on the recorder the shell queries.
    assert!(recovered.flight_recorder().recorded() > 0);
}
