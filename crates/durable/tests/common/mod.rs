//! Shared harness for the durability integration tests: the paper's
//! company schema, a deterministic generator of guaranteed-effective
//! mutation scripts, and oracle-equivalence assertions.
//!
//! The WAL invariant the oracles rely on: every script operation is
//! *effective* by construction (the generator filters no-ops against a
//! shadow database), so operation `k` logs exactly one record with LSN
//! `k + 1`, and "the database after the first `m` operations" is both a
//! WAL prefix and an oracle a plain database can replay.

#![allow(dead_code)] // each test binary uses a different subset

use std::collections::BTreeSet;

use asr_core::{AsrConfig, AsrId, Cell, Database, Decomposition, Extension};
use asr_durable::{DurableDatabase, DurableError};
use asr_gom::{ObjectBase, ObjectBody, Oid, Schema, Value};
use rand::{Rng, SeedableRng};

pub const PATH: &str = "Division.Manufactures.Composition.Name";
pub const SCRIPT_LEN: usize = 24;

pub fn fuzz_seed() -> u64 {
    std::env::var("ASR_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA512_1990)
}

// ----------------------------------------------------------------------
// Seed database (the paper's company schema, small scale)
// ----------------------------------------------------------------------

pub fn company_schema() -> Schema {
    let mut s = Schema::new();
    s.define_tuple(
        "Division",
        [("Name", "STRING"), ("Manufactures", "ProdSET")],
    )
    .unwrap();
    s.define_set("ProdSET", "Product").unwrap();
    s.define_tuple(
        "Product",
        [("Name", "STRING"), ("Composition", "BasePartSET")],
    )
    .unwrap();
    s.define_set("BasePartSET", "BasePart").unwrap();
    s.define_tuple("BasePart", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    s
}

/// The seed snapshot `S0`: a small populated company database with all
/// four extensions materialized over the full path, serialized once
/// through save/load so type-id assignment is at its fixed point and
/// every copy loaded from this text behaves identically (including OID
/// generation order).
pub fn seed_snapshot() -> String {
    let mut db = Database::from_base(ObjectBase::new(company_schema()));
    let d = db.instantiate("Division").unwrap();
    db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
    let ps = db.instantiate("ProdSET").unwrap();
    db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
    let prod = db.instantiate("Product").unwrap();
    db.set_attribute(prod, "Name", Value::string("560 SEC"))
        .unwrap();
    db.insert_into_set(ps, Value::Ref(prod)).unwrap();
    let bs = db.instantiate("BasePartSET").unwrap();
    db.set_attribute(prod, "Composition", Value::Ref(bs))
        .unwrap();
    let part = db.instantiate("BasePart").unwrap();
    db.set_attribute(part, "Name", Value::string("Door"))
        .unwrap();
    db.insert_into_set(bs, Value::Ref(part)).unwrap();
    for ext in Extension::ALL {
        db.create_asr_on(
            PATH,
            AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    }
    let fixed = Database::load_from_string(&db.save_to_string()).unwrap();
    fixed.save_to_string()
}

// ----------------------------------------------------------------------
// Script: guaranteed-effective operations
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
pub enum Op {
    New {
        ty: &'static str,
    },
    Set {
        owner: Oid,
        attr: &'static str,
        value: Value,
    },
    Ins {
        set: Oid,
        elem: Value,
    },
    Rem {
        set: Oid,
        elem: Value,
    },
    Del {
        oid: Oid,
    },
    Bind {
        name: String,
        value: Value,
    },
    Size {
        ty: &'static str,
        bytes: usize,
    },
    MkAsr {
        config: AsrConfig,
    },
    RmAsr {
        id: AsrId,
    },
}

pub fn apply_plain(db: &mut Database, op: &Op) {
    match op {
        Op::New { ty } => {
            db.instantiate(ty).unwrap();
        }
        Op::Set { owner, attr, value } => db.set_attribute(*owner, attr, value.clone()).unwrap(),
        Op::Ins { set, elem } => assert!(db.insert_into_set(*set, elem.clone()).unwrap()),
        Op::Rem { set, elem } => assert!(db.remove_from_set(*set, elem).unwrap()),
        Op::Del { oid } => db.delete_object(*oid).unwrap(),
        Op::Bind { name, value } => db.bind_variable(name, value.clone()),
        Op::Size { ty, bytes } => {
            let id = db.base().schema().resolve(ty).unwrap();
            db.set_type_size(id, *bytes);
        }
        Op::MkAsr { config } => {
            db.create_asr_on(PATH, config.clone()).unwrap();
        }
        Op::RmAsr { id } => db.drop_asr(*id).unwrap(),
    }
}

pub fn apply_durable<S: asr_durable::Storage>(
    dd: &mut DurableDatabase<S>,
    op: &Op,
) -> Result<(), DurableError> {
    match op {
        Op::New { ty } => dd.instantiate(ty).map(drop),
        Op::Set { owner, attr, value } => dd.set_attribute(*owner, attr, value.clone()),
        Op::Ins { set, elem } => dd.insert_into_set(*set, elem.clone()).map(|eff| {
            assert!(eff, "script op generated as effective");
        }),
        Op::Rem { set, elem } => dd.remove_from_set(*set, elem).map(|eff| {
            assert!(eff, "script op generated as effective");
        }),
        Op::Del { oid } => dd.delete_object(*oid),
        Op::Bind { name, value } => dd.bind_variable(name, value.clone()),
        Op::Size { ty, bytes } => dd.set_type_size(ty, *bytes),
        Op::MkAsr { config } => dd.create_asr_on(PATH, config.clone()).map(drop),
        Op::RmAsr { id } => dd.drop_asr(*id),
    }
}

pub struct Generator {
    db: Database, // shadow copy: tracks state so every op is effective
    rng: rand::rngs::SmallRng,
    pools: [Vec<Oid>; 5], // Division, ProdSET, Product, BasePartSET, BasePart
    referenced: BTreeSet<Oid>,
    live_asrs: Vec<AsrId>,
    counter: u64,
}

pub const TYPES: [&str; 5] = ["Division", "ProdSET", "Product", "BasePartSET", "BasePart"];

impl Generator {
    pub fn new(s0: &str, seed: u64) -> Self {
        let db = Database::load_from_string(s0).unwrap();
        let mut pools: [Vec<Oid>; 5] = Default::default();
        let mut referenced = BTreeSet::new();
        for obj in db.base().objects() {
            let name = db.base().schema().name(obj.ty).to_string();
            let slot = TYPES.iter().position(|t| *t == name).unwrap();
            pools[slot].push(obj.oid);
            // Seed objects reference each other; treat them all as
            // referenced so deletes only target fresh unlinked objects.
            referenced.insert(obj.oid);
        }
        let live_asrs = db.asrs().map(|(id, _)| id).collect();
        Generator {
            db,
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            pools,
            referenced,
            live_asrs,
            counter: 0,
        }
    }

    fn pick(&mut self, slot: usize) -> Option<Oid> {
        if self.pools[slot].is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.pools[slot].len());
        Some(self.pools[slot][i])
    }

    fn fresh_string(&mut self) -> Value {
        self.counter += 1;
        Value::string(format!("val {}%{}", self.counter, self.counter * 7))
    }

    fn set_elems(&self, set: Oid) -> Vec<Value> {
        match &self.db.base().object(set).unwrap().body {
            ObjectBody::Set(elems) => elems.iter().cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// Propose one effective operation (retrying internally).
    pub fn next_op(&mut self) -> Op {
        for _ in 0..100 {
            let kind = self.rng.gen_range(0..12u32);
            let op = match kind {
                0 | 1 => {
                    let slot = self.rng.gen_range(0..TYPES.len());
                    Some(Op::New { ty: TYPES[slot] })
                }
                2 | 3 => {
                    // Rename a tuple object to a fresh value: always effective.
                    let slot = [0usize, 2, 4][self.rng.gen_range(0..3usize)];
                    let value = self.fresh_string();
                    self.pick(slot).map(|owner| Op::Set {
                        owner,
                        attr: "Name",
                        value,
                    })
                }
                4 => {
                    // Link a division to a product set it doesn't point at.
                    let (d, ps) = match (self.pick(0), self.pick(1)) {
                        (Some(d), Some(ps)) => (d, ps),
                        _ => continue,
                    };
                    let cur = self.db.base().get_attribute(d, "Manufactures").unwrap();
                    if cur == Value::Ref(ps) {
                        continue;
                    }
                    Some(Op::Set {
                        owner: d,
                        attr: "Manufactures",
                        value: Value::Ref(ps),
                    })
                }
                5 => {
                    let (p, bs) = match (self.pick(2), self.pick(3)) {
                        (Some(p), Some(bs)) => (p, bs),
                        _ => continue,
                    };
                    let cur = self.db.base().get_attribute(p, "Composition").unwrap();
                    if cur == Value::Ref(bs) {
                        continue;
                    }
                    Some(Op::Set {
                        owner: p,
                        attr: "Composition",
                        value: Value::Ref(bs),
                    })
                }
                6 => {
                    // Insert an absent element into a set.
                    let (set_slot, elem_slot) = if self.rng.gen_bool(0.5) {
                        (1, 2)
                    } else {
                        (3, 4)
                    };
                    let (set, elem) = match (self.pick(set_slot), self.pick(elem_slot)) {
                        (Some(s), Some(e)) => (s, Value::Ref(e)),
                        _ => continue,
                    };
                    if self.set_elems(set).contains(&elem) {
                        continue;
                    }
                    Some(Op::Ins { set, elem })
                }
                7 => {
                    // Remove a present element.
                    let set_slot = if self.rng.gen_bool(0.5) { 1 } else { 3 };
                    let set = match self.pick(set_slot) {
                        Some(s) => s,
                        None => continue,
                    };
                    let elems = self.set_elems(set);
                    if elems.is_empty() {
                        continue;
                    }
                    let elem = elems[self.rng.gen_range(0..elems.len())].clone();
                    Some(Op::Rem { set, elem })
                }
                8 => {
                    // Delete an object nothing ever referenced.
                    let slot = self.rng.gen_range(0..TYPES.len());
                    let candidates: Vec<Oid> = self.pools[slot]
                        .iter()
                        .copied()
                        .filter(|o| !self.referenced.contains(o))
                        .collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let oid = candidates[self.rng.gen_range(0..candidates.len())];
                    Some(Op::Del { oid })
                }
                9 => {
                    let value = if self.rng.gen_bool(0.5) {
                        self.fresh_string()
                    } else {
                        match self.pick(2) {
                            Some(p) => Value::Ref(p),
                            None => continue,
                        }
                    };
                    self.counter += 1;
                    Some(Op::Bind {
                        name: format!("Var{}", self.counter),
                        value,
                    })
                }
                10 => {
                    let slot = self.rng.gen_range(0..TYPES.len());
                    let bytes = self.rng.gen_range(100..2000usize);
                    Some(Op::Size {
                        ty: TYPES[slot],
                        bytes,
                    })
                }
                _ => {
                    // Create or drop an access support relation.
                    if self.rng.gen_bool(0.3) && !self.live_asrs.is_empty() {
                        let i = self.rng.gen_range(0..self.live_asrs.len());
                        Some(Op::RmAsr {
                            id: self.live_asrs[i],
                        })
                    } else {
                        let all = Decomposition::enumerate_all(3);
                        let decomposition = all[self.rng.gen_range(0..all.len())].clone();
                        let ext = Extension::ALL[self.rng.gen_range(0..4usize)];
                        Some(Op::MkAsr {
                            config: AsrConfig {
                                extension: ext,
                                decomposition,
                                keep_set_oids: false,
                            },
                        })
                    }
                }
            };
            if let Some(op) = op {
                self.track(&op);
                return op;
            }
        }
        unreachable!("generator failed to produce an effective op in 100 draws")
    }

    /// Apply to the shadow database and update the bookkeeping pools.
    fn track(&mut self, op: &Op) {
        match op {
            Op::New { ty } => {
                let oid = self.db.instantiate(ty).unwrap();
                let slot = TYPES.iter().position(|t| t == ty).unwrap();
                self.pools[slot].push(oid);
                return;
            }
            Op::Set {
                value: Value::Ref(target),
                ..
            }
            | Op::Ins {
                elem: Value::Ref(target),
                ..
            } => {
                self.referenced.insert(*target);
            }
            Op::Bind {
                value: Value::Ref(target),
                ..
            } => {
                self.referenced.insert(*target);
            }
            Op::Del { oid } => {
                for pool in &mut self.pools {
                    pool.retain(|o| o != oid);
                }
            }
            Op::MkAsr { .. } => {}
            Op::RmAsr { id } => self.live_asrs.retain(|a| a != id),
            _ => {}
        }
        if let Op::MkAsr { config } = op {
            let id = self.db.create_asr_on(PATH, config.clone()).unwrap();
            self.live_asrs.push(id);
            return;
        }
        apply_plain(&mut self.db, op);
    }
}

pub fn make_script(s0: &str, seed: u64) -> Vec<Op> {
    let mut g = Generator::new(s0, seed);
    (0..SCRIPT_LEN).map(|_| g.next_op()).collect()
}

// ----------------------------------------------------------------------
// Equivalence
// ----------------------------------------------------------------------

/// Full structural + query equivalence between a recovered database and
/// the oracle.
pub fn assert_equivalent(recovered: &Database, oracle: &Database, ctx: &str) {
    assert_eq!(
        recovered.save_to_string(),
        oracle.save_to_string(),
        "snapshot divergence ({ctx})"
    );
    let rec: Vec<_> = recovered.asrs().collect();
    let ora: Vec<_> = oracle.asrs().collect();
    assert_eq!(rec.len(), ora.len(), "live ASR count ({ctx})");
    // Collect every part name in the oracle for backward spot queries.
    let part_names: Vec<Value> = oracle
        .base()
        .objects()
        .filter(|o| oracle.base().schema().name(o.ty) == "BasePart")
        .map(|o| o.attribute("Name").clone())
        .filter(|v| *v != Value::Null)
        .collect();
    for ((rid, ra), (oid, oa)) in rec.iter().zip(ora.iter()) {
        ra.check_consistency()
            .unwrap_or_else(|e| panic!("recovered ASR {rid} inconsistent ({ctx}): {e}"));
        assert_eq!(ra.config(), oa.config(), "ASR config order ({ctx})");
        if !ra.supports(0, 3) {
            continue;
        }
        for name in &part_names {
            let target = Cell::Value(name.clone());
            let mut r = recovered.backward(*rid, 0, 3, &target).unwrap();
            let mut o = oracle.backward(*oid, 0, 3, &target).unwrap();
            r.sort();
            o.sort();
            assert_eq!(r, o, "backward({name:?}) on ASR {rid} ({ctx})");
        }
    }
}

/// Build the oracle: seed snapshot plus the first `m` script operations.
pub fn oracle_at(s0: &str, script: &[Op], m: usize) -> Database {
    let mut db = Database::load_from_string(s0).unwrap();
    for op in &script[..m] {
        apply_plain(&mut db, op);
    }
    db
}
