//! Deterministic crash-recovery fuzzing: a scripted random workload runs
//! over fault-injected storage, the machine "crashes" at every scheduled
//! failpoint (clean, torn, bit-flipped, and mid-checkpoint), and the
//! recovered database must be query-equivalent to a never-crashed oracle
//! that applied exactly the durable prefix of the script.
//!
//! The WAL invariant that makes the oracle construction exact: every
//! script operation is *effective* by construction (the generator filters
//! no-ops against a shadow database), so operation `k` logs exactly one
//! record with LSN `k + 1`.  The durable operation count after recovery
//! is therefore `checkpoint_lsn + records_replayed`, and the oracle is a
//! fresh load of the seed snapshot plus that prefix of the script.
//!
//! Seed: `ASR_FUZZ_SEED` (decimal u64) overrides the default, so CI can
//! pin a seed while local runs can explore.

mod common;

use asr_core::Database;
use asr_durable::{
    BitFlip, DurableDatabase, DurableError, FaultPlan, FaultyStorage, FlushPolicy, MemStorage,
    ReadFlip, WAL_FILE,
};
use common::*;

// ----------------------------------------------------------------------
// One fuzz run
// ----------------------------------------------------------------------

struct RunOutcome {
    durable_ops: usize,
    acked_ops: usize,
    attempted_ops: usize,
    crashed: bool,
    torn_reason: Option<&'static str>,
    torn_bytes: u64,
    ckpt_lsn: u64,
    replayed: u64,
}

/// Run the script under `plan`/`policy` (optionally checkpointing after
/// `checkpoint_after` operations), crash, reboot, recover, and check the
/// recovered state against the oracle.  Returns what happened for the
/// caller's policy-specific assertions.
fn run_crash_case(
    s0: &str,
    script: &[Op],
    plan: FaultPlan,
    policy: FlushPolicy,
    checkpoint_after: Option<usize>,
    ctx: &str,
) -> RunOutcome {
    let disk = MemStorage::new();
    let faulty = FaultyStorage::new(disk.clone(), plan);
    let seed_db = Database::load_from_string(s0).unwrap();
    let mut dd = match DurableDatabase::create(faulty, seed_db, policy) {
        Ok(dd) => dd,
        Err(e) => {
            // Create itself crashed: nothing durable may exist.
            assert!(
                matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                "unexpected create failure ({ctx}): {e}"
            );
            let err = DurableDatabase::open(disk.clone()).unwrap_err();
            assert!(
                matches!(err, DurableError::NotADatabase(_)),
                "half-created database must not open ({ctx}): {err}"
            );
            return RunOutcome {
                durable_ops: 0,
                acked_ops: 0,
                attempted_ops: 0,
                crashed: true,
                torn_reason: None,
                torn_bytes: 0,
                ckpt_lsn: 0,
                replayed: 0,
            };
        }
    };

    let mut acked = 0usize;
    let mut attempted = 0usize;
    let mut crashed = false;
    for (i, op) in script.iter().enumerate() {
        attempted += 1;
        match apply_durable(&mut dd, op) {
            Ok(()) => acked += 1,
            Err(e) => {
                assert!(
                    matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                    "unexpected failure ({ctx}) at op {i}: {e}"
                );
                crashed = true;
                break;
            }
        }
        if checkpoint_after == Some(i + 1) {
            if let Err(e) = dd.checkpoint() {
                assert!(
                    matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                    "unexpected checkpoint failure ({ctx}): {e}"
                );
                crashed = true;
                break;
            }
        }
    }
    drop(dd); // the crash: whatever was not flushed is gone

    let recovered = DurableDatabase::open(disk.clone())
        .unwrap_or_else(|e| panic!("recovery failed ({ctx}): {e}"));
    let report = recovered.recovery_report().clone();
    let durable_ops = (report.checkpoint_lsn + report.records_replayed) as usize;
    assert!(
        durable_ops <= attempted,
        "recovered more ops than were attempted ({ctx}): {durable_ops} > {attempted}"
    );

    let oracle = oracle_at(s0, script, durable_ops);
    assert_equivalent(&recovered, &oracle, ctx);

    // Recovery metrics must be observable through the metrics registry.
    let metrics = recovered.tracer().metrics();
    assert_eq!(
        metrics.counter("wal.recovery.records_replayed"),
        report.records_replayed,
        "({ctx})"
    );
    assert_eq!(
        metrics.counter("wal.recovery.torn_bytes"),
        report.torn_bytes,
        "({ctx})"
    );
    // The gauge tracks the *current* checkpoint (recovery checkpoints
    // immediately when it had to translate ASR ids, advancing it past
    // the one that was loaded).
    assert_eq!(
        metrics.gauge("wal.checkpoint_lsn"),
        Some(recovered.wal_status().checkpoint_lsn as f64),
        "({ctx})"
    );

    // A second open (after the truncating recovery) must see a clean log
    // and reach the identical state.
    drop(recovered);
    let again = DurableDatabase::open(disk).unwrap();
    assert_eq!(
        again.recovery_report().torn_bytes,
        0,
        "tail truncated on recovery ({ctx})"
    );
    assert_equivalent(&again, &oracle, &format!("{ctx}, second open"));

    RunOutcome {
        durable_ops,
        acked_ops: acked,
        attempted_ops: attempted,
        crashed,
        torn_reason: report.torn_reason,
        torn_bytes: report.torn_bytes,
        ckpt_lsn: report.checkpoint_lsn,
        replayed: report.records_replayed,
    }
}

// ----------------------------------------------------------------------
// The fuzz matrix
// ----------------------------------------------------------------------

/// Clean crash after every possible append, flush-every-record: the
/// durable prefix must be exactly the acknowledged prefix.
#[test]
fn crash_at_every_append_every_record_policy() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed());
    for n in 0..=SCRIPT_LEN {
        let ctx = format!("clean crash at append {n}");
        let out = run_crash_case(
            &s0,
            &script,
            FaultPlan::crash_at_append(n),
            FlushPolicy::EveryRecord,
            None,
            &ctx,
        );
        if n < SCRIPT_LEN {
            assert!(out.crashed, "{ctx}: plan must fire");
            assert_eq!(out.durable_ops, n, "{ctx}: exactly the acked prefix");
            assert_eq!(out.acked_ops, n, "{ctx}");
        } else {
            assert!(!out.crashed, "{ctx}: plan out of range never fires");
            assert_eq!(out.durable_ops, SCRIPT_LEN, "{ctx}");
        }
    }
}

/// Torn writes at every append: keep 1 and 6 bytes (torn header), and 12
/// bytes (header intact, payload cut short).  The torn record was never
/// acknowledged, so recovery discards it and nothing else.
#[test]
fn torn_write_at_every_append() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x7071);
    for n in 0..SCRIPT_LEN {
        for keep in [1usize, 6, 12] {
            let ctx = format!("torn append {n} keeping {keep} bytes");
            let out = run_crash_case(
                &s0,
                &script,
                FaultPlan::torn_append(n, keep),
                FlushPolicy::EveryRecord,
                None,
                &ctx,
            );
            assert!(out.crashed, "{ctx}");
            assert_eq!(out.durable_ops, n, "{ctx}");
            assert_eq!(out.torn_bytes, keep as u64, "{ctx}");
            assert!(
                out.torn_reason.is_some(),
                "{ctx}: scan must report the tear"
            );
        }
    }
}

/// A bit flip inside the torn tail must not confuse the scanner either.
#[test]
fn torn_write_with_bit_flip() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xF11F);
    for n in (0..SCRIPT_LEN).step_by(3) {
        for (keep, byte) in [(6usize, 2usize), (12, 9)] {
            let plan = FaultPlan {
                crash_after_appends: Some(n),
                torn_keep_bytes: keep,
                flip: Some(BitFlip { byte, bit: 3 }),
                ..FaultPlan::default()
            };
            let ctx = format!("torn+flip append {n} keep {keep} flip@{byte}");
            let out = run_crash_case(&s0, &script, plan, FlushPolicy::EveryRecord, None, &ctx);
            assert_eq!(out.durable_ops, n, "{ctx}");
        }
    }
}

/// Bit rot at rest: a *complete, acknowledged* record is corrupted after
/// the crash.  The CRC detects it; recovery silently drops that record
/// (it is the unacknowledgeable tail from the log's point of view) and
/// recovers the prefix before it.
#[test]
fn bit_flip_on_complete_record_at_rest() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xB17F);
    for n in 0..SCRIPT_LEN {
        let disk = MemStorage::new();
        let seed_db = Database::load_from_string(&s0).unwrap();
        let mut dd = DurableDatabase::create(
            FaultyStorage::new(disk.clone(), FaultPlan::crash_at_append(n + 1)),
            seed_db,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        for op in script.iter() {
            if apply_durable(&mut dd, op).is_err() {
                break;
            }
        }
        drop(dd);
        // Records 0..=n are durable; rot the payload tail of record n.
        let len = disk.len(WAL_FILE);
        assert!(len > 0);
        assert!(disk.flip_bit_at_rest(WAL_FILE, len - 1, 5));

        let ctx = format!("bit rot in last record after {n} clean appends");
        let recovered = DurableDatabase::open(disk).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        let report = recovered.recovery_report();
        assert_eq!(report.torn_reason, Some("crc mismatch"), "{ctx}");
        let m = (report.checkpoint_lsn + report.records_replayed) as usize;
        assert_eq!(m, n, "{ctx}: rotted record dropped, prefix kept");
        assert_equivalent(&recovered, &oracle_at(&s0, &script, n), &ctx);
    }
}

/// Group commit: crashes land between group flushes, so up to N-1 acked
/// operations may be lost — but the durable prefix is still an exact
/// prefix, never a gap or reorder.
#[test]
fn crash_under_group_commit() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x96C0);
    let group = 3usize;
    for a in 0..=SCRIPT_LEN / group {
        for keep in [0usize, 1, 40] {
            let ctx = format!("group-commit crash at flush {a} keeping {keep}");
            let plan = FaultPlan {
                crash_after_appends: Some(a),
                torn_keep_bytes: keep,
                ..FaultPlan::default()
            };
            let out = run_crash_case(&s0, &script, plan, FlushPolicy::EveryN(group), None, &ctx);
            if out.crashed {
                // The durable prefix covers every fully flushed group and
                // at most the torn group's surviving records.
                assert!(
                    out.durable_ops >= a * group,
                    "{ctx}: {out:?} lost a flushed group",
                );
                assert!(
                    out.durable_ops <= out.attempted_ops,
                    "{ctx}: durable beyond attempts"
                );
                assert!(
                    out.acked_ops + 1 == out.attempted_ops,
                    "{ctx}: exactly the crashing op unacked"
                );
            } else {
                // Plan never fired; pending tail (script len not divisible
                // by the group) is lost with the process.
                assert_eq!(out.durable_ops, (SCRIPT_LEN / group) * group, "{ctx}");
            }
        }
    }
}

impl std::fmt::Debug for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "durable={} acked={} attempted={} crashed={} torn={:?}/{} ckpt={} replayed={}",
            self.durable_ops,
            self.acked_ops,
            self.attempted_ops,
            self.crashed,
            self.torn_reason,
            self.torn_bytes,
            self.ckpt_lsn,
            self.replayed
        )
    }
}

/// Explicit flush policy: nothing is durable until `flush()` (or a
/// checkpoint); a crash loses exactly the unflushed suffix.
#[test]
fn explicit_policy_loses_unflushed_suffix() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xEE11);
    for flush_at in [0usize, 5, SCRIPT_LEN] {
        let disk = MemStorage::new();
        let seed_db = Database::load_from_string(&s0).unwrap();
        let mut dd = DurableDatabase::create(
            FaultyStorage::new(disk.clone(), FaultPlan::none()),
            seed_db,
            FlushPolicy::Explicit,
        )
        .unwrap();
        for (i, op) in script.iter().enumerate() {
            apply_durable(&mut dd, op).unwrap();
            if i + 1 == flush_at {
                dd.flush().unwrap();
            }
        }
        drop(dd); // crash with the suffix only in memory
        let ctx = format!("explicit policy, flushed after {flush_at}");
        let recovered = DurableDatabase::open(disk).unwrap();
        let report = recovered.recovery_report();
        let m = (report.checkpoint_lsn + report.records_replayed) as usize;
        assert_eq!(m, flush_at, "{ctx}");
        assert_equivalent(&recovered, &oracle_at(&s0, &script, flush_at), &ctx);
    }
}

/// Crashes on *every* atomic write around a mid-script checkpoint.
///
/// The checkpoint sequence publishes, in order: the sealed segment (4),
/// the archived snapshot copy (5), `segments.manifest` (6), the
/// authoritative `checkpoint.snap` (7, the commit point), and `MANIFEST`
/// (8); create consumed atomic writes 0–3 (archive, `segments.manifest`,
/// `checkpoint.snap`, `MANIFEST`).  A crash anywhere *before* the commit
/// point must fall back to the previous checkpoint (here LSN 0) with a
/// longer WAL replay; a crash after it recovers from the new checkpoint
/// with zero replay.  Either way the recovered state equals the oracle
/// at `ckpt_at` — no op is lost or doubled in any window (duplicate
/// records between the fresh segment and the still-present `wal.log`
/// are skipped by LSN).
#[test]
fn crash_around_mid_script_checkpoint() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xC4E7);
    let ckpt_at = SCRIPT_LEN / 2;
    const CREATE_WRITES: usize = 4; // archive, segments.manifest, checkpoint.snap, MANIFEST
    const CKPT_WRITES: usize = 4; // the same four (fuzzy checkpoints never seal the log)
    let commit_point = CREATE_WRITES + CKPT_WRITES - 2; // checkpoint.snap replacement

    let mut fired_through = 0usize;
    for atomic_n in 0..CREATE_WRITES + CKPT_WRITES + 1 {
        let plan = FaultPlan {
            crash_on_atomic_write: Some(atomic_n),
            ..FaultPlan::default()
        };
        let ctx = format!("crash on atomic write {atomic_n} around checkpoint");
        let out = run_crash_case(
            &s0,
            &script,
            plan,
            FlushPolicy::EveryRecord,
            Some(ckpt_at),
            &ctx,
        );
        if atomic_n < CREATE_WRITES {
            // Create never finished: nothing durable (run_crash_case
            // already asserted the half-created database refuses to open).
            assert!(out.crashed, "{ctx}");
            assert_eq!(out.durable_ops, 0, "{ctx}");
        } else if atomic_n < CREATE_WRITES + CKPT_WRITES {
            // Mid-checkpoint: every op logged before the checkpoint
            // attempt is durable — no more, no less.
            assert!(out.crashed, "{ctx}: plan must fire");
            assert_eq!(out.durable_ops, ckpt_at, "{ctx}");
            // The fault fires *before* performing the scheduled write, so
            // a crash on the commit point itself also leaves the old
            // checkpoint in place.
            if atomic_n <= commit_point {
                // checkpoint.snap was never replaced: recovery fell back
                // to the create-time checkpoint and replayed the longer
                // WAL tail.
                assert_eq!(out.ckpt_lsn, 0, "{ctx}: previous checkpoint");
                assert_eq!(out.replayed, ckpt_at as u64, "{ctx}: longer replay");
            } else {
                // At or past the commit point: the new checkpoint is
                // authoritative and nothing needs replaying.
                assert_eq!(out.ckpt_lsn, ckpt_at as u64, "{ctx}: new checkpoint");
                assert_eq!(out.replayed, 0, "{ctx}: covered by checkpoint");
            }
            fired_through = atomic_n;
        } else {
            // Past every scheduled write: the plan never fires and the
            // whole script lands.
            assert!(!out.crashed, "{ctx}: plan out of range must not fire");
            assert_eq!(out.durable_ops, SCRIPT_LEN, "{ctx}");
        }
    }
    assert_eq!(
        fired_through,
        CREATE_WRITES + CKPT_WRITES - 1,
        "sweep must cover every checkpoint atomic write"
    );

    // Append crashes across the checkpoint boundary: before it the full
    // log recovers; after it the checkpoint plus the short tail does.
    for n in 0..=SCRIPT_LEN {
        let ctx = format!("checkpoint at {ckpt_at}, clean crash at append {n}");
        let out = run_crash_case(
            &s0,
            &script,
            FaultPlan::crash_at_append(n),
            FlushPolicy::EveryRecord,
            Some(ckpt_at),
            &ctx,
        );
        assert_eq!(out.durable_ops, n.min(SCRIPT_LEN), "{ctx}");
    }
}

/// Transient read-path bit flips during recovery: every stabilized read
/// (`MANIFEST`, `checkpoint.snap`, `wal.log`, `segments.manifest`,
/// sealed segments) sees a one-shot flip on its first access, and
/// `read_stable` must heal it — recovery still lands exactly on the
/// oracle.
#[test]
fn transient_read_flip_during_recovery() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x4EAD);
    let ckpt_at = SCRIPT_LEN / 2;

    // Build a database with real shape: a checkpoint mid-script, a sealed
    // segment (forced rotation), and a live tail.
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut dd = DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    for (i, op) in script.iter().enumerate() {
        apply_durable(&mut dd, op).unwrap();
        if i + 1 == ckpt_at {
            dd.checkpoint().unwrap();
        }
        if i + 1 == ckpt_at + 4 {
            dd.rotate_segment().unwrap();
        }
    }
    drop(dd);
    let oracle = oracle_at(&s0, &script, SCRIPT_LEN);

    // Flip a bit in the nth read for every n until recovery stops
    // consuming that many reads.  Recovery must heal every one.
    for nth in 0..64usize {
        for byte in [0usize, 7, 200] {
            let plan = FaultPlan {
                flip_read: Some(ReadFlip { nth, byte, bit: 2 }),
                ..FaultPlan::default()
            };
            let faulty = FaultyStorage::new(disk.clone(), plan);
            let ctx = format!("transient flip on read {nth} byte {byte}");
            let recovered = DurableDatabase::open(faulty).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_equivalent(&recovered, &oracle, &ctx);
        }
        // Stop once a probe run shows recovery never reached read n.
        let probe =
            DurableDatabase::open(FaultyStorage::new(disk.clone(), FaultPlan::default())).unwrap();
        if probe.storage().reads_seen() <= nth {
            return;
        }
    }
    panic!("recovery consumed over 64 reads; widen the sweep");
}

/// No crash at all: a checkpointed database reopens with zero replay,
/// and a non-checkpointed one replays its whole log — both equivalent to
/// the full-script oracle.
#[test]
fn clean_shutdown_and_reopen() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xC1EA);
    let oracle = oracle_at(&s0, &script, SCRIPT_LEN);

    for final_checkpoint in [false, true] {
        let disk = MemStorage::new();
        let seed_db = Database::load_from_string(&s0).unwrap();
        let mut dd =
            DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
        for op in &script {
            apply_durable(&mut dd, op).unwrap();
        }
        if final_checkpoint {
            dd.checkpoint().unwrap();
        }
        // The live session and the oracle agree even before any reboot.
        assert_equivalent(&dd, &oracle, "live session");
        drop(dd);

        let recovered = DurableDatabase::open(disk).unwrap();
        let report = recovered.recovery_report();
        if final_checkpoint {
            assert_eq!(report.records_replayed, 0, "checkpoint covers everything");
            assert_eq!(report.checkpoint_lsn, SCRIPT_LEN as u64);
        } else {
            assert_eq!(
                report.records_replayed, SCRIPT_LEN as u64,
                "whole log replays"
            );
        }
        assert_equivalent(
            &recovered,
            &oracle,
            &format!("clean reopen, checkpoint={final_checkpoint}"),
        );
    }
}
