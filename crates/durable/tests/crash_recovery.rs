//! Deterministic crash-recovery fuzzing: a scripted random workload runs
//! over fault-injected storage, the machine "crashes" at every scheduled
//! failpoint (clean, torn, bit-flipped, and mid-checkpoint), and the
//! recovered database must be query-equivalent to a never-crashed oracle
//! that applied exactly the durable prefix of the script.
//!
//! The WAL invariant that makes the oracle construction exact: every
//! script operation is *effective* by construction (the generator filters
//! no-ops against a shadow database), so operation `k` logs exactly one
//! record with LSN `k + 1`.  The durable operation count after recovery
//! is therefore `checkpoint_lsn + records_replayed`, and the oracle is a
//! fresh load of the seed snapshot plus that prefix of the script.
//!
//! Seed: `ASR_FUZZ_SEED` (decimal u64) overrides the default, so CI can
//! pin a seed while local runs can explore.

use std::collections::BTreeSet;

use asr_core::{AsrConfig, AsrId, Cell, Database, Decomposition, Extension};
use asr_durable::{
    BitFlip, DurableDatabase, DurableError, FaultPlan, FaultyStorage, FlushPolicy, MemStorage,
    WAL_FILE,
};
use asr_gom::{ObjectBase, ObjectBody, Oid, Schema, Value};
use rand::{Rng, SeedableRng};

const PATH: &str = "Division.Manufactures.Composition.Name";
const SCRIPT_LEN: usize = 24;

fn fuzz_seed() -> u64 {
    std::env::var("ASR_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA512_1990)
}

// ----------------------------------------------------------------------
// Seed database (the paper's company schema, small scale)
// ----------------------------------------------------------------------

fn company_schema() -> Schema {
    let mut s = Schema::new();
    s.define_tuple(
        "Division",
        [("Name", "STRING"), ("Manufactures", "ProdSET")],
    )
    .unwrap();
    s.define_set("ProdSET", "Product").unwrap();
    s.define_tuple(
        "Product",
        [("Name", "STRING"), ("Composition", "BasePartSET")],
    )
    .unwrap();
    s.define_set("BasePartSET", "BasePart").unwrap();
    s.define_tuple("BasePart", [("Name", "STRING")]).unwrap();
    s.validate().unwrap();
    s
}

/// The seed snapshot `S0`: a small populated company database with all
/// four extensions materialized over the full path, serialized once
/// through save/load so type-id assignment is at its fixed point and
/// every copy loaded from this text behaves identically (including OID
/// generation order).
fn seed_snapshot() -> String {
    let mut db = Database::from_base(ObjectBase::new(company_schema()));
    let d = db.instantiate("Division").unwrap();
    db.set_attribute(d, "Name", Value::string("Auto")).unwrap();
    let ps = db.instantiate("ProdSET").unwrap();
    db.set_attribute(d, "Manufactures", Value::Ref(ps)).unwrap();
    let prod = db.instantiate("Product").unwrap();
    db.set_attribute(prod, "Name", Value::string("560 SEC"))
        .unwrap();
    db.insert_into_set(ps, Value::Ref(prod)).unwrap();
    let bs = db.instantiate("BasePartSET").unwrap();
    db.set_attribute(prod, "Composition", Value::Ref(bs))
        .unwrap();
    let part = db.instantiate("BasePart").unwrap();
    db.set_attribute(part, "Name", Value::string("Door"))
        .unwrap();
    db.insert_into_set(bs, Value::Ref(part)).unwrap();
    for ext in Extension::ALL {
        db.create_asr_on(
            PATH,
            AsrConfig {
                extension: ext,
                decomposition: Decomposition::binary(3),
                keep_set_oids: false,
            },
        )
        .unwrap();
    }
    let fixed = Database::load_from_string(&db.save_to_string()).unwrap();
    fixed.save_to_string()
}

// ----------------------------------------------------------------------
// Script: guaranteed-effective operations
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    New {
        ty: &'static str,
    },
    Set {
        owner: Oid,
        attr: &'static str,
        value: Value,
    },
    Ins {
        set: Oid,
        elem: Value,
    },
    Rem {
        set: Oid,
        elem: Value,
    },
    Del {
        oid: Oid,
    },
    Bind {
        name: String,
        value: Value,
    },
    Size {
        ty: &'static str,
        bytes: usize,
    },
    MkAsr {
        config: AsrConfig,
    },
    RmAsr {
        id: AsrId,
    },
}

fn apply_plain(db: &mut Database, op: &Op) {
    match op {
        Op::New { ty } => {
            db.instantiate(ty).unwrap();
        }
        Op::Set { owner, attr, value } => db.set_attribute(*owner, attr, value.clone()).unwrap(),
        Op::Ins { set, elem } => assert!(db.insert_into_set(*set, elem.clone()).unwrap()),
        Op::Rem { set, elem } => assert!(db.remove_from_set(*set, elem).unwrap()),
        Op::Del { oid } => db.delete_object(*oid).unwrap(),
        Op::Bind { name, value } => db.bind_variable(name, value.clone()),
        Op::Size { ty, bytes } => {
            let id = db.base().schema().resolve(ty).unwrap();
            db.set_type_size(id, *bytes);
        }
        Op::MkAsr { config } => {
            db.create_asr_on(PATH, config.clone()).unwrap();
        }
        Op::RmAsr { id } => db.drop_asr(*id).unwrap(),
    }
}

fn apply_durable<S: asr_durable::Storage>(
    dd: &mut DurableDatabase<S>,
    op: &Op,
) -> Result<(), DurableError> {
    match op {
        Op::New { ty } => dd.instantiate(ty).map(drop),
        Op::Set { owner, attr, value } => dd.set_attribute(*owner, attr, value.clone()),
        Op::Ins { set, elem } => dd.insert_into_set(*set, elem.clone()).map(|eff| {
            assert!(eff, "script op generated as effective");
        }),
        Op::Rem { set, elem } => dd.remove_from_set(*set, elem).map(|eff| {
            assert!(eff, "script op generated as effective");
        }),
        Op::Del { oid } => dd.delete_object(*oid),
        Op::Bind { name, value } => dd.bind_variable(name, value.clone()),
        Op::Size { ty, bytes } => dd.set_type_size(ty, *bytes),
        Op::MkAsr { config } => dd.create_asr_on(PATH, config.clone()).map(drop),
        Op::RmAsr { id } => dd.drop_asr(*id),
    }
}

struct Generator {
    db: Database, // shadow copy: tracks state so every op is effective
    rng: rand::rngs::SmallRng,
    pools: [Vec<Oid>; 5], // Division, ProdSET, Product, BasePartSET, BasePart
    referenced: BTreeSet<Oid>,
    live_asrs: Vec<AsrId>,
    counter: u64,
}

const TYPES: [&str; 5] = ["Division", "ProdSET", "Product", "BasePartSET", "BasePart"];

impl Generator {
    fn new(s0: &str, seed: u64) -> Self {
        let db = Database::load_from_string(s0).unwrap();
        let mut pools: [Vec<Oid>; 5] = Default::default();
        let mut referenced = BTreeSet::new();
        for obj in db.base().objects() {
            let name = db.base().schema().name(obj.ty).to_string();
            let slot = TYPES.iter().position(|t| *t == name).unwrap();
            pools[slot].push(obj.oid);
            // Seed objects reference each other; treat them all as
            // referenced so deletes only target fresh unlinked objects.
            referenced.insert(obj.oid);
        }
        let live_asrs = db.asrs().map(|(id, _)| id).collect();
        Generator {
            db,
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            pools,
            referenced,
            live_asrs,
            counter: 0,
        }
    }

    fn pick(&mut self, slot: usize) -> Option<Oid> {
        if self.pools[slot].is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.pools[slot].len());
        Some(self.pools[slot][i])
    }

    fn fresh_string(&mut self) -> Value {
        self.counter += 1;
        Value::string(format!("val {}%{}", self.counter, self.counter * 7))
    }

    fn set_elems(&self, set: Oid) -> Vec<Value> {
        match &self.db.base().object(set).unwrap().body {
            ObjectBody::Set(elems) => elems.iter().cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// Propose one effective operation (retrying internally).
    fn next_op(&mut self) -> Op {
        for _ in 0..100 {
            let kind = self.rng.gen_range(0..12u32);
            let op = match kind {
                0 | 1 => {
                    let slot = self.rng.gen_range(0..TYPES.len());
                    Some(Op::New { ty: TYPES[slot] })
                }
                2 | 3 => {
                    // Rename a tuple object to a fresh value: always effective.
                    let slot = [0usize, 2, 4][self.rng.gen_range(0..3usize)];
                    let value = self.fresh_string();
                    self.pick(slot).map(|owner| Op::Set {
                        owner,
                        attr: "Name",
                        value,
                    })
                }
                4 => {
                    // Link a division to a product set it doesn't point at.
                    let (d, ps) = match (self.pick(0), self.pick(1)) {
                        (Some(d), Some(ps)) => (d, ps),
                        _ => continue,
                    };
                    let cur = self.db.base().get_attribute(d, "Manufactures").unwrap();
                    if cur == Value::Ref(ps) {
                        continue;
                    }
                    Some(Op::Set {
                        owner: d,
                        attr: "Manufactures",
                        value: Value::Ref(ps),
                    })
                }
                5 => {
                    let (p, bs) = match (self.pick(2), self.pick(3)) {
                        (Some(p), Some(bs)) => (p, bs),
                        _ => continue,
                    };
                    let cur = self.db.base().get_attribute(p, "Composition").unwrap();
                    if cur == Value::Ref(bs) {
                        continue;
                    }
                    Some(Op::Set {
                        owner: p,
                        attr: "Composition",
                        value: Value::Ref(bs),
                    })
                }
                6 => {
                    // Insert an absent element into a set.
                    let (set_slot, elem_slot) = if self.rng.gen_bool(0.5) {
                        (1, 2)
                    } else {
                        (3, 4)
                    };
                    let (set, elem) = match (self.pick(set_slot), self.pick(elem_slot)) {
                        (Some(s), Some(e)) => (s, Value::Ref(e)),
                        _ => continue,
                    };
                    if self.set_elems(set).contains(&elem) {
                        continue;
                    }
                    Some(Op::Ins { set, elem })
                }
                7 => {
                    // Remove a present element.
                    let set_slot = if self.rng.gen_bool(0.5) { 1 } else { 3 };
                    let set = match self.pick(set_slot) {
                        Some(s) => s,
                        None => continue,
                    };
                    let elems = self.set_elems(set);
                    if elems.is_empty() {
                        continue;
                    }
                    let elem = elems[self.rng.gen_range(0..elems.len())].clone();
                    Some(Op::Rem { set, elem })
                }
                8 => {
                    // Delete an object nothing ever referenced.
                    let slot = self.rng.gen_range(0..TYPES.len());
                    let candidates: Vec<Oid> = self.pools[slot]
                        .iter()
                        .copied()
                        .filter(|o| !self.referenced.contains(o))
                        .collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let oid = candidates[self.rng.gen_range(0..candidates.len())];
                    Some(Op::Del { oid })
                }
                9 => {
                    let value = if self.rng.gen_bool(0.5) {
                        self.fresh_string()
                    } else {
                        match self.pick(2) {
                            Some(p) => Value::Ref(p),
                            None => continue,
                        }
                    };
                    self.counter += 1;
                    Some(Op::Bind {
                        name: format!("Var{}", self.counter),
                        value,
                    })
                }
                10 => {
                    let slot = self.rng.gen_range(0..TYPES.len());
                    let bytes = self.rng.gen_range(100..2000usize);
                    Some(Op::Size {
                        ty: TYPES[slot],
                        bytes,
                    })
                }
                _ => {
                    // Create or drop an access support relation.
                    if self.rng.gen_bool(0.3) && !self.live_asrs.is_empty() {
                        let i = self.rng.gen_range(0..self.live_asrs.len());
                        Some(Op::RmAsr {
                            id: self.live_asrs[i],
                        })
                    } else {
                        let all = Decomposition::enumerate_all(3);
                        let decomposition = all[self.rng.gen_range(0..all.len())].clone();
                        let ext = Extension::ALL[self.rng.gen_range(0..4usize)];
                        Some(Op::MkAsr {
                            config: AsrConfig {
                                extension: ext,
                                decomposition,
                                keep_set_oids: false,
                            },
                        })
                    }
                }
            };
            if let Some(op) = op {
                self.track(&op);
                return op;
            }
        }
        unreachable!("generator failed to produce an effective op in 100 draws")
    }

    /// Apply to the shadow database and update the bookkeeping pools.
    fn track(&mut self, op: &Op) {
        match op {
            Op::New { ty } => {
                let oid = self.db.instantiate(ty).unwrap();
                let slot = TYPES.iter().position(|t| t == ty).unwrap();
                self.pools[slot].push(oid);
                return;
            }
            Op::Set {
                value: Value::Ref(target),
                ..
            }
            | Op::Ins {
                elem: Value::Ref(target),
                ..
            } => {
                self.referenced.insert(*target);
            }
            Op::Bind {
                value: Value::Ref(target),
                ..
            } => {
                self.referenced.insert(*target);
            }
            Op::Del { oid } => {
                for pool in &mut self.pools {
                    pool.retain(|o| o != oid);
                }
            }
            Op::MkAsr { .. } => {}
            Op::RmAsr { id } => self.live_asrs.retain(|a| a != id),
            _ => {}
        }
        if let Op::MkAsr { config } = op {
            let id = self.db.create_asr_on(PATH, config.clone()).unwrap();
            self.live_asrs.push(id);
            return;
        }
        apply_plain(&mut self.db, op);
    }
}

fn make_script(s0: &str, seed: u64) -> Vec<Op> {
    let mut g = Generator::new(s0, seed);
    (0..SCRIPT_LEN).map(|_| g.next_op()).collect()
}

// ----------------------------------------------------------------------
// Equivalence
// ----------------------------------------------------------------------

/// Full structural + query equivalence between a recovered database and
/// the oracle.
fn assert_equivalent(recovered: &Database, oracle: &Database, ctx: &str) {
    assert_eq!(
        recovered.save_to_string(),
        oracle.save_to_string(),
        "snapshot divergence ({ctx})"
    );
    let rec: Vec<_> = recovered.asrs().collect();
    let ora: Vec<_> = oracle.asrs().collect();
    assert_eq!(rec.len(), ora.len(), "live ASR count ({ctx})");
    // Collect every part name in the oracle for backward spot queries.
    let part_names: Vec<Value> = oracle
        .base()
        .objects()
        .filter(|o| oracle.base().schema().name(o.ty) == "BasePart")
        .map(|o| o.attribute("Name").clone())
        .filter(|v| *v != Value::Null)
        .collect();
    for ((rid, ra), (oid, oa)) in rec.iter().zip(ora.iter()) {
        ra.check_consistency()
            .unwrap_or_else(|e| panic!("recovered ASR {rid} inconsistent ({ctx}): {e}"));
        assert_eq!(ra.config(), oa.config(), "ASR config order ({ctx})");
        if !ra.supports(0, 3) {
            continue;
        }
        for name in &part_names {
            let target = Cell::Value(name.clone());
            let mut r = recovered.backward(*rid, 0, 3, &target).unwrap();
            let mut o = oracle.backward(*oid, 0, 3, &target).unwrap();
            r.sort();
            o.sort();
            assert_eq!(r, o, "backward({name:?}) on ASR {rid} ({ctx})");
        }
    }
}

/// Build the oracle: seed snapshot plus the first `m` script operations.
fn oracle_at(s0: &str, script: &[Op], m: usize) -> Database {
    let mut db = Database::load_from_string(s0).unwrap();
    for op in &script[..m] {
        apply_plain(&mut db, op);
    }
    db
}

// ----------------------------------------------------------------------
// One fuzz run
// ----------------------------------------------------------------------

struct RunOutcome {
    durable_ops: usize,
    acked_ops: usize,
    attempted_ops: usize,
    crashed: bool,
    torn_reason: Option<&'static str>,
    torn_bytes: u64,
}

/// Run the script under `plan`/`policy` (optionally checkpointing after
/// `checkpoint_after` operations), crash, reboot, recover, and check the
/// recovered state against the oracle.  Returns what happened for the
/// caller's policy-specific assertions.
fn run_crash_case(
    s0: &str,
    script: &[Op],
    plan: FaultPlan,
    policy: FlushPolicy,
    checkpoint_after: Option<usize>,
    ctx: &str,
) -> RunOutcome {
    let disk = MemStorage::new();
    let faulty = FaultyStorage::new(disk.clone(), plan);
    let seed_db = Database::load_from_string(s0).unwrap();
    let mut dd = match DurableDatabase::create(faulty, seed_db, policy) {
        Ok(dd) => dd,
        Err(e) => {
            // Create itself crashed: nothing durable may exist.
            assert!(
                matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                "unexpected create failure ({ctx}): {e}"
            );
            let err = DurableDatabase::open(disk.clone()).unwrap_err();
            assert!(
                matches!(err, DurableError::NotADatabase(_)),
                "half-created database must not open ({ctx}): {err}"
            );
            return RunOutcome {
                durable_ops: 0,
                acked_ops: 0,
                attempted_ops: 0,
                crashed: true,
                torn_reason: None,
                torn_bytes: 0,
            };
        }
    };

    let mut acked = 0usize;
    let mut attempted = 0usize;
    let mut crashed = false;
    for (i, op) in script.iter().enumerate() {
        attempted += 1;
        match apply_durable(&mut dd, op) {
            Ok(()) => acked += 1,
            Err(e) => {
                assert!(
                    matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                    "unexpected failure ({ctx}) at op {i}: {e}"
                );
                crashed = true;
                break;
            }
        }
        if checkpoint_after == Some(i + 1) {
            if let Err(e) = dd.checkpoint() {
                assert!(
                    matches!(e, DurableError::InjectedCrash | DurableError::Poisoned),
                    "unexpected checkpoint failure ({ctx}): {e}"
                );
                crashed = true;
                break;
            }
        }
    }
    drop(dd); // the crash: whatever was not flushed is gone

    let recovered = DurableDatabase::open(disk.clone())
        .unwrap_or_else(|e| panic!("recovery failed ({ctx}): {e}"));
    let report = recovered.recovery_report().clone();
    let durable_ops = (report.checkpoint_lsn + report.records_replayed) as usize;
    assert!(
        durable_ops <= attempted,
        "recovered more ops than were attempted ({ctx}): {durable_ops} > {attempted}"
    );

    let oracle = oracle_at(s0, script, durable_ops);
    assert_equivalent(&recovered, &oracle, ctx);

    // Recovery metrics must be observable through the metrics registry.
    let metrics = recovered.tracer().metrics();
    assert_eq!(
        metrics.counter("wal.recovery.records_replayed"),
        report.records_replayed,
        "({ctx})"
    );
    assert_eq!(
        metrics.counter("wal.recovery.torn_bytes"),
        report.torn_bytes,
        "({ctx})"
    );
    // The gauge tracks the *current* checkpoint (recovery checkpoints
    // immediately when it had to translate ASR ids, advancing it past
    // the one that was loaded).
    assert_eq!(
        metrics.gauge("wal.checkpoint_lsn"),
        Some(recovered.wal_status().checkpoint_lsn as f64),
        "({ctx})"
    );

    // A second open (after the truncating recovery) must see a clean log
    // and reach the identical state.
    drop(recovered);
    let again = DurableDatabase::open(disk).unwrap();
    assert_eq!(
        again.recovery_report().torn_bytes,
        0,
        "tail truncated on recovery ({ctx})"
    );
    assert_equivalent(&again, &oracle, &format!("{ctx}, second open"));

    RunOutcome {
        durable_ops,
        acked_ops: acked,
        attempted_ops: attempted,
        crashed,
        torn_reason: report.torn_reason,
        torn_bytes: report.torn_bytes,
    }
}

// ----------------------------------------------------------------------
// The fuzz matrix
// ----------------------------------------------------------------------

/// Clean crash after every possible append, flush-every-record: the
/// durable prefix must be exactly the acknowledged prefix.
#[test]
fn crash_at_every_append_every_record_policy() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed());
    for n in 0..=SCRIPT_LEN {
        let ctx = format!("clean crash at append {n}");
        let out = run_crash_case(
            &s0,
            &script,
            FaultPlan::crash_at_append(n),
            FlushPolicy::EveryRecord,
            None,
            &ctx,
        );
        if n < SCRIPT_LEN {
            assert!(out.crashed, "{ctx}: plan must fire");
            assert_eq!(out.durable_ops, n, "{ctx}: exactly the acked prefix");
            assert_eq!(out.acked_ops, n, "{ctx}");
        } else {
            assert!(!out.crashed, "{ctx}: plan out of range never fires");
            assert_eq!(out.durable_ops, SCRIPT_LEN, "{ctx}");
        }
    }
}

/// Torn writes at every append: keep 1 and 6 bytes (torn header), and 12
/// bytes (header intact, payload cut short).  The torn record was never
/// acknowledged, so recovery discards it and nothing else.
#[test]
fn torn_write_at_every_append() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x7071);
    for n in 0..SCRIPT_LEN {
        for keep in [1usize, 6, 12] {
            let ctx = format!("torn append {n} keeping {keep} bytes");
            let out = run_crash_case(
                &s0,
                &script,
                FaultPlan::torn_append(n, keep),
                FlushPolicy::EveryRecord,
                None,
                &ctx,
            );
            assert!(out.crashed, "{ctx}");
            assert_eq!(out.durable_ops, n, "{ctx}");
            assert_eq!(out.torn_bytes, keep as u64, "{ctx}");
            assert!(
                out.torn_reason.is_some(),
                "{ctx}: scan must report the tear"
            );
        }
    }
}

/// A bit flip inside the torn tail must not confuse the scanner either.
#[test]
fn torn_write_with_bit_flip() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xF11F);
    for n in (0..SCRIPT_LEN).step_by(3) {
        for (keep, byte) in [(6usize, 2usize), (12, 9)] {
            let plan = FaultPlan {
                crash_after_appends: Some(n),
                torn_keep_bytes: keep,
                flip: Some(BitFlip { byte, bit: 3 }),
                crash_on_atomic_write: None,
            };
            let ctx = format!("torn+flip append {n} keep {keep} flip@{byte}");
            let out = run_crash_case(&s0, &script, plan, FlushPolicy::EveryRecord, None, &ctx);
            assert_eq!(out.durable_ops, n, "{ctx}");
        }
    }
}

/// Bit rot at rest: a *complete, acknowledged* record is corrupted after
/// the crash.  The CRC detects it; recovery silently drops that record
/// (it is the unacknowledgeable tail from the log's point of view) and
/// recovers the prefix before it.
#[test]
fn bit_flip_on_complete_record_at_rest() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xB17F);
    for n in 0..SCRIPT_LEN {
        let disk = MemStorage::new();
        let seed_db = Database::load_from_string(&s0).unwrap();
        let mut dd = DurableDatabase::create(
            FaultyStorage::new(disk.clone(), FaultPlan::crash_at_append(n + 1)),
            seed_db,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        for op in script.iter() {
            if apply_durable(&mut dd, op).is_err() {
                break;
            }
        }
        drop(dd);
        // Records 0..=n are durable; rot the payload tail of record n.
        let len = disk.len(WAL_FILE);
        assert!(len > 0);
        assert!(disk.flip_bit_at_rest(WAL_FILE, len - 1, 5));

        let ctx = format!("bit rot in last record after {n} clean appends");
        let recovered = DurableDatabase::open(disk).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        let report = recovered.recovery_report();
        assert_eq!(report.torn_reason, Some("crc mismatch"), "{ctx}");
        let m = (report.checkpoint_lsn + report.records_replayed) as usize;
        assert_eq!(m, n, "{ctx}: rotted record dropped, prefix kept");
        assert_equivalent(&recovered, &oracle_at(&s0, &script, n), &ctx);
    }
}

/// Group commit: crashes land between group flushes, so up to N-1 acked
/// operations may be lost — but the durable prefix is still an exact
/// prefix, never a gap or reorder.
#[test]
fn crash_under_group_commit() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x96C0);
    let group = 3usize;
    for a in 0..=SCRIPT_LEN / group {
        for keep in [0usize, 1, 40] {
            let ctx = format!("group-commit crash at flush {a} keeping {keep}");
            let plan = FaultPlan {
                crash_after_appends: Some(a),
                torn_keep_bytes: keep,
                flip: None,
                crash_on_atomic_write: None,
            };
            let out = run_crash_case(&s0, &script, plan, FlushPolicy::EveryN(group), None, &ctx);
            if out.crashed {
                // The durable prefix covers every fully flushed group and
                // at most the torn group's surviving records.
                assert!(
                    out.durable_ops >= a * group,
                    "{ctx}: {out:?} lost a flushed group",
                );
                assert!(
                    out.durable_ops <= out.attempted_ops,
                    "{ctx}: durable beyond attempts"
                );
                assert!(
                    out.acked_ops + 1 == out.attempted_ops,
                    "{ctx}: exactly the crashing op unacked"
                );
            } else {
                // Plan never fired; pending tail (script len not divisible
                // by the group) is lost with the process.
                assert_eq!(out.durable_ops, (SCRIPT_LEN / group) * group, "{ctx}");
            }
        }
    }
}

impl std::fmt::Debug for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "durable={} acked={} attempted={} crashed={} torn={:?}/{}",
            self.durable_ops,
            self.acked_ops,
            self.attempted_ops,
            self.crashed,
            self.torn_reason,
            self.torn_bytes
        )
    }
}

/// Explicit flush policy: nothing is durable until `flush()` (or a
/// checkpoint); a crash loses exactly the unflushed suffix.
#[test]
fn explicit_policy_loses_unflushed_suffix() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xEE11);
    for flush_at in [0usize, 5, SCRIPT_LEN] {
        let disk = MemStorage::new();
        let seed_db = Database::load_from_string(&s0).unwrap();
        let mut dd = DurableDatabase::create(
            FaultyStorage::new(disk.clone(), FaultPlan::none()),
            seed_db,
            FlushPolicy::Explicit,
        )
        .unwrap();
        for (i, op) in script.iter().enumerate() {
            apply_durable(&mut dd, op).unwrap();
            if i + 1 == flush_at {
                dd.flush().unwrap();
            }
        }
        drop(dd); // crash with the suffix only in memory
        let ctx = format!("explicit policy, flushed after {flush_at}");
        let recovered = DurableDatabase::open(disk).unwrap();
        let report = recovered.recovery_report();
        let m = (report.checkpoint_lsn + report.records_replayed) as usize;
        assert_eq!(m, flush_at, "{ctx}");
        assert_equivalent(&recovered, &oracle_at(&s0, &script, flush_at), &ctx);
    }
}

/// Crashes at every point around a mid-script checkpoint: while writing
/// the snapshot (old checkpoint + full log recover), while writing the
/// manifest (new snapshot's own LSN governs — no double replay), and at
/// every append before/after.
#[test]
fn crash_around_mid_script_checkpoint() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xC4E7);
    let ckpt_at = SCRIPT_LEN / 2;

    // Atomic-write failpoints. Create consumes atomic writes 0 and 1;
    // the mid-script checkpoint consumes 2 (snapshot) and 3 (manifest).
    for atomic_n in [2usize, 3] {
        let plan = FaultPlan {
            crash_on_atomic_write: Some(atomic_n),
            ..FaultPlan::default()
        };
        let ctx = format!("crash on atomic write {atomic_n} during checkpoint");
        let out = run_crash_case(
            &s0,
            &script,
            plan,
            FlushPolicy::EveryRecord,
            Some(ckpt_at),
            &ctx,
        );
        assert!(out.crashed, "{ctx}");
        // Whichever file the crash hit, every op logged before the
        // checkpoint attempt is durable — no more, no less.
        assert_eq!(out.durable_ops, ckpt_at, "{ctx}");
    }

    // Create-time failpoints: atomic writes 0 (snapshot) and 1 (manifest).
    for atomic_n in [0usize, 1] {
        let plan = FaultPlan {
            crash_on_atomic_write: Some(atomic_n),
            ..FaultPlan::default()
        };
        let ctx = format!("crash on atomic write {atomic_n} during create");
        let out = run_crash_case(&s0, &script, plan, FlushPolicy::EveryRecord, None, &ctx);
        assert!(out.crashed, "{ctx}");
        assert_eq!(out.durable_ops, 0, "{ctx}");
    }

    // Append crashes across the checkpoint boundary: before it the full
    // log recovers; after it the checkpoint plus the short tail does.
    for n in 0..=SCRIPT_LEN {
        let ctx = format!("checkpoint at {ckpt_at}, clean crash at append {n}");
        let out = run_crash_case(
            &s0,
            &script,
            FaultPlan::crash_at_append(n),
            FlushPolicy::EveryRecord,
            Some(ckpt_at),
            &ctx,
        );
        assert_eq!(out.durable_ops, n.min(SCRIPT_LEN), "{ctx}");
    }
}

/// No crash at all: a checkpointed database reopens with zero replay,
/// and a non-checkpointed one replays its whole log — both equivalent to
/// the full-script oracle.
#[test]
fn clean_shutdown_and_reopen() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xC1EA);
    let oracle = oracle_at(&s0, &script, SCRIPT_LEN);

    for final_checkpoint in [false, true] {
        let disk = MemStorage::new();
        let seed_db = Database::load_from_string(&s0).unwrap();
        let mut dd =
            DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
        for op in &script {
            apply_durable(&mut dd, op).unwrap();
        }
        if final_checkpoint {
            dd.checkpoint().unwrap();
        }
        // The live session and the oracle agree even before any reboot.
        assert_equivalent(&dd, &oracle, "live session");
        drop(dd);

        let recovered = DurableDatabase::open(disk).unwrap();
        let report = recovered.recovery_report();
        if final_checkpoint {
            assert_eq!(report.records_replayed, 0, "checkpoint covers everything");
            assert_eq!(report.checkpoint_lsn, SCRIPT_LEN as u64);
        } else {
            assert_eq!(
                report.records_replayed, SCRIPT_LEN as u64,
                "whole log replays"
            );
        }
        assert_equivalent(
            &recovered,
            &oracle,
            &format!("clean reopen, checkpoint={final_checkpoint}"),
        );
    }
}
