//! Metric-coverage audit: every counter, gauge, and histogram the
//! durable layer emits anywhere in its sources must (a) be declared in
//! the registry below — so adding an emit site without updating the
//! registry fails loudly — and (b) actually show up in the rendered
//! `\stats` table and the Prometheus exposition after a workload that
//! exercises the subsystem.  No invisible metrics, no stale registry.

mod common;

use asr_core::Database;
use asr_durable::{
    replicate, ChaosProfile, DurableDatabase, DurableError, FaultyChannel, FlushPolicy,
    LosslessChannel, MemStorage, ReplicaApplier, ReplicateOptions,
};
use common::*;

/// Every metric `crates/durable` emits, by name.  The source audit below
/// keeps this list honest in both directions.
const WAL_COUNTERS: &[&str] = &[
    "wal.records",
    "wal.flushes",
    "wal.bytes",
    "wal.checkpoints",
    "wal.checkpoints.delta",
    "wal.segments.sealed",
    "wal.segments.pruned",
    "wal.recovery.records_replayed",
    "wal.recovery.records_skipped",
    "wal.recovery.torn_bytes",
    "wal.group.commits",
    "wal.group.records",
    "wal.group.fsyncs",
    "wal.group.deadline_flushes",
    "wal.ship.rounds",
    "wal.ship.deliveries",
    "wal.ship.records",
    "wal.ship.nacks",
    "wal.ship.backoff_ticks",
];
const WAL_GAUGES: &[&str] = &[
    "wal.checkpoint_lsn",
    "wal.checkpoint.chain_depth",
    "wal.segments.count",
    "wal.segments.bytes",
    "wal.ship.replica_lsn",
    "wal.group.pending_sessions",
];
const WAL_HISTOGRAMS: &[&str] = &[
    "wal.ship.bytes_per_delivery",
    "wal.ship.frames_per_round",
    "wal.ship.backoff_delay",
    "wal.group.batch_sessions",
    "wal.group.batch_records",
    "wal.group.commit_ms",
];
const REPLICA_GAUGES: &[&str] = &["replica.applied_lsn", "replica.gaps", "replica.corrupt"];

/// Extract the first string literal argument of every `method(` call in
/// `source`, tolerating line breaks between the paren and the literal.
fn emitted_names(source: &str, method: &str) -> Vec<String> {
    let needle = format!("{method}(");
    let mut out = Vec::new();
    let mut rest = source;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        if let Some(lit) = trimmed.strip_prefix('"') {
            if let Some(end) = lit.find('"') {
                out.push(lit[..end].to_string());
            }
        }
    }
    out
}

/// The registry above and the emit sites in the sources must agree
/// exactly — both directions.
#[test]
fn registry_matches_every_emit_site_in_the_sources() {
    let sources = concat!(
        include_str!("../src/db.rs"),
        include_str!("../src/ship.rs"),
        include_str!("../src/replica.rs"),
        include_str!("../src/wal.rs"),
        include_str!("../src/segment.rs"),
        include_str!("../src/fault.rs"),
    );

    let check = |method: &str, expected: Vec<&str>| {
        let mut emitted = emitted_names(sources, method);
        emitted.sort_unstable();
        emitted.dedup();
        let mut expected: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
        expected.sort_unstable();
        assert_eq!(
            emitted, expected,
            "`{method}` emit sites diverged from the registry"
        );
    };
    check("inc_counter", WAL_COUNTERS.to_vec());
    check(
        "set_gauge",
        WAL_GAUGES.iter().chain(REPLICA_GAUGES).copied().collect(),
    );
    check("observe", WAL_HISTOGRAMS.to_vec());
}

fn assert_all_present(names: &[&str], table: &str, prometheus: &str, ctx: &str) {
    for name in names {
        assert!(
            table.contains(name),
            "{ctx}: `{name}` missing from \\stats table"
        );
        assert!(
            prometheus.contains(&name.replace('.', "_")),
            "{ctx}: `{name}` missing from Prometheus exposition"
        );
    }
}

/// Drive checkpointing, rotation, pruning, replication (converging and
/// stalling), and crash-free recovery; every registered metric must then
/// be visible in both output formats on the tracer that owns it.
#[test]
fn every_registered_metric_is_exposed_after_a_full_workload() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xAD17);
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(&s0).unwrap();
    let mut primary =
        DurableDatabase::create(disk.clone(), seed_db, FlushPolicy::EveryRecord).unwrap();
    primary.set_segment_threshold(192); // force rotations
    let half = SCRIPT_LEN / 2;
    for op in script.iter().take(half) {
        apply_durable(&mut primary, op).unwrap();
    }
    // The group-commit pipeline: two submitted commits share one fsync,
    // populating the wal.group.* counters, gauge, and histograms.
    primary.enable_group_commit(2);
    primary.instantiate("BasePart").unwrap();
    assert!(!primary.submit_commit().unwrap());
    primary.instantiate("BasePart").unwrap();
    assert!(primary.submit_commit().unwrap());
    // A deadline of one op flushes a partial group on its own,
    // populating the deadline-flush counter.
    primary.set_group_commit_deadline(Some(1));
    primary.instantiate("BasePart").unwrap();
    assert!(primary.submit_commit().unwrap());
    primary.disable_group_commit().unwrap();
    primary.checkpoint().unwrap();
    for op in script.iter().skip(half) {
        apply_durable(&mut primary, op).unwrap();
    }
    // A delta checkpoint populates the delta counter and chain-depth
    // gauge (and recovery below walks the chain).  The script may have
    // dirtied the ASR design (which falls back to a full checkpoint), so
    // follow with a plain object op and a second delta — that one is
    // guaranteed to take the delta path.
    primary.checkpoint_delta().unwrap();
    primary.instantiate("BasePart").unwrap();
    assert!(primary.checkpoint_delta().unwrap().is_delta());
    primary.prune_segments().unwrap();

    // A converging replication populates the shipping counters and the
    // replica gauges ...
    let mut applier = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    replicate(
        &primary,
        &mut applier,
        &mut channel,
        &ReplicateOptions::default(),
    )
    .unwrap();
    // ... and a blackout stall populates the backoff histogram.
    let mut blackhole = ReplicaApplier::new();
    let mut blackout = FaultyChannel::new(ChaosProfile::blackout(), 7);
    let err = replicate(
        &primary,
        &mut blackhole,
        &mut blackout,
        &ReplicateOptions {
            max_rounds: 4,
            ..ReplicateOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, DurableError::ReplicationStalled(_)));

    let metrics = primary.database().tracer().metrics();
    let table = metrics.render_table();
    let prometheus = metrics.to_prometheus();
    let primary_side: Vec<&str> = WAL_COUNTERS
        .iter()
        .chain(WAL_GAUGES)
        .chain(WAL_HISTOGRAMS)
        .copied()
        .filter(|n| !n.starts_with("wal.recovery."))
        .collect();
    assert_all_present(&primary_side, &table, &prometheus, "primary");

    let replica_db = applier.db().expect("bootstrapped");
    let rmetrics = replica_db.tracer().metrics();
    assert_all_present(
        REPLICA_GAUGES,
        &rmetrics.render_table(),
        &rmetrics.to_prometheus(),
        "replica",
    );

    // Recovery counters live on the rebooted database's tracer.
    drop(primary);
    let recovered = DurableDatabase::open(disk).unwrap();
    let rec_metrics = recovered.database().tracer().metrics();
    let recovery_side: Vec<&str> = WAL_COUNTERS
        .iter()
        .copied()
        .filter(|n| n.starts_with("wal.recovery."))
        .collect();
    assert_all_present(
        &recovery_side,
        &rec_metrics.render_table(),
        &rec_metrics.to_prometheus(),
        "recovered",
    );
}
