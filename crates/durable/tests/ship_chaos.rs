//! End-to-end log-shipping chaos fuzzing: a primary built from a random
//! effective script ships its history to a [`ReplicaApplier`] over a
//! [`FaultyChannel`] that drops, duplicates, reorders, truncates, and
//! bit-flips deliveries on a seeded schedule.  Every schedule must end
//! in one of exactly two states:
//!
//! * **converged** — the replica's snapshot serialization is *byte
//!   identical* to the primary's, or
//! * **stalled loudly** — [`DurableError::ReplicationStalled`], with the
//!   replica still on a valid prefix of the primary's history.
//!
//! Silent divergence — a replica that claims LSN `l` but differs from
//! the oracle at `l` — fails the run.

mod common;

use std::collections::BTreeMap;
use std::rc::Rc;

use asr_core::Database;
use asr_durable::{
    replicate, ChaosProfile, DurableDatabase, DurableError, FaultyChannel, FlushPolicy, LogShipper,
    LosslessChannel, MemStorage, ReplicaApplier, ReplicateOptions,
};
use asr_obs::FlightRecorder;
use common::*;

/// A primary with checkpoints and sealed segments, plus a live tail.
fn build_primary(
    s0: &str,
    script: &[Op],
    upto: usize,
    ckpt_at: Option<usize>,
) -> DurableDatabase<MemStorage> {
    let disk = MemStorage::new();
    let seed_db = Database::load_from_string(s0).unwrap();
    let mut dd = DurableDatabase::create(disk, seed_db, FlushPolicy::EveryRecord).unwrap();
    dd.set_segment_threshold(192);
    for (i, op) in script.iter().enumerate().take(upto) {
        apply_durable(&mut dd, op).unwrap();
        if ckpt_at == Some(i + 1) {
            dd.checkpoint().unwrap();
        }
    }
    dd
}

/// The replica must either match the primary byte for byte (converged)
/// or sit on an exact prefix of its history (stalled) — never elsewhere.
fn assert_replica_on_history(applier: &ReplicaApplier, s0: &str, script: &[Op], ctx: &str) {
    if !applier.is_bootstrapped() {
        return; // an empty replica trivially has not diverged
    }
    let lsn = applier.applied_lsn() as usize;
    assert!(lsn <= SCRIPT_LEN, "{ctx}: replica past the script");
    let oracle = oracle_at(s0, script, lsn);
    assert_eq!(
        applier.snapshot().unwrap(),
        oracle.save_to_string(),
        "{ctx}: replica at LSN {lsn} diverged from that prefix"
    );
}

/// A perfect channel converges in one round with zero NACKs, byte
/// identical to the primary.
#[test]
fn lossless_channel_converges_exactly() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x5417);
    let primary = build_primary(&s0, &script, SCRIPT_LEN, Some(SCRIPT_LEN / 2));

    let mut applier = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    let report = replicate(
        &primary,
        &mut applier,
        &mut channel,
        &ReplicateOptions::default(),
    )
    .unwrap();

    assert_eq!(report.converged_lsn, SCRIPT_LEN as u64);
    assert_eq!(report.gaps + report.corrupt, 0, "nothing to NACK");
    assert_eq!(report.backoff_ticks, 0, "no fruitless rounds");
    assert_eq!(
        applier.snapshot().unwrap(),
        primary.database().save_to_string(),
        "byte-identical convergence"
    );
    assert_replica_on_history(&applier, &s0, &script, "lossless");

    // The shipper agrees the replica is caught up.
    let shipper = LogShipper::new(primary.storage());
    assert_eq!(shipper.lag_bytes(applier.applied_lsn()).unwrap(), 0);
}

/// The chaos fuzzer proper: many seeded fault schedules, each of which
/// must converge byte-identically or stall with the typed error — and in
/// both cases the replica must be on the primary's history.
#[test]
fn seeded_chaos_schedules_converge_or_fail_loudly() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xC405);
    let primary = build_primary(&s0, &script, SCRIPT_LEN, Some(SCRIPT_LEN / 2));
    let opts = ReplicateOptions::default();

    let mut converged = 0usize;
    let mut stalled = 0usize;
    let mut artifact = String::new();
    for i in 0..32u64 {
        let seed = fuzz_seed() ^ (i.wrapping_mul(0x9E37_79B9));
        let profile = ChaosProfile::from_seed(seed);
        // Every schedule gets its own recorder, sized so nothing can be
        // evicted: each injected fault must appear as a typed event.
        let recorder = Rc::new(FlightRecorder::new(1 << 16));
        let mut channel = FaultyChannel::new(profile, seed).with_recorder(recorder.clone());
        let mut applier = ReplicaApplier::new();
        let ctx = format!("chaos seed {seed:#x} ({profile:?})");
        match replicate(&primary, &mut applier, &mut channel, &opts) {
            Ok(report) => {
                converged += 1;
                assert_eq!(report.converged_lsn, SCRIPT_LEN as u64, "{ctx}");
                assert_eq!(
                    applier.snapshot().unwrap(),
                    primary.database().save_to_string(),
                    "{ctx}: converged but not byte-identical"
                );
                // NACK accounting is consistent: every gap/corrupt NACK
                // the pump counted is visible in the applier's status.
                let status = applier.status();
                assert_eq!(status.gaps, report.gaps, "{ctx}");
                assert_eq!(status.corrupt, report.corrupt, "{ctx}");
            }
            Err(DurableError::ReplicationStalled(msg)) => {
                stalled += 1;
                assert!(msg.contains("rounds"), "{ctx}: uninformative stall: {msg}");
            }
            Err(e) => panic!("{ctx}: unexpected error class: {e}"),
        }
        // Converged or stalled, the replica never leaves the history.
        assert_replica_on_history(&applier, &s0, &script, &ctx);

        // No silent injections: every fault the channel counted must be
        // visible as a typed `chaos.*` flight-recorder event.
        assert_eq!(recorder.dropped(), 0, "{ctx}: recorder sized too small");
        let mut events: BTreeMap<String, u64> = BTreeMap::new();
        for ev in recorder.tail(recorder.len()) {
            *events.entry(ev.record.name.clone()).or_insert(0) += 1;
        }
        let stats = channel.stats();
        for (event, injected) in [
            ("chaos.drop", stats.dropped),
            ("chaos.dup", stats.duplicated),
            ("chaos.reorder", stats.reordered),
            ("chaos.truncate", stats.truncated),
            ("chaos.flip", stats.flipped),
        ] {
            assert_eq!(
                events.get(event).copied().unwrap_or(0),
                injected,
                "{ctx}: `{event}` events must match the channel's count"
            );
        }
        artifact.push_str(&recorder.dump_jsonl());
    }
    // CI uploads the full fault timeline of the pinned-seed run as a
    // build artifact.
    if let Ok(path) = std::env::var("ASR_FLIGHTREC_OUT") {
        std::fs::write(&path, &artifact).expect("write flight-recorder artifact");
    }
    // The profile generator keeps fault rates below the stall-everything
    // regime; most schedules must actually converge for the fuzzer to be
    // exercising the happy recovery paths too.
    assert!(
        converged >= 16,
        "only {converged}/32 schedules converged ({stalled} stalled) — chaos too hostile to test convergence"
    );
}

/// A total blackout cannot converge and must say so with the typed
/// error, after backing off exponentially between fruitless rounds.
#[test]
fn blackout_stalls_with_typed_error() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xB1AC);
    let primary = build_primary(&s0, &script, SCRIPT_LEN, None);

    let mut applier = ReplicaApplier::new();
    let mut channel = FaultyChannel::new(ChaosProfile::blackout(), 1);
    let opts = ReplicateOptions {
        max_rounds: 10,
        ..ReplicateOptions::default()
    };
    let err = replicate(&primary, &mut applier, &mut channel, &opts).unwrap_err();
    assert!(
        matches!(err, DurableError::ReplicationStalled(_)),
        "got {err}"
    );
    assert!(!applier.is_bootstrapped(), "nothing ever arrived");
    assert_eq!(channel.stats().dropped, channel.stats().sent);
}

/// Incremental catch-up: after converging once, new primary writes ship
/// as frames from the replica's cursor — no re-bootstrap, no re-shipped
/// checkpoint.
#[test]
fn incremental_catchup_reuses_the_cursor() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x14C0);
    let half = SCRIPT_LEN / 2;
    let mut primary = build_primary(&s0, &script, half, None);
    let opts = ReplicateOptions::default();

    let mut applier = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    replicate(&primary, &mut applier, &mut channel, &opts).unwrap();
    assert_eq!(applier.applied_lsn(), half as u64);
    assert_eq!(applier.status().bootstraps, 1);

    for op in &script[half..] {
        apply_durable(&mut primary, op).unwrap();
    }
    let report = replicate(&primary, &mut applier, &mut channel, &opts).unwrap();
    assert_eq!(report.converged_lsn, SCRIPT_LEN as u64);
    assert_eq!(
        applier.status().bootstraps,
        1,
        "catch-up must not re-seed from a checkpoint"
    );
    assert_eq!(
        applier.snapshot().unwrap(),
        primary.database().save_to_string()
    );
    assert_replica_on_history(&applier, &s0, &script, "incremental catch-up");
}

/// When the history a lagging replica needs has been pruned away, the
/// shipper falls back to re-seeding it from the checkpoint — convergence
/// survives retention.
#[test]
fn pruned_history_forces_a_rebootstrap() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x94E0);
    let half = SCRIPT_LEN / 2;
    let mut primary = build_primary(&s0, &script, half, None);
    let opts = ReplicateOptions::default();

    // Converge a replica on the first half.
    let mut applier = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    replicate(&primary, &mut applier, &mut channel, &opts).unwrap();
    let first_lsn = applier.applied_lsn();
    assert_eq!(first_lsn, half as u64);

    // The primary moves on, checkpoints, and prunes its history.
    for op in &script[half..] {
        apply_durable(&mut primary, op).unwrap();
    }
    primary.checkpoint().unwrap();
    primary.prune_segments().unwrap();

    // Catch-up now *must* go through a fresh checkpoint: the segments
    // holding LSNs first_lsn+1.. are gone.
    let report = replicate(&primary, &mut applier, &mut channel, &opts).unwrap();
    assert_eq!(report.converged_lsn, SCRIPT_LEN as u64);
    assert_eq!(
        applier.status().bootstraps,
        2,
        "pruned history must force a re-seed"
    );
    assert_eq!(
        applier.snapshot().unwrap(),
        primary.database().save_to_string()
    );
    assert_replica_on_history(&applier, &s0, &script, "post-prune catch-up");
}

// ----------------------------------------------------------------------
// Delta bootstrap (`Need::DeltaBootstrap`)
// ----------------------------------------------------------------------

/// A primary/replica pair poised for a delta re-seed: the replica is
/// converged and retains the full checkpoint at `base_lsn`; the primary
/// has moved on with plain object ops, taken a *delta* checkpoint, and
/// pruned the segments the replica would otherwise replay — so the next
/// catch-up must renegotiate.  Also returns per-LSN oracle snapshots
/// (index = LSN) so a stalled replica can be placed on the history.
fn stage_delta_reseed(
    s0: &str,
    script: &[Op],
    extra_ops: usize,
    tail_ops: usize,
) -> (DurableDatabase<MemStorage>, ReplicaApplier, Vec<String>) {
    let half = SCRIPT_LEN / 2;
    let mut primary = build_primary(s0, script, half, None);
    primary.checkpoint().unwrap(); // full base at LSN `half`

    let mut applier = ReplicaApplier::new();
    let mut lossless = LosslessChannel::new();
    replicate(
        &primary,
        &mut applier,
        &mut lossless,
        &ReplicateOptions::default(),
    )
    .unwrap();
    assert_eq!(applier.applied_lsn(), half as u64);

    // Advance with plain object creations (never design ops, so the
    // checkpoint below is guaranteed to take the delta path), then cut
    // the replica's replay history out from under it.
    for _ in 0..extra_ops {
        primary.instantiate("BasePart").unwrap();
    }
    assert!(
        primary.checkpoint_delta().unwrap().is_delta(),
        "plain object ops must yield a delta checkpoint"
    );
    primary.prune_segments().unwrap();
    // A live WAL tail past the delta checkpoint keeps frames in flight
    // alongside the delta deliveries (reordering fodder for the chaos
    // schedules).
    for _ in 0..tail_ops {
        primary.instantiate("BasePart").unwrap();
    }

    // Oracle snapshots at every LSN of this custom history.
    let mut oracle = Database::load_from_string(s0).unwrap();
    let mut oracles = vec![oracle.save_to_string()];
    for op in &script[..half] {
        apply_plain(&mut oracle, op);
        oracles.push(oracle.save_to_string());
    }
    for _ in 0..extra_ops + tail_ops {
        oracle.instantiate("BasePart").unwrap();
        oracles.push(oracle.save_to_string());
    }
    (primary, applier, oracles)
}

/// Converged or stalled, the replica must sit exactly on one of the
/// oracle snapshots for its claimed LSN.
fn assert_on_oracles(applier: &ReplicaApplier, oracles: &[String], ctx: &str) {
    if !applier.is_bootstrapped() {
        return;
    }
    let lsn = applier.applied_lsn() as usize;
    assert!(lsn < oracles.len(), "{ctx}: replica past the history");
    assert_eq!(
        applier.snapshot().unwrap(),
        oracles[lsn],
        "{ctx}: replica at LSN {lsn} diverged from that prefix"
    );
}

/// When the replica still retains the base checkpoint the primary's
/// delta chain grew from, a post-prune catch-up renegotiates
/// `Need::DeltaBootstrap` and ships only the delta — far fewer bytes
/// than the full snapshot — yet lands byte-identical.
#[test]
fn delta_bootstrap_ships_only_the_deltas() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xDE17);
    let (primary, mut applier, oracles) = stage_delta_reseed(&s0, &script, 4, 2);

    let full_len = primary.database().save_to_string().len() as u64;
    let received_before = applier.status().bytes_received;
    let mut channel = LosslessChannel::new();
    let report = replicate(
        &primary,
        &mut applier,
        &mut channel,
        &ReplicateOptions::default(),
    )
    .unwrap();

    assert_eq!(report.converged_lsn as usize, oracles.len() - 1);
    assert_eq!(
        applier.snapshot().unwrap(),
        primary.database().save_to_string(),
        "delta re-seed must converge byte-identically"
    );
    let status = applier.status();
    assert_eq!(status.bootstraps, 2, "exactly one re-seed");
    assert_eq!(
        status.delta_bootstraps, 1,
        "the re-seed must go through the delta path, not a full checkpoint"
    );
    let received = status.bytes_received - received_before;
    assert!(
        received < full_len,
        "delta catch-up shipped {received} bytes, >= the {full_len}-byte full snapshot"
    );
    // The renegotiation is visible on the primary's flight recorder.
    let tail = primary.flight_recorder().tail_summaries(64).join(" | ");
    assert!(
        tail.contains("ship.reseed"),
        "no ship.reseed event in flight tail: {tail}"
    );
    assert_on_oracles(&applier, &oracles, "delta re-seed");
}

/// A replica whose retained base has left the primary's lineage (the
/// primary re-checkpointed *fully* since) still converges — the shipper
/// detects the divergence and falls back to the full chain.
#[test]
fn stale_base_falls_back_to_full_reseed() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x5A1E);
    let (mut primary, mut applier, _) = stage_delta_reseed(&s0, &script, 4, 0);

    // A *full* checkpoint rebases the lineage away from the replica's
    // retained base, and pruning unpins that base's archive.
    primary.instantiate("BasePart").unwrap();
    primary.checkpoint().unwrap();
    primary.prune_segments().unwrap();

    let mut channel = LosslessChannel::new();
    replicate(
        &primary,
        &mut applier,
        &mut channel,
        &ReplicateOptions::default(),
    )
    .unwrap();
    let status = applier.status();
    assert_eq!(
        status.delta_bootstraps, 0,
        "a base outside the lineage must not be patched"
    );
    assert_eq!(status.bootstraps, 2, "full re-seed instead");
    assert_eq!(
        applier.snapshot().unwrap(),
        primary.database().save_to_string()
    );
}

/// The chaos fuzzer over the delta-bootstrap path: 32 seeded schedules
/// drop, duplicate, reorder, truncate, and bit-flip the *delta*
/// deliveries (and the tail frames around them).  Every schedule must
/// converge byte-identically or stall with the typed error; every
/// injected fault must surface as a typed flight-recorder event; and a
/// corrupted delta must be NACKed, never silently applied.
#[test]
fn delta_bootstrap_chaos_converges_or_fails_loudly() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0xDB07);
    let opts = ReplicateOptions::default();

    let mut converged = 0usize;
    let mut stalled = 0usize;
    let mut delta_reseeds = 0u64;
    for i in 0..32u64 {
        let seed = fuzz_seed() ^ 0xDE17A ^ (i.wrapping_mul(0x9E37_79B9));
        let (primary, mut applier, oracles) = stage_delta_reseed(&s0, &script, 4, 2);
        let profile = ChaosProfile::from_seed(seed);
        let recorder = Rc::new(FlightRecorder::new(1 << 16));
        let mut channel = FaultyChannel::new(profile, seed).with_recorder(recorder.clone());
        let ctx = format!("delta chaos seed {seed:#x} ({profile:?})");
        match replicate(&primary, &mut applier, &mut channel, &opts) {
            Ok(report) => {
                converged += 1;
                assert_eq!(report.converged_lsn as usize, oracles.len() - 1, "{ctx}");
                assert_eq!(
                    applier.snapshot().unwrap(),
                    primary.database().save_to_string(),
                    "{ctx}: converged but not byte-identical"
                );
            }
            Err(DurableError::ReplicationStalled(msg)) => {
                stalled += 1;
                assert!(msg.contains("rounds"), "{ctx}: uninformative stall: {msg}");
            }
            Err(e) => panic!("{ctx}: unexpected error class: {e}"),
        }
        // Converged or stalled, never silently diverged.
        assert_on_oracles(&applier, &oracles, &ctx);
        delta_reseeds += applier.status().delta_bootstraps;

        // Every injection must be a typed flight-recorder event.
        assert_eq!(recorder.dropped(), 0, "{ctx}: recorder sized too small");
        let mut events: BTreeMap<String, u64> = BTreeMap::new();
        for ev in recorder.tail(recorder.len()) {
            *events.entry(ev.record.name.clone()).or_insert(0) += 1;
        }
        let stats = channel.stats();
        for (event, injected) in [
            ("chaos.drop", stats.dropped),
            ("chaos.dup", stats.duplicated),
            ("chaos.reorder", stats.reordered),
            ("chaos.truncate", stats.truncated),
            ("chaos.flip", stats.flipped),
        ] {
            assert_eq!(
                events.get(event).copied().unwrap_or(0),
                injected,
                "{ctx}: `{event}` events must match the channel's count"
            );
        }
    }
    assert!(
        converged >= 16,
        "only {converged}/32 delta schedules converged ({stalled} stalled)"
    );
    assert!(
        delta_reseeds >= 16,
        "only {delta_reseeds} delta re-seeds across 32 schedules — \
         the chaos sweep is not actually exercising Need::DeltaBootstrap"
    );
}

/// Chaos against an *advancing* primary: converge, mutate, converge
/// again over the same faulty channel, several times.  Steady-state
/// replication under faults must track the moving tip.
#[test]
fn chaotic_steady_state_tracks_the_primary() {
    let s0 = seed_snapshot();
    let script = make_script(&s0, fuzz_seed() ^ 0x57EA);
    let chunk = SCRIPT_LEN / 4;
    let seed = fuzz_seed() ^ 0xD1CE;
    let mut primary = build_primary(&s0, &script, 0, None);
    // Moderate chaos: hostile enough to force NACK/retry cycles, mild
    // enough that each sync round budget suffices.
    let profile = ChaosProfile {
        drop_pct: 15,
        dup_pct: 15,
        reorder_pct: 15,
        truncate_pct: 10,
        flip_pct: 10,
    };
    let mut channel = FaultyChannel::new(profile, seed);
    let mut applier = ReplicaApplier::new();
    let opts = ReplicateOptions {
        max_rounds: 256,
        ..ReplicateOptions::default()
    };

    let mut applied = 0usize;
    for step in 0..4 {
        for op in &script[applied..applied + chunk] {
            apply_durable(&mut primary, op).unwrap();
        }
        applied += chunk;
        if step == 1 {
            primary.checkpoint().unwrap();
        }
        let ctx = format!("steady-state step {step}");
        match replicate(&primary, &mut applier, &mut channel, &opts) {
            Ok(report) => {
                assert_eq!(report.converged_lsn, applied as u64, "{ctx}");
                assert_eq!(
                    applier.snapshot().unwrap(),
                    primary.database().save_to_string(),
                    "{ctx}"
                );
            }
            Err(DurableError::ReplicationStalled(_)) => {
                // Permitted only as a loud stop; the replica must still be
                // on the history and a lossless retry must finish the job.
                assert_replica_on_history(&applier, &s0, &script, &ctx);
                let mut clean = LosslessChannel::new();
                replicate(&primary, &mut applier, &mut clean, &opts).unwrap();
                assert_eq!(
                    applier.snapshot().unwrap(),
                    primary.database().save_to_string(),
                    "{ctx}: lossless retry"
                );
            }
            Err(e) => panic!("{ctx}: unexpected error class: {e}"),
        }
        assert_replica_on_history(&applier, &s0, &script, &ctx);
    }
    assert_eq!(applier.applied_lsn(), SCRIPT_LEN as u64);
}
