//! The TCP front door: the same frames over real sockets.  One test
//! drives the nonblocking server single-threaded (loopback connect
//! completes without an accept); the other runs the server in a thread
//! and a full exactly-once [`WireClient`] on this side.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

use asr_durable::MemStorage;
use asr_net::{
    decode_frame, Request, RequestBody, ResponseBody, Transport, WireClient, WireMessage,
};
use asr_server::{ServerDb, TcpServer, TcpTransport};

#[test]
fn single_threaded_poll_serves_a_connection() {
    let mut db = asr_workload::company_database().db;
    let mut server = TcpServer::bind("127.0.0.1:0").expect("binds");
    let addr = server.local_addr().expect("addr");

    // Loopback connect completes against the listener backlog — no
    // accept needed yet.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    stream
        .write_all(
            &Request {
                id: 1,
                body: RequestBody::Ping,
            }
            .encode(),
        )
        .expect("writes");

    // Give the kernel a beat to move the bytes, then poll.
    let mut report = Default::default();
    for _ in 0..50 {
        report = server
            .poll(&mut ServerDb::<MemStorage>::Plain(&mut db))
            .expect("polls");
        if report.executed > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(report.executed, 1, "the ping must execute");
    assert_eq!(server.connection_count(), 1);

    let mut transport = TcpTransport::connect(&addr).expect("second connection");
    transport.send(
        Request {
            id: 1,
            body: RequestBody::ListAsrs,
        }
        .encode(),
    );
    let mut frame = None;
    for _ in 0..50 {
        server
            .poll(&mut ServerDb::<MemStorage>::Plain(&mut db))
            .expect("polls");
        if let Some(f) = transport.poll() {
            frame = Some(f);
            break;
        }
    }
    let frame = frame.expect("a response arrives");
    match decode_frame(&frame) {
        Some(WireMessage::Response(resp)) => {
            assert_eq!(resp.id, 1);
            assert!(matches!(resp.body, ResponseBody::Text(_)));
        }
        other => panic!("expected response, got {other:?}"),
    }
    assert_eq!(
        server.server().session_count(),
        2,
        "one session per connection"
    );
}

#[test]
fn threaded_client_round_trips_exactly_once() {
    let (addr_tx, addr_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        // The database lives entirely inside the serving thread (it is
        // deliberately not Send); only the bound address crosses over.
        let mut db = asr_workload::company_database().db;
        let mut server = TcpServer::bind("127.0.0.1:0").expect("binds");
        addr_tx
            .send(server.local_addr().expect("addr"))
            .expect("sends");
        let report = server
            .serve_until_shutdown(&mut ServerDb::<MemStorage>::Plain(&mut db))
            .expect("serves");
        (report, db.tracer().metrics().counter("server.tcp.accepts"))
    });

    let addr = addr_rx.recv().expect("server thread reports its address");
    let transport = TcpTransport::connect(&addr).expect("connects");
    let mut client = WireClient::new(transport);

    assert_eq!(
        client.call(RequestBody::Ping).expect("ping").body,
        ResponseBody::Ok
    );
    let resp = client
        .call(RequestBody::Query(
            "select d.Name from d in Division".to_string(),
        ))
        .expect("query");
    match resp.body {
        ResponseBody::Table { columns, rows } => {
            assert_eq!(columns, vec!["d.Name".to_string()]);
            assert_eq!(rows.len(), 3, "three divisions");
        }
        other => panic!("expected table, got {other:?}"),
    }
    assert_eq!(
        client.call(RequestBody::Shutdown).expect("shutdown").body,
        ResponseBody::Ok
    );

    let (report, accepts) = handle.join().expect("server thread exits cleanly");
    assert_eq!(report.executed, 3, "three requests, each exactly once");
    assert_eq!(accepts, 1, "one TCP accept");
}
