#![allow(dead_code)] // each test target uses a subset of these helpers

//! Shared staging for the serving tests: durable primaries over the
//! company example and over randomly decomposed generated chains.

use asr_core::{AsrConfig, AsrId, Database, Decomposition, Extension};
use asr_durable::{DurableDatabase, FlushPolicy, MemStorage};
use asr_gom::Oid;
use asr_workload::{generate, GeneratorSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The company example wrapped in a WAL-backed primary, with one full
/// ASR over the paper's three-step path.
pub fn company_primary() -> (DurableDatabase<MemStorage>, AsrId) {
    let ex = asr_workload::company_database();
    let mut db = ex.db;
    let m = ex.path.arity(false) - 1;
    let id = db
        .create_asr_on(
            "Division.Manufactures.Composition.Name",
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let durable =
        DurableDatabase::create(MemStorage::new(), db, FlushPolicy::EveryRecord).expect("creates");
    (durable, id)
}

/// A staged chain primary: a generated chain object base with one ASR
/// under a seed-derived extension and decomposition.
pub struct ChainPrimary {
    pub durable: DurableDatabase<MemStorage>,
    pub asr: AsrId,
    /// Path length `n` (spans run over `0..=n`).
    pub n: usize,
    /// Level-by-level object lists (span query starts/targets).
    pub levels: Vec<Vec<Oid>>,
}

/// Generate a chain database and decompose its ASR randomly — path
/// length, level populations, fan-outs, extension and cut points all
/// derive from `seed`.
pub fn stage_chain(seed: u64) -> ChainPrimary {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CA5E);
    let n = rng.gen_range(2usize..5);
    let counts: Vec<usize> = (0..=n).map(|_| rng.gen_range(5usize..13)).collect();
    let defined: Vec<usize> = counts[..n]
        .iter()
        .map(|&c| rng.gen_range(c.saturating_sub(2).max(1)..c + 1))
        .collect();
    let fan: Vec<usize> = (0..n).map(|_| rng.gen_range(1usize..4)).collect();
    let sizes: Vec<usize> = (0..=n).map(|_| rng.gen_range(64usize..257)).collect();
    let spec = GeneratorSpec {
        counts,
        defined,
        fan,
        sizes,
    };
    let g = generate(&spec, seed);
    let m = g.path.arity(false) - 1;
    let extension = match rng.gen_range(0usize..4) {
        0 => Extension::Canonical,
        1 => Extension::Full,
        2 => Extension::LeftComplete,
        _ => Extension::RightComplete,
    };
    // Random strictly increasing cut points 0 = k0 < … < kp = m.
    let mut cuts = vec![0];
    for k in 1..m {
        if rng.gen_range(0usize..100) < 50 {
            cuts.push(k);
        }
    }
    cuts.push(m);
    let decomposition = Decomposition::new(cuts).expect("cuts are valid");
    let mut db = g.db;
    let dotted = g.path.to_string();
    let asr = db
        .create_asr_on(
            &dotted,
            AsrConfig {
                extension,
                decomposition,
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let durable =
        DurableDatabase::create(MemStorage::new(), db, FlushPolicy::EveryRecord).expect("creates");
    ChainPrimary {
        durable,
        asr,
        n,
        levels: g.levels,
    }
}

/// Compare a sharded span answer against the single-node oracle for
/// every span of the chain and a bounded sample of starts and targets.
/// `label` contextualizes assertion failures.
pub fn assert_spans_match(
    oracle: &Database,
    sharded: &mut asr_server::ShardedDatabase,
    staged: &ChainPrimary,
    label: &str,
) {
    const SAMPLE: usize = 6;
    for i in 0..staged.n {
        for j in (i + 1)..=staged.n {
            for &start in staged.levels[i].iter().take(SAMPLE) {
                let want = oracle.forward(staged.asr, i, j, start).expect("oracle fw");
                let got = sharded
                    .forward(staged.asr, i, j, start)
                    .expect("sharded fw");
                assert_eq!(got, want, "{label}: forward Q_{{{i},{j}}} from {start:?}");
            }
            for &target in staged.levels[j].iter().take(SAMPLE) {
                let cell = asr_core::Cell::Oid(target);
                let want = oracle.backward(staged.asr, i, j, &cell).expect("oracle bw");
                let got = sharded
                    .backward(staged.asr, i, j, &cell)
                    .expect("sharded bw");
                assert_eq!(got, want, "{label}: backward Q_{{{i},{j}}} to {target:?}");
            }
        }
    }
}
