//! Metric-coverage audit for the serving subsystem, mirroring the
//! durable layer's: every `server.*` / `shard.*` metric emitted anywhere
//! in `crates/server`'s sources must be declared in the registry below,
//! and every registered metric must actually show up in the rendered
//! `\stats` table and the Prometheus exposition after a serving
//! workload.  (The per-request-kind counters `server.requests.<label>`
//! are emitted through a computed name and are deliberately outside the
//! literal-scan registry.)

mod common;

use asr_durable::{ChaosProfile, MemStorage};
use asr_net::{Request, RequestBody};
use asr_server::{NetServer, ServerDb, ShardedDatabase};
use common::*;

const SERVER_COUNTERS: &[&str] = &[
    "server.requests",
    "server.replays",
    "server.nacks",
    "server.stale_dropped",
    "server.errors",
    "server.tcp.accepts",
    "server.snapshot.reads",
    "server.snapshot.batches",
];
const SERVER_GAUGES: &[&str] = &["server.snapshot.epoch"];
const SHARD_COUNTERS: &[&str] = &[
    "shard.place.rows",
    "shard.reseeds",
    "shard.scatter.broadcasts",
    "shard.scatter.queries",
    "shard.scatter.rows",
    "shard.fault.crashes",
    "shard.fault.stalls",
    "shard.health.suspects",
    "shard.health.downs",
    "shard.health.degraded_reads",
    "shard.health.ticks",
    "shard.health.reseed_attempts",
    "shard.health.reseed_failures",
    "shard.health.recoveries",
];
const SHARD_GAUGES: &[&str] = &["shard.count", "shard.health.up"];
const HISTOGRAMS: &[&str] = &[
    "server.request.pages",
    "server.snapshot.batch_pages",
    "shard.scatter.pages",
    "shard.health.ticks_to_recover",
];

/// Extract the first string literal argument of every `method(` call in
/// `source` (computed names are skipped by construction).
fn emitted_names(source: &str, method: &str) -> Vec<String> {
    let needle = format!("{method}(");
    let mut out = Vec::new();
    let mut rest = source;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        if let Some(lit) = trimmed.strip_prefix('"') {
            if let Some(end) = lit.find('"') {
                out.push(lit[..end].to_string());
            }
        }
    }
    out
}

#[test]
fn registry_matches_every_emit_site_in_the_sources() {
    let sources = concat!(
        include_str!("../src/exec.rs"),
        include_str!("../src/session.rs"),
        include_str!("../src/shard.rs"),
        include_str!("../src/tcp.rs"),
    );
    let check = |method: &str, expected: Vec<&str>| {
        let mut emitted = emitted_names(sources, method);
        emitted.sort_unstable();
        emitted.dedup();
        let mut expected: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
        expected.sort_unstable();
        assert_eq!(
            emitted, expected,
            "`{method}` emit sites diverged from the registry"
        );
    };
    check(
        "inc_counter",
        SERVER_COUNTERS
            .iter()
            .chain(SHARD_COUNTERS)
            .copied()
            .collect(),
    );
    check(
        "set_gauge",
        SERVER_GAUGES.iter().chain(SHARD_GAUGES).copied().collect(),
    );
    check("observe", HISTOGRAMS.to_vec());
}

fn assert_all_present(names: &[&str], table: &str, prometheus: &str, ctx: &str) {
    for name in names {
        assert!(
            table.contains(name),
            "{ctx}: `{name}` missing from \\stats table"
        );
        assert!(
            prometheus.contains(&name.replace('.', "_")),
            "{ctx}: `{name}` missing from Prometheus exposition"
        );
    }
}

/// Drive a session through every accounting path (execute, replay,
/// NACK, stale drop, error) plus a sharded query and a reseed; every
/// registered metric must then be visible on the tracer that owns it.
#[test]
fn every_registered_metric_is_exposed_after_a_serving_workload() {
    // server.* metrics (except tcp) land on the served database.
    let mut db = asr_workload::company_database().db;
    let mut server = NetServer::new();
    let sid = server.open_session();
    let (mut rx, mut tx) = (
        asr_durable::LosslessChannel::new(),
        asr_durable::LosslessChannel::new(),
    );
    use asr_durable::Channel;
    let fresh = Request {
        id: 1,
        body: RequestBody::Ping,
    }
    .encode();
    rx.send(fresh.clone());
    rx.send(fresh.clone()); // duplicate -> replay
    let mut damaged = fresh.clone();
    let len = damaged.len();
    damaged[len - 1] ^= 1;
    rx.send(damaged); // -> NACK
    rx.send(
        Request {
            id: 2,
            body: RequestBody::Query("select nonsense".to_string()),
        }
        .encode(),
    ); // -> error
    rx.send(fresh); // id 1 again, now stale -> drop
    server.pump_session(
        sid,
        &mut ServerDb::<MemStorage>::Plain(&mut db),
        &mut rx,
        &mut tx,
    );
    // server.snapshot.*: a parallel pump whose two sessions' read
    // prefixes ride one pinned snapshot on the worker pool.
    let sid2 = server.open_session();
    let (mut rx2, mut tx2) = (
        asr_durable::LosslessChannel::new(),
        asr_durable::LosslessChannel::new(),
    );
    rx.send(
        Request {
            id: 3,
            body: RequestBody::Ping,
        }
        .encode(),
    );
    rx2.send(
        Request {
            id: 1,
            body: RequestBody::Ping,
        }
        .encode(),
    );
    let mut sessions: Vec<(usize, &mut dyn Channel, &mut dyn Channel)> =
        vec![(sid, &mut rx, &mut tx), (sid2, &mut rx2, &mut tx2)];
    server.pump_sessions_parallel(
        &mut ServerDb::<MemStorage>::Plain(&mut db),
        &mut sessions,
        2,
    );

    // server.tcp.accepts: a real loopback accept on the same tracer.
    let mut tcp = asr_server::TcpServer::bind("127.0.0.1:0").expect("binds");
    let _conn = std::net::TcpStream::connect(tcp.local_addr().expect("addr")).expect("connects");
    for _ in 0..50 {
        tcp.poll(&mut ServerDb::<MemStorage>::Plain(&mut db))
            .expect("polls");
        if db.tracer().metrics().counter("server.tcp.accepts") > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let metrics = db.tracer().metrics();
    assert_all_present(
        SERVER_COUNTERS,
        &metrics.render_table(),
        &metrics.to_prometheus(),
        "served database",
    );
    assert_all_present(
        SERVER_GAUGES,
        &metrics.render_table(),
        &metrics.to_prometheus(),
        "served database",
    );
    assert_all_present(
        &["server.request.pages", "server.snapshot.batch_pages"],
        &metrics.render_table(),
        &metrics.to_prometheus(),
        "served database",
    );

    // shard.* metrics land on the coordinator's catalog.
    let (primary, _) = company_primary();
    let mut sharded =
        ShardedDatabase::from_primary(&primary, 2, Some((ChaosProfile::from_seed(3), 3)))
            .expect("seeds");
    sharded
        .query(r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#)
        .expect("query");
    sharded.reseed(&primary).expect("reseed");
    // shard.fault.* / shard.health.*: crash one shard (with a crash
    // during its reseed, for the failure counter), stall the other, then
    // let the tick loop heal the fleet.  The stock 64-attempt deadline
    // stays: these faults swallow polls outright, so they miss any
    // budget, while the chaotic-but-alive links keep making it.
    sharded.set_fault_plan(
        0,
        asr_server::ShardFaultPlan {
            crash_at_op: Some(1),
            reseed_crashes: 1,
            ..asr_server::ShardFaultPlan::default()
        },
    );
    sharded.set_fault_plan(
        1,
        asr_server::ShardFaultPlan {
            stall_at_op: Some(1),
            // The node has served polls already; an unbounded window
            // guarantees the stall engages on its very next poll.
            stall_ops: u64::MAX,
            ..asr_server::ShardFaultPlan::default()
        },
    );
    for _ in 0..3 {
        // Both shards may be out at once; degraded/unavailable answers
        // are fine here — the ticks drive every health transition.
        let _ = sharded.query(
            r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#,
        );
        sharded.tick(&primary);
    }
    for _ in 0..8 {
        sharded.tick(&primary);
    }
    assert!(sharded.all_up(), "tick loop must heal the faulted fleet");
    let metrics = sharded.catalog().tracer().metrics();
    assert_all_present(
        SHARD_COUNTERS,
        &metrics.render_table(),
        &metrics.to_prometheus(),
        "coordinator catalog",
    );
    assert_all_present(
        SHARD_GAUGES,
        &metrics.render_table(),
        &metrics.to_prometheus(),
        "coordinator catalog",
    );
    assert_all_present(
        &["shard.scatter.pages"],
        &metrics.render_table(),
        &metrics.to_prometheus(),
        "coordinator catalog",
    );
}
