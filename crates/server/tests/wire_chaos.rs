//! Wire-protocol chaos fuzz (the end-to-end integrity contract): a
//! client driving a full request script over damaged channels must see
//! every request executed **exactly once** — damaged frames are
//! CRC-detected and NACKed, duplicates replay the cached response,
//! drops are resent after backoff — and the served database must end
//! bit-identical to an oracle that executed the same script directly.
//!
//! Single-fault legs pin the accounting *exactly* to [`ChannelStats`]:
//! with only bit-flips armed on the request channel, every flipped
//! frame is delivered, fails the CRC, and NACKs — so
//! `server.nacks == flipped`, no slack.

mod common;

use asr_core::{AsrConfig, Database, Decomposition, Extension};
use asr_durable::{Channel, ChaosProfile, FaultyChannel, MemStorage};
use asr_gom::Value;
use asr_net::{RequestBody, ResponseBody, Transport, WireClient};
use asr_server::{NetServer, ServerDb};

/// An in-process served database behind a chaotic request/response
/// channel pair — the test-side twin of a shard node.
struct ChaosServer {
    db: Database,
    server: NetServer,
    sid: usize,
    inbox: FaultyChannel,
    outbox: FaultyChannel,
}

impl ChaosServer {
    fn new(db: Database, rx_profile: ChaosProfile, tx_profile: ChaosProfile, seed: u64) -> Self {
        let mut server = NetServer::new();
        let sid = server.open_session();
        ChaosServer {
            db,
            server,
            sid,
            inbox: FaultyChannel::new(rx_profile, seed),
            outbox: FaultyChannel::new(tx_profile, seed.wrapping_add(1)),
        }
    }
}

impl Transport for ChaosServer {
    fn send(&mut self, frame: Vec<u8>) {
        self.inbox.send(frame);
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        let mut view = ServerDb::<MemStorage>::Plain(&mut self.db);
        self.server
            .pump_session(self.sid, &mut view, &mut self.inbox, &mut self.outbox);
        self.outbox.recv()
    }
}

/// The request script: every request kind that mutates or observes
/// state, ending in a shutdown.  Returns the bodies plus the oracle
/// database after executing the same operations directly.
fn script_and_oracle() -> (Vec<RequestBody>, Database) {
    let ex = asr_workload::company_database();
    let mut oracle = ex.db;
    let asr_path =
        asr_gom::PathExpression::parse(oracle.base().schema(), "Division.Manufactures.Composition")
            .expect("path parses");
    let m = asr_path.arity(false) - 1;

    // The oracle executes the same logical operations the wire script
    // will request, in the same order.
    let new_part = oracle.instantiate("BasePart").expect("instantiate");
    oracle
        .set_attribute(new_part, "Name", Value::string("Widget"))
        .expect("set");
    let product = oracle
        .base()
        .objects()
        .find(|o| o.attribute("Name") == &Value::string("560 SEC"))
        .map(|o| o.oid)
        .expect("560 SEC product exists");
    oracle
        .insert_into_attr_set(product, "Composition", Value::Ref(new_part))
        .expect("insert");
    oracle
        .create_asr_on(
            "Division.Manufactures.Composition",
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    oracle.bind_variable("threshold", Value::decimal(1, 0));

    let query =
        r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;
    let script = vec![
        RequestBody::Ping,
        RequestBody::Instantiate {
            type_name: "BasePart".to_string(),
        },
        RequestBody::SetAttr {
            owner: new_part,
            attr: "Name".to_string(),
            value: Value::string("Widget"),
        },
        RequestBody::InsertIntoAttrSet {
            owner: product,
            attr: "Composition".to_string(),
            elem: Value::Ref(new_part),
        },
        RequestBody::CreateAsr {
            dotted: "Division.Manufactures.Composition".to_string(),
            extension: "full".to_string(),
            cuts: Vec::new(),
        },
        RequestBody::BindVar {
            name: "threshold".to_string(),
            value: Value::decimal(1, 0),
        },
        RequestBody::Query(query.to_string()),
        RequestBody::Analyze(query.to_string()),
        RequestBody::ListAsrs,
        RequestBody::Stats,
        // A request-level error (WAL off on a plain database): the
        // session must survive and stay exactly-once.
        RequestBody::Checkpoint { delta: false },
        RequestBody::ShardStatus,
        RequestBody::Shutdown,
    ];
    (script, oracle)
}

/// Drive the script through a chaotic server; panic on any exhausted
/// link.  Returns the response bodies.
fn drive(client: &mut WireClient<ChaosServer>, script: &[RequestBody]) -> Vec<ResponseBody> {
    script
        .iter()
        .map(|body| {
            client
                .call(body.clone())
                .expect("retry budget survives the profile")
                .body
        })
        .collect()
}

fn assert_outcome_matches_oracle(responses: &[ResponseBody], oracle: &Database) {
    // Spot-check semantic responses.
    assert_eq!(responses[0], ResponseBody::Ok, "ping");
    assert!(
        matches!(responses[1], ResponseBody::Id(_)),
        "instantiate returns the oid"
    );
    match &responses[6] {
        ResponseBody::Table { rows, .. } => {
            let want = asr_oql::execute(oracle,
                r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#)
                .expect("oracle query");
            assert_eq!(rows, &want.rows, "query rows match the oracle");
        }
        other => panic!("expected table, got {other:?}"),
    }
    assert!(
        matches!(&responses[10], ResponseBody::Err(msg) if msg.contains("WAL is off")),
        "checkpoint on a plain database is a request error"
    );
}

/// Flip-only on the request channel: every flipped frame is delivered,
/// CRC-caught and NACKed — the counters must match exactly.
#[test]
fn flip_only_request_damage_is_all_nacked() {
    let (script, oracle) = script_and_oracle();
    let rx_profile = ChaosProfile {
        flip_pct: 40,
        ..ChaosProfile::default()
    };
    let server = ChaosServer::new(
        asr_workload::company_database().db,
        rx_profile,
        ChaosProfile::default(),
        0xF11E,
    );
    let mut client = WireClient::new(server);
    let responses = drive(&mut client, &script);
    assert_outcome_matches_oracle(&responses, &oracle);

    let node = client.transport();
    let flipped = node.inbox.stats().flipped;
    let nacks = node.db.tracer().metrics().counter("server.nacks");
    assert!(flipped > 0, "the profile must actually flip something");
    assert_eq!(
        nacks, flipped,
        "every flipped request frame must be CRC-detected and NACKed"
    );
    // The response channel is lossless, so the client saw every NACK.
    assert_eq!(client.stats().nacks, nacks);
    assert_eq!(
        node.server.requests_executed(),
        script.len() as u64,
        "exactly-once execution"
    );
    assert_eq!(node.db.save_to_string(), oracle.save_to_string());
}

/// Truncate-only on the request channel: same exact accounting.
#[test]
fn truncate_only_request_damage_is_all_nacked() {
    let (script, oracle) = script_and_oracle();
    let rx_profile = ChaosProfile {
        truncate_pct: 35,
        ..ChaosProfile::default()
    };
    let server = ChaosServer::new(
        asr_workload::company_database().db,
        rx_profile,
        ChaosProfile::default(),
        0x7121C,
    );
    let mut client = WireClient::new(server);
    let responses = drive(&mut client, &script);
    assert_outcome_matches_oracle(&responses, &oracle);
    let node = client.transport();
    let truncated = node.inbox.stats().truncated;
    assert!(truncated > 0);
    assert_eq!(
        node.db.tracer().metrics().counter("server.nacks"),
        truncated
    );
    assert_eq!(node.server.requests_executed(), script.len() as u64);
    assert_eq!(node.db.save_to_string(), oracle.save_to_string());
}

/// Flip-only on the *response* channel: every flipped response frame is
/// delivered and counted damaged by the client, which resends; the
/// server replays from cache — never re-executes.
#[test]
fn flip_only_response_damage_is_all_detected_by_the_client() {
    let (script, oracle) = script_and_oracle();
    let tx_profile = ChaosProfile {
        flip_pct: 40,
        ..ChaosProfile::default()
    };
    let server = ChaosServer::new(
        asr_workload::company_database().db,
        ChaosProfile::default(),
        tx_profile,
        0xBEEF,
    );
    let mut client = WireClient::new(server);
    let responses = drive(&mut client, &script);
    assert_outcome_matches_oracle(&responses, &oracle);
    let node = client.transport();
    let flipped = node.outbox.stats().flipped;
    assert!(flipped > 0);
    assert_eq!(
        client.stats().damaged_responses,
        flipped,
        "every flipped response frame must fail the client-side CRC"
    );
    assert_eq!(node.server.requests_executed(), script.len() as u64);
    assert_eq!(node.db.save_to_string(), oracle.save_to_string());
}

/// The full seeded sweep: every fault class armed on both channels at
/// once.  Whatever the damage, the script executes exactly once and the
/// final state is bit-identical to the oracle's.
#[test]
fn full_chaos_sweep_never_misexecutes() {
    let mut injected_total = [0u64; 5];
    for seed in 0..12u64 {
        let (script, oracle) = script_and_oracle();
        let profile = ChaosProfile::from_seed(seed);
        let server = ChaosServer::new(asr_workload::company_database().db, profile, profile, seed);
        let mut client = WireClient::new(server);
        let responses = drive(&mut client, &script);
        assert_outcome_matches_oracle(&responses, &oracle);

        let node = client.transport();
        assert_eq!(
            node.server.requests_executed(),
            script.len() as u64,
            "seed {seed}: exactly-once"
        );
        assert_eq!(
            node.db.save_to_string(),
            oracle.save_to_string(),
            "seed {seed}: served state diverged from the oracle"
        );
        // Channel conservation: every offered frame was dropped,
        // delivered, or is still queued; duplication adds copies.
        for ch in [&node.inbox, &node.outbox] {
            let s = ch.stats();
            assert_eq!(
                s.sent - s.dropped + s.duplicated,
                s.delivered + ch.undelivered() as u64,
                "seed {seed}: channel accounting must balance"
            );
        }
        let (rx, tx) = (node.inbox.stats(), node.outbox.stats());
        for (i, v) in [
            rx.dropped + tx.dropped,
            rx.duplicated + tx.duplicated,
            rx.reordered + tx.reordered,
            rx.truncated + tx.truncated,
            rx.flipped + tx.flipped,
        ]
        .into_iter()
        .enumerate()
        {
            injected_total[i] += v;
        }
    }
    // Across the sweep, every fault class must have fired at least once
    // — otherwise the fuzz is weaker than it claims.
    let names = ["drop", "dup", "reorder", "truncate", "flip"];
    for (name, &count) in names.iter().zip(&injected_total) {
        assert!(count > 0, "fault class {name} never fired across the sweep");
    }
}
