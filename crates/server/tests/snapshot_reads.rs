//! MVCC serving: snapshot-isolated reads in the session multiplexer and
//! the scatter-gather fleet.  Reads answered from a pinned
//! [`asr_core::Snapshot`] must be bit-identical to live execution, the
//! parallel multi-session pump must be indistinguishable from the serial
//! one, and exactly-once semantics must survive duplicated and deferred
//! frames.

mod common;

use asr_core::{AsrConfig, Cell, Database, Decomposition, Extension};
use asr_durable::{
    Channel, ChaosProfile, DurableDatabase, FlushPolicy, LosslessChannel, MemStorage,
};
use asr_gom::Value;
use asr_net::{decode_frame, Request, RequestBody, Response, ResponseBody, WireMessage};
use asr_server::{NetServer, ServerDb, ShardedDatabase};
use common::*;

fn send(ch: &mut LosslessChannel, id: u64, body: RequestBody) {
    ch.send(Request { id, body }.encode());
}

fn drain(ch: &mut LosslessChannel) -> Vec<Response> {
    let mut out = Vec::new();
    while let Some(frame) = ch.recv() {
        match decode_frame(&frame) {
            Some(WireMessage::Response(resp)) => out.push(resp),
            other => panic!("expected response, got {other:?}"),
        }
    }
    out
}

/// `(id, body)` pairs — the client-visible outcome, ignoring the I/O
/// envelope (snapshot reads meter pages differently by design).
fn outcomes(resps: &[Response]) -> Vec<(u64, &ResponseBody)> {
    resps.iter().map(|r| (r.id, &r.body)).collect()
}

/// A plain serving database over the company example with one full ASR,
/// plus probe fodder: the ASR id, division key cells and product cells.
fn serving_company() -> (Database, u32, Vec<Cell>, Vec<Cell>) {
    let ex = asr_workload::company_database();
    let mut db = ex.db;
    let m = ex.path.arity(false) - 1;
    let id = db
        .create_asr_on(
            "Division.Manufactures.Composition.Name",
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let door = Cell::Value(Value::string("Door"));
    let divisions: Vec<Cell> = db
        .backward(id, 0, 3, &door)
        .expect("backward")
        .into_iter()
        .map(Cell::Oid)
        .collect();
    assert!(!divisions.is_empty(), "a division must use a Door");
    let start = divisions[0].as_oid().expect("division oid");
    let products = db.forward(id, 0, 1, start).expect("forward");
    (db, id as u32, divisions, products)
}

/// Every span answer off a snapshot-serving fleet must equal the
/// single-node oracle, across randomly decomposed chains and chaotic
/// shard links — and the shards must actually be answering from their
/// pinned views.
#[test]
fn sharded_snapshot_reads_answer_every_span_bit_identically() {
    for seed in [11u64, 29, 47] {
        let staged = stage_chain(seed);
        let mut sharded = ShardedDatabase::from_primary(
            &staged.durable,
            3,
            Some((ChaosProfile::from_seed(seed), seed)),
        )
        .expect("seeds");
        sharded.enable_snapshot_reads();
        assert_spans_match(
            staged.durable.database(),
            &mut sharded,
            &staged,
            &format!("snapshot reads, seed {seed}"),
        );
        let snapshot_served: u64 = (0..sharded.shard_count())
            .map(|i| {
                sharded
                    .fleet()
                    .node(i)
                    .db()
                    .tracer()
                    .metrics()
                    .counter("server.snapshot.reads")
            })
            .sum();
        assert!(
            snapshot_served > 0,
            "seed {seed}: probes and scans must ride the pinned snapshots"
        );
        for i in 0..sharded.shard_count() {
            assert!(
                sharded.fleet().node(i).snapshot_epoch().is_some(),
                "seed {seed}: shard {i} must stay pinned"
            );
        }
    }
}

/// A reseed must move every shard's pin to the new slice: answers after
/// the reseed reflect primary mutations, not the old epoch.
#[test]
fn reseed_refreshes_snapshot_pins_to_the_new_slice() {
    let (mut primary, asr) = company_primary();
    let mut sharded = ShardedDatabase::from_primary(&primary, 2, None).expect("seeds");
    sharded.enable_snapshot_reads();
    let door = Cell::Value(Value::string("Door"));
    let before = primary.database().backward(asr, 0, 3, &door).expect("bw");
    assert_eq!(
        sharded.backward(asr, 0, 3, &door).expect("sharded bw"),
        before
    );

    // Extend the primary with a new division whose product also uses a
    // part named "Door".
    let div = primary.instantiate("Division").unwrap();
    primary
        .set_attribute(div, "Name", Value::string("Marine"))
        .unwrap();
    let prods = primary.instantiate("ProdSET").unwrap();
    primary
        .set_attribute(div, "Manufactures", Value::Ref(prods))
        .unwrap();
    let boat = primary.instantiate("Product").unwrap();
    primary
        .set_attribute(boat, "Name", Value::string("Boat"))
        .unwrap();
    primary
        .insert_into_attr_set(div, "Manufactures", Value::Ref(boat))
        .unwrap();
    let comp = primary.instantiate("BasePartSET").unwrap();
    primary
        .set_attribute(boat, "Composition", Value::Ref(comp))
        .unwrap();
    let part = primary.instantiate("BasePart").unwrap();
    primary
        .set_attribute(part, "Name", Value::string("Door"))
        .unwrap();
    primary
        .insert_into_attr_set(boat, "Composition", Value::Ref(part))
        .unwrap();
    let after = primary.database().backward(asr, 0, 3, &door).expect("bw");
    assert!(after.len() > before.len(), "the mutation must show up");

    sharded.reseed(&primary).expect("reseed");
    assert_eq!(
        sharded
            .backward(asr, 0, 3, &door)
            .expect("sharded bw after reseed"),
        after,
        "pins must move to the reseeded slice"
    );
    for i in 0..sharded.shard_count() {
        assert!(sharded.fleet().node(i).snapshot_epoch().is_some());
    }
}

/// The parallel pump must be client-indistinguishable from pumping the
/// same sessions serially: identical `(id, body)` streams per session,
/// identical execute/replay accounting — while the read prefixes
/// actually ran concurrently off one pinned snapshot.
#[test]
fn parallel_pump_matches_serial_execution() {
    let (mut serial_db, asr, divisions, products) = serving_company();
    let (mut parallel_db, asr2, _, _) = serving_company();
    assert_eq!(asr, asr2, "the two builds are deterministic twins");
    let door = Cell::Value(Value::string("Door"));

    let scripts: Vec<Vec<RequestBody>> = vec![
        vec![
            RequestBody::ShardProbe {
                asr,
                part: 0,
                forward: true,
                keys: divisions.clone(),
            },
            RequestBody::ShardScan {
                asr,
                part: 1,
                offset: 0,
                frontier: products.clone(),
            },
            RequestBody::BindVar {
                name: "w0".to_string(),
                value: Value::string("x"),
            },
            RequestBody::Ping,
        ],
        vec![
            RequestBody::Ping,
            RequestBody::BindVar {
                name: "w1".to_string(),
                value: Value::string("y"),
            },
        ],
        vec![
            RequestBody::ShardProbe {
                asr,
                part: 2,
                forward: false,
                keys: vec![door.clone()],
            },
            RequestBody::Ping,
        ],
    ];

    // Serial baseline: one session at a time, live execution only.
    let mut serial_server = NetServer::new();
    let mut serial_out: Vec<Vec<Response>> = Vec::new();
    let mut serial_executed = 0u64;
    for script in &scripts {
        let sid = serial_server.open_session();
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        for (i, body) in script.iter().enumerate() {
            send(&mut rx, i as u64 + 1, body.clone());
        }
        // Duplicate the last frame of session 1: the replay path.
        if script.len() == 2 {
            send(&mut rx, script.len() as u64, script.last().unwrap().clone());
        }
        let report = serial_server.pump_session(
            sid,
            &mut ServerDb::<MemStorage>::Plain(&mut serial_db),
            &mut rx,
            &mut tx,
        );
        serial_executed += report.executed;
        serial_out.push(drain(&mut tx));
    }

    // Parallel run: same scripts, one pass, four workers.
    let mut parallel_server = NetServer::new();
    let mut channels: Vec<(usize, LosslessChannel, LosslessChannel)> = scripts
        .iter()
        .map(|script| {
            let sid = parallel_server.open_session();
            let mut rx = LosslessChannel::new();
            for (i, body) in script.iter().enumerate() {
                send(&mut rx, i as u64 + 1, body.clone());
            }
            if script.len() == 2 {
                send(&mut rx, script.len() as u64, script.last().unwrap().clone());
            }
            (sid, rx, LosslessChannel::new())
        })
        .collect();
    let mut sessions: Vec<(usize, &mut dyn Channel, &mut dyn Channel)> = channels
        .iter_mut()
        .map(|(sid, rx, tx)| (*sid, rx as &mut dyn Channel, tx as &mut dyn Channel))
        .collect();
    let report = parallel_server.pump_sessions_parallel(
        &mut ServerDb::<MemStorage>::Plain(&mut parallel_db),
        &mut sessions,
        4,
    );

    assert_eq!(report.executed, serial_executed);
    assert_eq!(parallel_server.requests_executed(), serial_executed);
    for (slot, (_, _, tx)) in channels.iter_mut().enumerate() {
        let got = drain(tx);
        assert_eq!(
            outcomes(&got),
            outcomes(&serial_out[slot]),
            "session {slot} diverged from serial execution"
        );
    }
    // S0's probe+scan, S1's leading ping, S2's probe+ping rode the pin.
    let metrics = parallel_db.tracer().metrics();
    assert_eq!(metrics.counter("server.snapshot.reads"), 5);
    assert_eq!(metrics.counter("server.snapshot.batches"), 1);
}

/// A `Shutdown` deferred to the serial tail still closes the session
/// before any request queued behind it.
#[test]
fn shutdown_in_the_tail_closes_before_later_requests() {
    let (mut db, _, _, _) = serving_company();
    let mut server = NetServer::new();
    let sid = server.open_session();
    let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
    send(&mut rx, 1, RequestBody::Ping);
    send(&mut rx, 2, RequestBody::Shutdown);
    send(&mut rx, 3, RequestBody::Ping);
    let mut sessions: Vec<(usize, &mut dyn Channel, &mut dyn Channel)> =
        vec![(sid, &mut rx, &mut tx)];
    let report = server.pump_sessions_parallel(
        &mut ServerDb::<MemStorage>::Plain(&mut db),
        &mut sessions,
        2,
    );
    assert_eq!(report.executed, 2, "the post-shutdown ping must not run");
    assert!(!server.session_open(sid));
    let resps = drain(&mut tx);
    assert_eq!(resps.len(), 3);
    assert_eq!((resps[0].id, &resps[0].body), (1, &ResponseBody::Ok));
    assert_eq!((resps[1].id, &resps[1].body), (2, &ResponseBody::Ok));
    match &resps[2].body {
        ResponseBody::Err(msg) => assert!(msg.contains("closed")),
        other => panic!("expected err, got {other:?}"),
    }
}

/// A read frame duplicated within one drain executes once: the copy is
/// deferred past the concurrent phase and settles as a replay.
#[test]
fn duplicated_read_frame_never_double_executes() {
    let (mut db, asr, divisions, _) = serving_company();
    let mut server = NetServer::new();
    let sid = server.open_session();
    let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
    let probe = RequestBody::ShardProbe {
        asr,
        part: 0,
        forward: true,
        keys: divisions,
    };
    send(&mut rx, 1, probe.clone());
    send(&mut rx, 1, probe);
    let mut sessions: Vec<(usize, &mut dyn Channel, &mut dyn Channel)> =
        vec![(sid, &mut rx, &mut tx)];
    let report = server.pump_sessions_parallel(
        &mut ServerDb::<MemStorage>::Plain(&mut db),
        &mut sessions,
        2,
    );
    assert_eq!(report.executed, 1);
    assert_eq!(report.replayed, 1);
    assert_eq!(server.requests_executed(), 1);
    let resps = drain(&mut tx);
    assert_eq!(resps.len(), 2);
    assert_eq!(resps[0], resps[1], "the replay is byte-identical");
}

/// The tentpole wiring end to end on a durable primary: the read prefix
/// rides a snapshot while tail mutations flow through the WAL — and
/// survive recovery.
#[test]
fn durable_parallel_pump_logs_tail_writes() {
    let (db, asr, divisions, _) = serving_company();
    let disk = MemStorage::new();
    let mut primary =
        DurableDatabase::create(disk.clone(), db, FlushPolicy::EveryRecord).expect("creates");
    let objects_before = primary.database().base().object_count();

    let mut server = NetServer::new();
    let reader_sid = server.open_session();
    let writer_sid = server.open_session();
    let (mut read_rx, mut read_tx) = (LosslessChannel::new(), LosslessChannel::new());
    let (mut write_rx, mut write_tx) = (LosslessChannel::new(), LosslessChannel::new());
    send(
        &mut read_rx,
        1,
        RequestBody::ShardProbe {
            asr,
            part: 0,
            forward: true,
            keys: divisions,
        },
    );
    for id in 1..=2u64 {
        send(
            &mut write_rx,
            id,
            RequestBody::Instantiate {
                type_name: "BasePart".to_string(),
            },
        );
    }
    let mut sessions: Vec<(usize, &mut dyn Channel, &mut dyn Channel)> = vec![
        (reader_sid, &mut read_rx, &mut read_tx),
        (writer_sid, &mut write_rx, &mut write_tx),
    ];
    let report =
        server.pump_sessions_parallel(&mut ServerDb::Durable(&mut primary), &mut sessions, 2);
    assert_eq!(report.executed, 3);
    match &drain(&mut read_tx)[0].body {
        ResponseBody::Rows(rows) => assert!(!rows.is_empty(), "the probe must see rows"),
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(drain(&mut write_tx).len(), 2);

    drop(primary);
    let recovered = DurableDatabase::open(disk).expect("recovers");
    assert_eq!(
        recovered.database().base().object_count(),
        objects_before + 2,
        "tail writes must be WAL-logged and replayed"
    );
}
