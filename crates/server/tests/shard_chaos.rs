//! Shard fault-domain chaos sweep: 32 seeded schedules arm one shard
//! with a deterministic crash/stall plan, then drive queries and
//! health-check ticks until the fleet converges back to all-Up.
//!
//! Per schedule the sweep asserts the full robustness contract:
//!
//! * every injected crash/stall surfaces as a typed flight event
//!   (`shard.fault.*`), and every down/reseed transition as
//!   `shard.down` / `shard.reseed.begin/end`;
//! * while degraded, every answer is a **subset** of the never-failed
//!   oracle's and is flagged through the degraded set — an unflagged
//!   answer must be bit-identical (never silently wrong);
//! * the fleet converges to all-Up within the tick budget, surviving
//!   injected crashes *during* the reseed (bounded retries under
//!   exponential backoff);
//! * post-recovery answers are bit-identical to the oracle, and the
//!   placement still partitions the rows exactly (no stale or
//!   duplicated fragments from a half-finished reseed).
//!
//! Seed: `ASR_FUZZ_SEED` (decimal u64) overrides the default, so CI can
//! pin a seed while local runs explore.

mod common;

use std::collections::BTreeSet;
use std::rc::Rc;

use asr_core::Cell;
use asr_durable::{Channel, LosslessChannel};
use asr_net::{decode_frame, Request, RequestBody, ResponseBody, WireMessage};
use asr_obs::{FlightEvent, FlightRecorder};
use asr_server::{NetServer, ShardFaultPlan, ShardedDatabase};
use common::*;

fn fuzz_seed() -> u64 {
    std::env::var("ASR_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA512_1990)
}

/// Events named `name` carrying a `shard=<i>` attribute.
fn events_for(rec: &FlightRecorder, name: &str, shard: usize) -> Vec<FlightEvent> {
    let want = shard.to_string();
    rec.tail(rec.len())
        .into_iter()
        .filter(|e| {
            e.record.name == name
                && e.record
                    .attrs
                    .iter()
                    .any(|(k, v)| k == "shard" && *v == want)
        })
        .collect()
}

fn attr<'a>(ev: &'a FlightEvent, key: &str) -> Option<&'a str> {
    ev.record
        .attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn count_where(evs: &[FlightEvent], key: &str, value: &str) -> usize {
    evs.iter().filter(|e| attr(e, key) == Some(value)).count()
}

/// The oracle's answer for every span the burst will replay.
struct SpanOracle {
    forward: Vec<(usize, usize, asr_gom::Oid, Vec<Cell>)>,
    backward: Vec<(usize, usize, Cell, Vec<asr_gom::Oid>)>,
}

const SAMPLE: usize = 4;

fn span_oracle(staged: &ChainPrimary) -> SpanOracle {
    let oracle = staged.durable.database();
    let mut forward = Vec::new();
    let mut backward = Vec::new();
    for i in 0..staged.n {
        for j in (i + 1)..=staged.n {
            for &start in staged.levels[i].iter().take(SAMPLE) {
                let want = oracle.forward(staged.asr, i, j, start).expect("oracle fw");
                forward.push((i, j, start, want));
            }
            for &target in staged.levels[j].iter().take(SAMPLE) {
                let cell = Cell::Oid(target);
                let want = oracle.backward(staged.asr, i, j, &cell).expect("oracle bw");
                backward.push((i, j, cell, want));
            }
        }
    }
    SpanOracle { forward, backward }
}

/// Replay every sampled span once.  Unflagged answers must equal the
/// oracle's; flagged (degraded) answers must be subsets.  Returns true
/// if any answer in the burst was degraded.
fn degraded_burst(
    sharded: &mut ShardedDatabase,
    staged: &ChainPrimary,
    oracle: &SpanOracle,
    ctx: &str,
) -> bool {
    let mut any_degraded = false;
    for (i, j, start, want) in &oracle.forward {
        sharded.take_degraded();
        let got = sharded
            .forward(staged.asr, *i, *j, *start)
            .expect("degraded fleets still answer");
        let missing = sharded.take_degraded();
        if missing.is_empty() {
            assert_eq!(
                &got, want,
                "{ctx}: unflagged fw Q_{{{i},{j}}} must be exact"
            );
        } else {
            any_degraded = true;
            let got: BTreeSet<&Cell> = got.iter().collect();
            let want: BTreeSet<&Cell> = want.iter().collect();
            assert!(
                got.is_subset(&want),
                "{ctx}: degraded fw Q_{{{i},{j}}} (missing {missing:?}) must be a subset"
            );
        }
    }
    for (i, j, target, want) in &oracle.backward {
        sharded.take_degraded();
        let got = sharded
            .backward(staged.asr, *i, *j, target)
            .expect("degraded fleets still answer");
        let missing = sharded.take_degraded();
        if missing.is_empty() {
            assert_eq!(
                &got, want,
                "{ctx}: unflagged bw Q_{{{i},{j}}} must be exact"
            );
        } else {
            any_degraded = true;
            let got: BTreeSet<_> = got.iter().collect();
            let want: BTreeSet<_> = want.iter().collect();
            assert!(
                got.is_subset(&want),
                "{ctx}: degraded bw Q_{{{i},{j}}} (missing {missing:?}) must be a subset"
            );
        }
    }
    any_degraded
}

#[test]
fn chaos_sweep_converges_to_all_up_with_oracle_identical_answers() {
    const SCHEDULES: u64 = 32;
    const MAX_ROUNDS: usize = 40;

    let mut degraded_schedules = 0usize;
    let mut down_schedules = 0usize;
    let mut failed_reseed_schedules = 0usize;
    let mut full_reseeds = 0usize;
    let mut delta_reseeds = 0usize;
    let mut artifact = String::new();

    for k in 0..SCHEDULES {
        let seed = fuzz_seed() ^ (k.wrapping_mul(0x9E37_79B9));
        let staged = stage_chain(seed);
        let oracle = span_oracle(&staged);
        let n_shards = 2 + (seed % 3) as usize;
        let armed = ((seed >> 8) % n_shards as u64) as usize;
        let plan = ShardFaultPlan::from_seed(seed);
        let ctx =
            format!("schedule {k} seed {seed:#x} shards={n_shards} armed={armed} plan={plan:?}");

        let mut sharded =
            ShardedDatabase::from_primary(&staged.durable, n_shards, None).expect("seeds");
        // Sized so nothing can be evicted: every injection must be
        // visible as a typed event.
        let recorder = Rc::new(FlightRecorder::new(1 << 17));
        sharded.catalog().tracer().add_sink(recorder.clone());
        sharded.set_deadline(4);
        sharded.set_fault_plan(armed, plan);

        // Drive query bursts and health ticks until the injections have
        // fired, every down shard recovered, and the health machine is
        // quiet (no new fault/transition signal for two full rounds).
        let signal = |sharded: &ShardedDatabase| -> u64 {
            let m = sharded.catalog().tracer().metrics();
            [
                "shard.fault.crashes",
                "shard.fault.stalls",
                "shard.health.suspects",
                "shard.health.downs",
                "shard.health.reseed_attempts",
                "shard.health.reseed_failures",
                "shard.health.recoveries",
            ]
            .iter()
            .map(|name| m.counter(name))
            .sum()
        };
        let mut schedule_degraded = false;
        let mut quiet_rounds = 0usize;
        let mut rounds = 0usize;
        while rounds < MAX_ROUNDS {
            rounds += 1;
            let before = signal(&sharded);
            schedule_degraded |= degraded_burst(&mut sharded, &staged, &oracle, &ctx);
            sharded.tick(&staged.durable);
            let fired = sharded
                .catalog()
                .tracer()
                .metrics()
                .counter("shard.fault.crashes")
                + sharded
                    .catalog()
                    .tracer()
                    .metrics()
                    .counter("shard.fault.stalls");
            if signal(&sharded) == before {
                quiet_rounds += 1;
            } else {
                quiet_rounds = 0;
            }
            if sharded.all_up() && fired > 0 && quiet_rounds >= 2 {
                break;
            }
        }
        assert!(
            rounds < MAX_ROUNDS,
            "{ctx}: no quiescent all-Up state within {MAX_ROUNDS} rounds"
        );
        assert!(sharded.all_up(), "{ctx}: fleet must converge to all-Up");
        assert_eq!(recorder.dropped(), 0, "{ctx}: recorder sized too small");

        // Every injection surfaced as a typed event, and the transition
        // ledger is internally consistent.
        let crashes = events_for(&recorder, "shard.fault.crash", armed);
        let stalls = events_for(&recorder, "shard.fault.stall", armed);
        assert!(
            !crashes.is_empty() || !stalls.is_empty(),
            "{ctx}: an armed plan must surface at least one typed fault event"
        );
        let downs = events_for(&recorder, "shard.down", armed);
        let begins = events_for(&recorder, "shard.reseed.begin", armed);
        let ends = events_for(&recorder, "shard.reseed.end", armed);
        let ok_ends = count_where(&ends, "outcome", "ok");
        let failed_ends = count_where(&ends, "outcome", "failed");
        assert_eq!(begins.len(), ends.len(), "{ctx}: every reseed must end");
        assert_eq!(
            ok_ends,
            downs.len(),
            "{ctx}: every down shard must recover exactly once"
        );
        let serve_crashes = count_where(&crashes, "phase", "serve");
        let reseed_crashes = count_where(&crashes, "phase", "reseed");
        assert_eq!(
            failed_ends, reseed_crashes,
            "{ctx}: reseeds over lossless links only fail via injected crashes"
        );
        if serve_crashes > 0 {
            // A serving crash is fatal: the shard must have gone down
            // and come back through a reseed.
            assert_eq!(downs.len(), 1, "{ctx}: a crashed shard goes down once");
            assert_eq!(
                sharded.fleet().node(armed).generation(),
                1,
                "{ctx}: recovery must install a replacement generation"
            );
            // Delta vs full bootstrap is decided by what the crash took
            // with it.
            let want_mode = if plan.lose_applier { "full" } else { "delta" };
            let modes: Vec<&str> = ends
                .iter()
                .filter(|e| attr(e, "outcome") == Some("ok"))
                .filter_map(|e| attr(e, "mode"))
                .collect();
            assert_eq!(modes, vec![want_mode], "{ctx}: wrong reseed mode");
        }
        if !downs.is_empty() {
            // Degraded service must have been observable while down.
            assert!(
                !events_for(&recorder, "shard.degraded_read", armed).is_empty(),
                "{ctx}: a down shard must surface degraded reads"
            );
        }

        // Post-recovery: bit-identical to the oracle, placement still an
        // exact partition (no stale or duplicated rows from any
        // half-finished reseed), and nothing left flagged.
        sharded.take_degraded();
        assert_spans_match(staged.durable.database(), &mut sharded, &staged, &ctx);
        assert!(
            sharded.take_degraded().is_empty(),
            "{ctx}: recovered fleet must not flag answers"
        );
        let primary_rows = staged
            .durable
            .database()
            .asr(staged.asr)
            .unwrap()
            .total_rows() as u64;
        let placed: u64 = (0..n_shards)
            .map(|i| sharded.fleet().node(i).placed_rows())
            .sum();
        assert_eq!(
            placed, primary_rows,
            "{ctx}: placement must still partition the rows exactly"
        );

        degraded_schedules += schedule_degraded as usize;
        down_schedules += usize::from(!downs.is_empty());
        failed_reseed_schedules += usize::from(failed_ends > 0);
        for e in &ends {
            if attr(e, "outcome") == Some("ok") {
                match attr(e, "mode") {
                    Some("full") => full_reseeds += 1,
                    Some("delta") => delta_reseeds += 1,
                    other => panic!("{ctx}: reseed.end with unknown mode {other:?}"),
                }
            }
        }
        artifact.push_str(&recorder.dump_jsonl());
    }

    // CI uploads the full fault timeline of the pinned-seed run.
    if let Ok(path) = std::env::var("ASR_SHARD_FLIGHTREC_OUT") {
        std::fs::write(&path, &artifact).expect("write flight-recorder artifact");
    }

    // The seeded plan generator must actually exercise every leg of the
    // contract across the sweep, not just the quiet paths.
    assert!(
        down_schedules >= 8,
        "only {down_schedules}/32 schedules took a shard down — sweep too gentle"
    );
    assert!(
        degraded_schedules >= 8,
        "only {degraded_schedules}/32 schedules served degraded answers"
    );
    assert!(
        failed_reseed_schedules >= 1,
        "no schedule crashed during a reseed — retry path untested"
    );
    assert!(
        full_reseeds >= 1 && delta_reseeds >= 1,
        "sweep must cover both full ({full_reseeds}) and delta ({delta_reseeds}) bootstraps"
    );
}

/// The degraded marker rides the wire: a query pumped through the
/// sharded front door while a shard is out carries the missing-shard
/// set in the response's `partial` field, and a healed fleet clears it.
#[test]
fn degraded_responses_carry_the_partial_flag_on_the_wire() {
    let (primary, _id) = company_primary();
    let mut sharded = ShardedDatabase::from_primary(&primary, 2, None).expect("seeds");
    sharded.set_deadline(2);
    sharded.set_fault_plan(
        0,
        ShardFaultPlan {
            crash_at_op: Some(1),
            ..ShardFaultPlan::default()
        },
    );

    let mut server = NetServer::new();
    let sid = server.open_session();
    let query =
        r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#;

    let call = |server: &mut NetServer, sharded: &mut ShardedDatabase, id: u64| {
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        rx.send(
            Request {
                id,
                body: RequestBody::Query(query.to_string()),
            }
            .encode(),
        );
        server.pump_session_sharded(sid, sharded, &mut rx, &mut tx);
        let frame = tx.recv().expect("a response frame");
        match decode_frame(&frame) {
            Some(WireMessage::Response(resp)) => resp,
            other => panic!("expected a response, got {other:?}"),
        }
    };

    // Shard 0 crashes on its first poll: the answer is flagged partial.
    let resp = call(&mut server, &mut sharded, 1);
    assert_eq!(resp.partial, vec![0], "crash must stamp the partial flag");
    assert!(
        matches!(resp.body, ResponseBody::Table { .. }),
        "degraded responses still answer: {:?}",
        resp.body
    );

    // Heal the fleet, then the same query answers complete and unflagged.
    for _ in 0..4 {
        sharded.tick(&primary);
    }
    assert!(sharded.all_up(), "tick loop must heal the crashed shard");
    let resp = call(&mut server, &mut sharded, 2);
    assert!(
        resp.partial.is_empty(),
        "healed fleets must not flag answers: {:?}",
        resp.partial
    );
    match resp.body {
        ResponseBody::Table { rows, .. } => assert!(!rows.is_empty(), "the Door query has answers"),
        other => panic!("expected a table, got {other:?}"),
    }

    // Mutations stay read-only through the sharded front door.
    let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
    rx.send(
        Request {
            id: 3,
            body: RequestBody::DropAsr { asr: 0 },
        }
        .encode(),
    );
    server.pump_session_sharded(sid, &mut sharded, &mut rx, &mut tx);
    let frame = tx.recv().expect("a response frame");
    match decode_frame(&frame) {
        Some(WireMessage::Response(resp)) => match resp.body {
            ResponseBody::Err(msg) => assert!(msg.contains("read-only"), "{msg}"),
            other => panic!("mutations must be refused, got {other:?}"),
        },
        other => panic!("expected a response, got {other:?}"),
    }
}

/// A fleet with every shard down refuses loudly instead of returning an
/// empty (silently wrong) answer.
#[test]
fn all_shards_down_is_a_typed_error_not_an_empty_answer() {
    let staged = stage_chain(99);
    let mut sharded = ShardedDatabase::from_primary(&staged.durable, 1, None).expect("seeds");
    sharded.set_deadline(2);
    sharded.set_fault_plan(
        0,
        ShardFaultPlan {
            crash_at_op: Some(1),
            ..ShardFaultPlan::default()
        },
    );
    let start = staged.levels[0][0];
    let err = sharded
        .forward(staged.asr, 0, staged.n, start)
        .expect_err("an all-down fleet must error");
    assert!(
        err.to_string().contains("every shard is down"),
        "unexpected error: {err}"
    );
    // The tick loop heals even a fully-down fleet, after which the span
    // answers exactly.
    for _ in 0..4 {
        sharded.tick(&staged.durable);
    }
    assert!(sharded.all_up());
    let want = staged
        .durable
        .database()
        .forward(staged.asr, 0, staged.n, start)
        .expect("oracle");
    sharded.take_degraded();
    let got = sharded
        .forward(staged.asr, 0, staged.n, start)
        .expect("healed fleet answers");
    assert_eq!(got, want);
    assert!(sharded.take_degraded().is_empty());
}
