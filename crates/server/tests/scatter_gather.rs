//! Scatter-gather correctness: the sharded coordinator must be
//! bit-identical to single-node evaluation — same cells, same order —
//! across random chain databases, random decompositions and extensions,
//! shard counts {1, 2, 4, 7}, with and without channel chaos.

mod common;

use asr_durable::ChaosProfile;
use asr_oql::execute;
use asr_server::ShardedDatabase;
use common::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core property: every span query on every decomposition
    /// answers identically sharded and unsharded, at every shard count.
    #[test]
    fn sharded_spans_match_single_node(seed in 0u64..1_000_000) {
        let staged = stage_chain(seed);
        for &n_shards in &[1usize, 2, 4, 7] {
            let mut sharded = ShardedDatabase::from_primary(&staged.durable, n_shards, None)
                .expect("seeds");
            assert_spans_match(
                staged.durable.database(),
                &mut sharded,
                &staged,
                &format!("seed={seed} shards={n_shards}"),
            );
        }
    }

    /// Same property under a hostile wire: chaotic shard links cost
    /// retries, never answers.
    #[test]
    fn sharded_spans_survive_channel_chaos(seed in 0u64..1_000_000) {
        let staged = stage_chain(seed);
        for &n_shards in &[2usize, 7] {
            let chaos = Some((ChaosProfile::from_seed(seed), seed));
            let mut sharded = ShardedDatabase::from_primary(&staged.durable, n_shards, chaos)
                .expect("seeds");
            assert_spans_match(
                staged.durable.database(),
                &mut sharded,
                &staged,
                &format!("chaos seed={seed} shards={n_shards}"),
            );
            // The chaos leg must actually have been chaotic (the seeded
            // profile always injects something over this many frames)
            // and paid for in retries, not answers.
            let injected: u64 = sharded
                .fleet()
                .channel_stats()
                .iter()
                .map(|(rx, tx)| {
                    rx.dropped + rx.truncated + rx.flipped + rx.duplicated
                        + tx.dropped + tx.truncated + tx.flipped + tx.duplicated
                })
                .sum();
            let retries: u64 = sharded
                .fleet()
                .client_stats()
                .iter()
                .map(|s| s.retries)
                .sum();
            assert!(injected > 0, "seed {seed}: chaos profile injected nothing");
            assert!(retries > 0, "seed {seed}: damage cost no retries");
        }
    }
}

/// Placement is a partition: every stored row lands on exactly one
/// shard, and the shard totals reassemble the primary's.
#[test]
fn placement_partitions_rows_exactly() {
    let staged = stage_chain(42);
    let primary_rows = staged
        .durable
        .database()
        .asr(staged.asr)
        .unwrap()
        .total_rows() as u64;
    let mut sharded = ShardedDatabase::from_primary(&staged.durable, 4, None).expect("seeds");
    let placed: u64 = (0..4).map(|i| sharded.fleet().node(i).placed_rows()).sum();
    assert_eq!(placed, primary_rows, "placement must partition the rows");
    // The catalog keeps zero rows: supported answers cannot come from it.
    assert_eq!(
        sharded.catalog().asr(staged.asr).unwrap().total_rows(),
        0,
        "catalog must hold metadata only"
    );
    let health = sharded.status().expect("status");
    assert_eq!(health.len(), 4);
    assert_eq!(
        health.iter().map(|h| h.placed_rows).sum::<u64>(),
        primary_rows
    );
    // Every shard converged to the same replication position.
    assert!(
        health
            .iter()
            .all(|h| h.applied_lsn == health[0].applied_lsn),
        "shards seeded from the same primary must agree on the LSN"
    );
}

/// Mutations flow through the primary; `reseed` replays the WAL suffix
/// into every shard's applier and re-places the slices.
#[test]
fn reseed_catches_up_after_primary_mutations() {
    let mut staged = stage_chain(7);
    let mut sharded = ShardedDatabase::from_primary(&staged.durable, 3, None).expect("seeds");
    let lsn_before = sharded.status().expect("status")[0].applied_lsn;

    // Rewire part of the object graph through the durable layer (these
    // maintain the ASR and append WAL records).  Not every level-0
    // object carries a set instance, so walk until a mutation lands.
    let dst = staged.levels[1][staged.levels[1].len() - 1];
    let attr_is_set = staged
        .durable
        .database()
        .base()
        .schema()
        .resolve("S1")
        .is_some();
    let mut rewired = false;
    for &src in &staged.levels[0] {
        let ok = if attr_is_set {
            staged
                .durable
                .insert_into_attr_set(src, "A1", asr_gom::Value::Ref(dst))
                .is_ok()
        } else {
            staged
                .durable
                .set_attribute(src, "A1", asr_gom::Value::Ref(dst))
                .is_ok()
        };
        if ok {
            rewired = true;
            break;
        }
    }
    assert!(rewired, "no level-0 object accepted the rewiring");
    // A plain attribute write always logs, so the LSN must advance even
    // if the rewiring happened to be a no-op for the ASR.
    let tagged = staged.levels[staged.n][0];
    staged
        .durable
        .set_attribute(tagged, "Tag", asr_gom::Value::Integer(777_777))
        .expect("tag write");

    // Before the reseed the fleet serves the old state; afterwards it
    // must match the mutated primary span for span.
    sharded.reseed(&staged.durable).expect("reseed");
    assert_spans_match(
        staged.durable.database(),
        &mut sharded,
        &staged,
        "after reseed",
    );
    let health = sharded.status().expect("status");
    assert!(
        health[0].applied_lsn > lsn_before,
        "reseed must advance the applied LSN ({} -> {})",
        lsn_before,
        health[0].applied_lsn
    );
    let placed: u64 = health.iter().map(|h| h.placed_rows).sum();
    let primary_rows = staged
        .durable
        .database()
        .asr(staged.asr)
        .unwrap()
        .total_rows() as u64;
    assert_eq!(placed, primary_rows);
}

/// Whole OQL statements route every span through the fleet and return
/// the same result sets as single-node execution.
#[test]
fn oql_queries_route_through_the_fleet() {
    let (primary, _id) = company_primary();
    let mut sharded = ShardedDatabase::from_primary(&primary, 3, None).expect("seeds");
    let queries = [
        r#"select d.Name from d in Division where d.Manufactures.Composition.Name = "Door""#,
        r#"select d.Manufactures.Composition.Name from d in Division"#,
        r#"select r.Name from r in Division"#,
        r#"select b.Name from b in BasePart where b.Price >= 1.00"#,
    ];
    for q in queries {
        let want = execute(primary.database(), q).expect("oracle query");
        let got = sharded.query(q).expect("sharded query");
        assert_eq!(got.columns, want.columns, "{q}");
        assert_eq!(got.rows, want.rows, "{q}");
    }
    // The indexed spans really were scattered: the catalog counted
    // scatter queries, and the zero-row catalog could not have answered
    // them locally.
    let scattered = sharded
        .catalog()
        .tracer()
        .metrics()
        .counter("shard.scatter.queries");
    assert!(scattered > 0, "no span was routed through the fleet");
}
