//! Request execution against the serving database.
//!
//! [`ServerDb`] abstracts over a plain in-memory [`Database`] (shard
//! nodes, tests) and a [`DurableDatabase`] (the primary behind `\serve`):
//! mutations on the durable flavour flow through its WAL-logging wrappers
//! so served writes are as durable as shell writes.  Execution returns
//! `Err(String)` for *request* failures — the session survives; only
//! frame damage (handled a layer up) NACKs.

use asr_core::{AsrConfig, Cell, Database, Decomposition, Extension, Row, Snapshot};
use asr_durable::{DurableDatabase, Storage};
use asr_gom::PathExpression;
use asr_net::{RequestBody, ResponseBody, ShardHealth};
use std::collections::BTreeSet;

/// The serving view of a database: plain or durable.
pub enum ServerDb<'a, S: Storage> {
    /// An in-memory database (shard slices, chaos tests).
    Plain(&'a mut Database),
    /// A WAL-backed database (the served primary).
    Durable(&'a mut DurableDatabase<S>),
}

impl<S: Storage> ServerDb<'_, S> {
    /// Read-only view for queries and stats.
    pub fn db(&self) -> &Database {
        match self {
            ServerDb::Plain(db) => db,
            ServerDb::Durable(db) => db.database(),
        }
    }

    /// Pin a snapshot-isolated read view at the current commit epoch —
    /// the MVCC handle concurrent readers answer from while this view
    /// keeps executing mutations.
    pub fn snapshot(&mut self) -> Snapshot {
        match self {
            ServerDb::Plain(db) => db.snapshot(),
            ServerDb::Durable(db) => db.snapshot(),
        }
    }
}

/// True when [`execute_snapshot`] can answer `body` without the live
/// database: pure partition reads a pinned [`Snapshot`] serves
/// bit-identically, plus `Ping`.
pub(crate) fn is_snapshot_read(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::Ping | RequestBody::ShardProbe { .. } | RequestBody::ShardScan { .. }
    )
}

/// Execute a snapshot-eligible read against a pinned view, charging
/// modeled page I/O to the snapshot's meter.  Returns `None` for bodies
/// that need the live database (mutations, OQL plans, durable control) —
/// the caller must route those through [`execute`].
pub(crate) fn execute_snapshot(
    snap: &Snapshot,
    body: &RequestBody,
) -> Option<Result<ResponseBody, String>> {
    match body {
        RequestBody::Ping => Some(Ok(ResponseBody::Ok)),
        RequestBody::ShardProbe {
            asr,
            part,
            forward,
            keys,
        } => Some(
            snap.probe(*asr as usize, *part as usize, *forward, keys)
                .map(ResponseBody::Rows)
                .map_err(|e| e.to_string()),
        ),
        RequestBody::ShardScan {
            asr,
            part,
            offset,
            frontier,
        } => Some(
            snap.scan_filter(*asr as usize, *part as usize, *offset as usize, frontier)
                .map(ResponseBody::Rows)
                .map_err(|e| e.to_string()),
        ),
        _ => None,
    }
}

fn parse_extension(name: &str) -> Result<Extension, String> {
    match name {
        "canonical" | "can" => Ok(Extension::Canonical),
        "full" => Ok(Extension::Full),
        "left" => Ok(Extension::LeftComplete),
        "right" => Ok(Extension::RightComplete),
        other => Err(format!(
            "unknown extension {other:?} (canonical|full|left|right)"
        )),
    }
}

/// Execute one request body.  `Ok` carries the response; `Err` a
/// request-level failure message.
pub(crate) fn execute<S: Storage>(
    db: &mut ServerDb<'_, S>,
    body: &RequestBody,
) -> Result<ResponseBody, String> {
    match body {
        RequestBody::Ping => Ok(ResponseBody::Ok),
        RequestBody::Query(text) => {
            let result = asr_oql::execute(db.db(), text).map_err(|e| e.to_string())?;
            Ok(ResponseBody::Table {
                columns: result.columns,
                rows: result.rows,
            })
        }
        RequestBody::Analyze(text) => {
            let report = asr_oql::explain_analyze(db.db(), text).map_err(|e| e.to_string())?;
            Ok(ResponseBody::Text(format!(
                "{}{}",
                report.result,
                report.render()
            )))
        }
        RequestBody::Instantiate { type_name } => {
            let oid = match db {
                ServerDb::Plain(d) => d.instantiate(type_name).map_err(|e| e.to_string())?,
                ServerDb::Durable(d) => d.instantiate(type_name).map_err(|e| e.to_string())?,
            };
            Ok(ResponseBody::Id(oid.as_raw()))
        }
        RequestBody::SetAttr { owner, attr, value } => {
            match db {
                ServerDb::Plain(d) => d
                    .set_attribute(*owner, attr, value.clone())
                    .map_err(|e| e.to_string())?,
                ServerDb::Durable(d) => d
                    .set_attribute(*owner, attr, value.clone())
                    .map_err(|e| e.to_string())?,
            }
            Ok(ResponseBody::Ok)
        }
        RequestBody::InsertIntoAttrSet { owner, attr, elem } => {
            let fresh = match db {
                ServerDb::Plain(d) => d
                    .insert_into_attr_set(*owner, attr, elem.clone())
                    .map_err(|e| e.to_string())?,
                ServerDb::Durable(d) => d
                    .insert_into_attr_set(*owner, attr, elem.clone())
                    .map_err(|e| e.to_string())?,
            };
            Ok(ResponseBody::Flag(fresh))
        }
        RequestBody::BindVar { name, value } => {
            match db {
                ServerDb::Plain(d) => d.bind_variable(name, value.clone()),
                ServerDb::Durable(d) => d
                    .bind_variable(name, value.clone())
                    .map_err(|e| e.to_string())?,
            }
            Ok(ResponseBody::Ok)
        }
        RequestBody::CreateAsr {
            dotted,
            extension,
            cuts,
        } => {
            let extension = parse_extension(extension)?;
            let path = PathExpression::parse(db.db().base().schema(), dotted)
                .map_err(|e| e.to_string())?;
            let decomposition = if cuts.is_empty() {
                Decomposition::binary(path.arity(false) - 1)
            } else {
                Decomposition::new(cuts.iter().map(|&c| c as usize).collect::<Vec<_>>())
                    .map_err(|e| e.to_string())?
            };
            let config = AsrConfig {
                extension,
                decomposition,
                keep_set_oids: false,
            };
            let id = match db {
                ServerDb::Plain(d) => d.create_asr_on(dotted, config).map_err(|e| e.to_string())?,
                ServerDb::Durable(d) => {
                    d.create_asr_on(dotted, config).map_err(|e| e.to_string())?
                }
            };
            Ok(ResponseBody::Id(id as u64))
        }
        RequestBody::DropAsr { asr } => {
            match db {
                ServerDb::Plain(d) => d.drop_asr(*asr as usize).map_err(|e| e.to_string())?,
                ServerDb::Durable(d) => d.drop_asr(*asr as usize).map_err(|e| e.to_string())?,
            }
            Ok(ResponseBody::Ok)
        }
        RequestBody::ListAsrs => {
            let mut out = String::new();
            for (id, asr) in db.db().asrs() {
                out.push_str(&format!(
                    "[{id}] {} ext={} dec={} rows={} pages={}\n",
                    asr.path(),
                    asr.config().extension.name(),
                    asr.config().decomposition,
                    asr.total_rows(),
                    asr.total_pages(),
                ));
            }
            if out.is_empty() {
                out.push_str("no access support relations\n");
            }
            Ok(ResponseBody::Text(out))
        }
        RequestBody::Stats => Ok(ResponseBody::Text(
            db.db().tracer().metrics().render_table(),
        )),
        RequestBody::Checkpoint { delta } => match db {
            ServerDb::Plain(_) => Err("WAL is off — serve a durable database".to_string()),
            ServerDb::Durable(d) => {
                if *delta {
                    d.checkpoint_delta().map_err(|e| e.to_string())?;
                } else {
                    d.checkpoint().map_err(|e| e.to_string())?;
                }
                Ok(ResponseBody::Ok)
            }
        },
        RequestBody::ShardProbe {
            asr,
            part,
            forward,
            keys,
        } => {
            let asr = db.db().asr(*asr as usize).map_err(|e| e.to_string())?;
            let part = asr
                .partitions()
                .get(*part as usize)
                .ok_or_else(|| format!("no partition {part}"))?;
            let rows = if *forward {
                part.lookup_first_many(keys.iter())
            } else {
                part.lookup_last_many(keys.iter())
            };
            Ok(ResponseBody::Rows(rows))
        }
        RequestBody::ShardScan {
            asr,
            part,
            offset,
            frontier,
        } => {
            let asr = db.db().asr(*asr as usize).map_err(|e| e.to_string())?;
            let part = asr
                .partitions()
                .get(*part as usize)
                .ok_or_else(|| format!("no partition {part}"))?;
            let offset = *offset as usize;
            if offset >= part.arity() {
                return Err(format!("offset {offset} outside partition"));
            }
            let wanted: BTreeSet<&Cell> = frontier.iter().collect();
            let mut hits: Vec<Row> = Vec::new();
            part.scan(|row| {
                if let Some(cell) = row.cell(offset) {
                    if wanted.contains(cell) {
                        hits.push(row.clone());
                    }
                }
            });
            Ok(ResponseBody::Rows(hits))
        }
        RequestBody::ShardStatus => {
            let d = db.db();
            let mut health = ShardHealth::default();
            for (_, asr) in d.asrs() {
                health.placed_rows += asr.total_rows() as u64;
                health.pages += asr.total_pages();
            }
            // `applied_lsn` and `requests` are stamped by the session
            // layer, which knows the replication position and counters.
            Ok(ResponseBody::ShardStatusReply(health))
        }
        RequestBody::Shutdown => Ok(ResponseBody::Ok),
    }
}
