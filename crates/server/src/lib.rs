//! `asr-server`: the serving subsystem — a multi-client server
//! multiplexing wire-protocol sessions onto one database, and a sharded
//! coordinator running scatter-gather span queries across N placement
//! slices.
//!
//! Three layers:
//!
//! * [`NetServer`] ([`session`]): per-session exactly-once execution of
//!   [`asr_net::Request`]s pulled off a [`asr_durable::Channel`].  Damaged
//!   frames are NACKed (CRC catches them), duplicate ids replay the cached
//!   response, and every request's page I/O rides back in the response —
//!   so at-least-once delivery over a chaotic link still executes each
//!   request exactly once.
//! * [`ShardedDatabase`] ([`shard`]): hash-partitions every ASR's stored
//!   rows across N in-process shard nodes (each seeded through the
//!   `LogShipper`/`ReplicaApplier` replication substrate), then answers
//!   forward/backward span queries by replaying the partition walk and
//!   broadcasting each per-partition probe/scan to all shards over the
//!   wire protocol, unioning fragments before computing the next
//!   frontier.  Per-shard I/O merges via [`asr_pagesim::IoSnapshot::merge`].
//! * [`TcpServer`]/[`TcpTransport`] ([`tcp`]): an optional real front
//!   door — the same frames over `std::net` TCP with a hand-rolled
//!   nonblocking poll loop (no extra dependencies).
//!
//! All serving metrics live under `server.*` / `shard.*` in the host
//! database's tracer registry, so `\stats` and the Prometheus exposition
//! pick them up; notable transitions emit tracer events that land in the
//! flight recorder when one is attached.

mod exec;
pub mod session;
pub mod shard;
pub mod tcp;

pub use exec::ServerDb;
pub use session::{NetServer, PumpReport};
pub use shard::{
    placement_shard, Fleet, HealthState, ShardError, ShardFaultPlan, ShardNode, ShardedDatabase,
};
pub use tcp::{TcpServer, TcpTransport};
