//! A real front door: the same frames over `std::net` TCP.
//!
//! TCP gives reliable bytes, not frames, so both sides reassemble the
//! `[len][crc][payload]` envelope from the byte stream — the length
//! word delimits, the CRC still end-to-end-checks (a proxy or a buggy
//! peer can corrupt a frame even on TCP).  The server is a hand-rolled
//! nonblocking poll loop — no extra dependencies, no threads on the
//! serving side: one [`TcpServer::poll`] pass accepts pending
//! connections, drains every socket, pumps the session multiplexer and
//! flushes responses.  Clients use [`TcpTransport`] (blocking reads
//! with a short timeout) under the ordinary exactly-once
//! [`asr_net::WireClient`].

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use asr_durable::{Channel, LosslessChannel, Storage};
use asr_net::Transport;

use crate::exec::ServerDb;
use crate::session::{NetServer, PumpReport};

/// Refuse frames claiming more than this payload (a garbage length
/// word would otherwise stall the stream waiting for terabytes).  Shared
/// with [`asr_net::decode_frame`], which applies the same cap before
/// interpreting a reassembled frame.
const MAX_FRAME: usize = asr_net::MAX_FRAME_LEN;

/// Pull one complete `[len][crc][payload]` frame off the front of
/// `buf`, if the bytes for it have all arrived.  Returns `Err(())` on a
/// ridiculous length word (protocol desync — the connection is dead).
fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ()> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(());
    }
    let total = 8 + len;
    if buf.len() < total {
        return Ok(None);
    }
    let frame: Vec<u8> = buf.drain(..total).collect();
    Ok(Some(frame))
}

struct Conn {
    stream: TcpStream,
    sid: usize,
    inbuf: Vec<u8>,
    dead: bool,
}

/// A nonblocking TCP server multiplexing wire sessions onto one
/// database via an inner [`NetServer`].
pub struct TcpServer {
    listener: TcpListener,
    server: NetServer,
    conns: Vec<Conn>,
}

impl TcpServer {
    /// Bind (e.g. `"127.0.0.1:0"` for an ephemeral port) and switch the
    /// listener to nonblocking accepts.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpServer {
            listener,
            server: NetServer::new(),
            conns: Vec::new(),
        })
    }

    /// The bound address (port resolution for ephemeral binds).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The inner session multiplexer.
    pub fn server(&self) -> &NetServer {
        &self.server
    }

    /// Live (accepted, not yet closed) connections.
    pub fn connection_count(&self) -> usize {
        self.conns.iter().filter(|c| !c.dead).count()
    }

    /// One nonblocking pass: accept pending connections, drain every
    /// socket into frames, pump each session, flush responses.
    pub fn poll<S: Storage>(&mut self, db: &mut ServerDb<'_, S>) -> io::Result<PumpReport> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    let sid = self.server.open_session();
                    db.db()
                        .tracer()
                        .metrics()
                        .inc_counter("server.tcp.accepts", 1);
                    self.conns.push(Conn {
                        stream,
                        sid,
                        inbuf: Vec::new(),
                        dead: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        let mut total = PumpReport::default();
        for conn in &mut self.conns {
            if conn.dead {
                continue;
            }
            // Drain the socket.
            let mut chunk = [0u8; 4096];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            // Reassemble frames and pump them through the session.
            let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
            loop {
                match take_frame(&mut conn.inbuf) {
                    Ok(Some(frame)) => rx.send(frame),
                    Ok(None) => break,
                    Err(()) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            let report = self.server.pump_session(conn.sid, db, &mut rx, &mut tx);
            total.executed += report.executed;
            total.replayed += report.replayed;
            total.nacked += report.nacked;
            total.dropped_stale += report.dropped_stale;
            // Flush responses; a full kernel buffer gets a bounded spin.
            while let Some(frame) = tx.recv() {
                let mut off = 0;
                while off < frame.len() {
                    match conn.stream.write(&frame[off..]) {
                        Ok(n) => off += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::yield_now(),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                if conn.dead {
                    break;
                }
            }
            if !self.server.session_open(conn.sid) {
                conn.dead = true;
            }
        }
        self.conns.retain(|c| !c.dead);
        Ok(total)
    }

    /// Serve until at least one session has been opened and every
    /// session has shut down (the `\serve` loop).  Polls with a short
    /// sleep so an idle server doesn't spin a core.
    pub fn serve_until_shutdown<S: Storage>(
        &mut self,
        db: &mut ServerDb<'_, S>,
    ) -> io::Result<PumpReport> {
        let mut total = PumpReport::default();
        loop {
            let report = self.poll(db)?;
            total.executed += report.executed;
            total.replayed += report.replayed;
            total.nacked += report.nacked;
            total.dropped_stale += report.dropped_stale;
            let all_closed = (0..self.server.session_count()).all(|s| !self.server.session_open(s));
            if self.server.session_count() > 0 && all_closed && self.conns.is_empty() {
                return Ok(total);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Client-side TCP adapter for [`asr_net::WireClient`]: blocking reads
/// with a short timeout, so `poll` waits briefly for the response
/// instead of spinning the retry loop dry.
pub struct TcpTransport {
    stream: TcpStream,
    inbuf: Vec<u8>,
}

impl TcpTransport {
    /// Connect and arm the read timeout.
    pub fn connect(addr: &SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            inbuf: Vec::new(),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: Vec<u8>) {
        // Delivery failures surface as a missing response; the wire
        // client retries.
        let _ = self.stream.write_all(&frame);
        let _ = self.stream.flush();
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        if let Ok(Some(frame)) = take_frame(&mut self.inbuf) {
            return Some(frame);
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    match take_frame(&mut self.inbuf) {
                        Ok(Some(frame)) => return Some(frame),
                        Ok(None) => continue,
                        Err(()) => return None,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return None;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reassembly_handles_partial_and_garbage() {
        let payload = b"hello".to_vec();
        let frame = asr_durable::frame(&payload);
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame[..6]);
        assert_eq!(take_frame(&mut buf), Ok(None));
        buf.extend_from_slice(&frame[6..]);
        assert_eq!(take_frame(&mut buf), Ok(Some(frame.clone())));
        assert!(buf.is_empty());
        // Two frames back to back come out one at a time.
        buf.extend_from_slice(&frame);
        buf.extend_from_slice(&frame);
        assert_eq!(take_frame(&mut buf), Ok(Some(frame.clone())));
        assert_eq!(take_frame(&mut buf), Ok(Some(frame)));
        // A ridiculous length word is a desync.
        let mut garbage = (u32::MAX).to_le_bytes().to_vec();
        garbage.extend_from_slice(&[0u8; 8]);
        assert_eq!(take_frame(&mut garbage), Err(()));
    }
}
