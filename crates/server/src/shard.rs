//! Sharded scatter-gather serving: hash placement plus a coordinator
//! that replays the partition walk over the wire.
//!
//! A [`ShardedDatabase`] is built *from* a durable primary: each of the
//! N [`ShardNode`]s is seeded through the replication substrate (its own
//! [`ReplicaApplier`] fed by [`replicate`]), then cut down to a
//! **placement slice** — for every ASR partition, a row lives on exactly
//! one shard, chosen by a deterministic hash of `(asr, partition, row)`
//! over the row's wire encoding.  The coordinator keeps a **catalog**
//! copy whose ASRs are retained to *zero* rows: it contributes schema,
//! decomposition metadata and the naive fallback over the (complete)
//! object base, but every supported span answer must come off the
//! shards.
//!
//! Scatter-gather replays `forward_supported` / `backward_supported`
//! (see `asr-core`'s `query.rs`) partition by partition: each border
//! probe or interior scan is broadcast to **all** shards as a
//! [`RequestBody::ShardProbe`] / [`RequestBody::ShardScan`], and the row
//! fragments are unioned before the next frontier is computed.
//! Broadcasting (rather than routing) is what makes the walk correct
//! under *any* row placement: the frontier join between partitions is by
//! value, so the rows that continue a path can live anywhere.  Because
//! shard slices partition each stored partition's row set exactly, the
//! union equals the single-node row set and the final projection is
//! bit-identical to the unsharded answer.
//!
//! Every broadcast rides the exactly-once wire client, so a chaotic
//! shard link (dropped, flipped, duplicated frames) costs retries and
//! backoff ticks — never a wrong answer.  Per-shard I/O comes back in
//! each response envelope and is merged via [`IoSnapshot::merge`];
//! [`Fleet::take_io`] exposes the merged cost and the per-shard maximum
//! (the scatter critical path) to benchmarks and `\shards status`.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use asr_core::{AsrError, AsrId, Cell, Database, Row, Snapshot};
use asr_durable::{
    replicate, Channel, ChannelStats, ChaosProfile, DurableDatabase, FaultyChannel,
    LosslessChannel, MemStorage, ReplicaApplier, ReplicateOptions, Storage,
};
use asr_gom::{Oid, PathExpression};
use asr_net::{
    ClientError, ClientStats, RequestBody, ResponseBody, ShardHealth, Transport, Writer,
};
use asr_oql::SpanRouter;
use asr_pagesim::IoSnapshot;

use crate::exec::ServerDb;
use crate::session::NetServer;

/// A scatter-gather failure: seeding, a shard link, or a remote error.
#[derive(Debug)]
pub enum ShardError {
    /// Seeding or re-seeding a shard through replication failed.
    Seed(String),
    /// A shard link stayed down past the wire client's retry budget.
    Link {
        /// Which shard.
        shard: usize,
        /// The client-side failure.
        error: ClientError,
    },
    /// A shard executed the request and answered with an error.
    Remote {
        /// Which shard.
        shard: usize,
        /// The remote error message.
        message: String,
    },
    /// A shard answered with a response body of the wrong shape.
    Protocol {
        /// Which shard.
        shard: usize,
        /// What came back.
        got: &'static str,
    },
    /// A catalog-side ASR error.
    Asr(AsrError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Seed(msg) => write!(f, "shard seeding failed: {msg}"),
            ShardError::Link { shard, error } => write!(f, "shard {shard} link failed: {error}"),
            ShardError::Remote { shard, message } => write!(f, "shard {shard} error: {message}"),
            ShardError::Protocol { shard, got } => {
                write!(f, "shard {shard} protocol error: unexpected {got}")
            }
            ShardError::Asr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<AsrError> for ShardError {
    fn from(e: AsrError) -> Self {
        ShardError::Asr(e)
    }
}

impl From<ShardError> for AsrError {
    fn from(e: ShardError) -> Self {
        match e {
            ShardError::Asr(e) => e,
            other => AsrError::Shard(other.to_string()),
        }
    }
}

/// Which shard of `n` owns `row` of `(asr, partition)` — a deterministic
/// hash of the row's wire encoding, so placement is stable across
/// re-seeds and independent of insertion order.
pub fn placement_shard(asr: AsrId, partition: usize, row: &Row, n: usize) -> usize {
    let mut w = Writer::new();
    w.u64(asr as u64);
    w.u64(partition as u64);
    w.row(row);
    let mut h = DefaultHasher::new();
    w.into_bytes().hash(&mut h);
    (h.finish() % n.max(1) as u64) as usize
}

/// One in-process shard: a placement-slice database behind its own
/// exactly-once server, reached through a pair of (optionally chaotic)
/// channels.  Implements [`Transport`], so a [`asr_net::WireClient`] can
/// drive it like a remote peer: `send` enqueues the request frame,
/// `poll` pumps the server once and dequeues a response frame.
pub struct ShardNode {
    index: usize,
    db: Database,
    applier: ReplicaApplier,
    server: NetServer,
    sid: usize,
    inbox: FaultyChannel,
    outbox: FaultyChannel,
    placed_rows: u64,
    /// When set, probe/scan reads answer from this pinned MVCC view of
    /// the slice instead of the live database (opt-in, see
    /// [`ShardedDatabase::enable_snapshot_reads`]).
    snap: Option<Snapshot>,
}

impl ShardNode {
    /// The shard's serving slice (tests and status inspection).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The commit epoch reads are pinned to, when snapshot serving is on.
    pub fn snapshot_epoch(&self) -> Option<u64> {
        self.snap.as_ref().map(|s| s.epoch())
    }

    /// Rows this shard kept at the last placement.
    pub fn placed_rows(&self) -> u64 {
        self.placed_rows
    }

    /// The replication LSN the shard's applier has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applier.status().applied_lsn
    }

    /// Fault accounting for the (request, response) channel pair.
    pub fn channel_stats(&self) -> (ChannelStats, ChannelStats) {
        (self.inbox.stats(), self.outbox.stats())
    }

    /// Rebuild the serving slice from the applier's current snapshot:
    /// reload, then retain only this shard's placement share.
    fn replace_slice(&mut self, n: usize) -> Result<(), ShardError> {
        let snap = self
            .applier
            .snapshot()
            .ok_or_else(|| ShardError::Seed("applier has no snapshot".to_string()))?;
        let mut db =
            Database::load_from_string(&snap).map_err(|e| ShardError::Seed(e.to_string()))?;
        let ids: Vec<AsrId> = db.asrs().map(|(id, _)| id).collect();
        let me = self.index;
        let mut placed = 0u64;
        for id in ids {
            placed += db
                .retain_asr_rows(id, |part, row| placement_shard(id, part, row, n) == me)
                .map_err(|e| ShardError::Seed(e.to_string()))?;
        }
        self.placed_rows = placed;
        self.db = db;
        let lsn = self.applied_lsn();
        self.server.set_applied_lsn(lsn);
        // Snapshot serving pins the *new* slice: a reseed moves the
        // epoch forward, it never leaves readers on the stale image.
        if self.snap.is_some() {
            self.snap = Some(self.db.snapshot());
        }
        Ok(())
    }
}

impl Transport for ShardNode {
    fn send(&mut self, frame: Vec<u8>) {
        self.inbox.send(frame);
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        let Self {
            db,
            server,
            sid,
            inbox,
            outbox,
            snap,
            ..
        } = self;
        let mut view = ServerDb::<MemStorage>::Plain(db);
        match snap {
            Some(snap) => server.pump_session_snapshot(*sid, &mut view, snap, inbox, outbox),
            None => server.pump_session(*sid, &mut view, inbox, outbox),
        };
        outbox.recv()
    }
}

/// The coordinator's client side: one exactly-once wire client per
/// shard, plus merged scatter I/O accounting.  Implements
/// [`SpanRouter`], so `asr_oql::execute_routed` runs whole OQL plans
/// scatter-gather — the `db` the executor passes in is the catalog.
pub struct Fleet {
    shards: Vec<asr_net::WireClient<ShardNode>>,
    io: IoSnapshot,
    shard_pages: Vec<u64>,
}

impl Fleet {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the fleet has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Per-shard wire-client stats (retries, NACKs, backoff ticks).
    pub fn client_stats(&self) -> Vec<ClientStats> {
        self.shards.iter().map(|c| c.stats()).collect()
    }

    /// Per-shard channel fault stats.
    pub fn channel_stats(&self) -> Vec<(ChannelStats, ChannelStats)> {
        self.shards
            .iter()
            .map(|c| c.transport().channel_stats())
            .collect()
    }

    /// Direct access to a shard node (tests).
    pub fn node(&self, i: usize) -> &ShardNode {
        self.shards[i].transport()
    }

    /// Take the merged scatter I/O and the per-shard page maximum
    /// accumulated since the last call — `(merged, max_per_shard)`.
    pub fn take_io(&mut self) -> (IoSnapshot, u64) {
        let merged = self.io;
        let max = self.shard_pages.iter().copied().max().unwrap_or(0);
        self.io = IoSnapshot::default();
        self.shard_pages.iter_mut().for_each(|p| *p = 0);
        (merged, max)
    }

    /// Broadcast one request to every shard, union the row fragments,
    /// and fold each shard's I/O into the scatter accounting.
    fn broadcast_rows(
        &mut self,
        db: &Database,
        body: &RequestBody,
    ) -> Result<BTreeSet<Row>, ShardError> {
        let metrics = db.tracer().metrics();
        metrics.inc_counter("shard.scatter.broadcasts", 1);
        let mut union: BTreeSet<Row> = BTreeSet::new();
        for (i, client) in self.shards.iter_mut().enumerate() {
            let resp = client
                .call(body.clone())
                .map_err(|error| ShardError::Link { shard: i, error })?;
            self.io.merge(&resp.io);
            self.shard_pages[i] += resp.io.accesses();
            match resp.body {
                ResponseBody::Rows(rows) => union.extend(rows),
                ResponseBody::Err(message) => return Err(ShardError::Remote { shard: i, message }),
                other => {
                    return Err(ShardError::Protocol {
                        shard: i,
                        got: other.label(),
                    })
                }
            }
        }
        metrics.inc_counter("shard.scatter.rows", union.len() as u64);
        Ok(union)
    }

    /// Scatter-gather forward span query `Q_{i,j}(fw)` through ASR `id`,
    /// falling back to the catalog (naive evaluation over the full
    /// object base) exactly where single-node evaluation would.
    pub fn forward(
        &mut self,
        db: &Database,
        id: AsrId,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        let asr = db.asr(id)?;
        if !asr.supports(i, j) {
            // Invalid spans error and unsupported spans fall back to
            // naive traversal — identically to `Database::forward`,
            // which sees the same (complete) object base.
            return db.forward(id, i, j, start);
        }
        let metrics = db.tracer().metrics();
        metrics.inc_counter("shard.scatter.queries", 1);
        let io_before = self.io;
        let ci = asr.column_of(i);
        let cj = asr.column_of(j);
        let dec = asr.config().decomposition.clone();
        let mut frontier: BTreeSet<Cell> = BTreeSet::from([Cell::Oid(start)]);
        let mut result: Vec<Cell> = Vec::new();
        for (idx, (a, b)) in dec.partitions().enumerate() {
            if b <= ci {
                continue;
            }
            if a >= cj {
                break;
            }
            let keys: Vec<Cell> = frontier.iter().cloned().collect();
            let body = if a < ci {
                RequestBody::ShardScan {
                    asr: id as u32,
                    part: idx as u32,
                    offset: (ci - a) as u32,
                    frontier: keys,
                }
            } else {
                RequestBody::ShardProbe {
                    asr: id as u32,
                    part: idx as u32,
                    forward: true,
                    keys,
                }
            };
            let rows = self.broadcast_rows(db, &body).map_err(AsrError::from)?;
            if cj <= b {
                let offset = cj - a;
                let out: BTreeSet<Cell> =
                    rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
                result = out.into_iter().collect();
                break;
            }
            frontier = rows.iter().filter_map(|r| r.last().clone()).collect();
            if frontier.is_empty() {
                break;
            }
        }
        self.note_scatter_pages(db, &io_before);
        Ok(result)
    }

    /// Scatter-gather backward span query `Q_{i,j}(bw)` through ASR
    /// `id`, with the same catalog fallback as [`Fleet::forward`].
    pub fn backward(
        &mut self,
        db: &Database,
        id: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        let asr = db.asr(id)?;
        if !asr.supports(i, j) {
            return db.backward(id, i, j, target);
        }
        let metrics = db.tracer().metrics();
        metrics.inc_counter("shard.scatter.queries", 1);
        let io_before = self.io;
        let ci = asr.column_of(i);
        let cj = asr.column_of(j);
        let dec = asr.config().decomposition.clone();
        let spans: Vec<(usize, usize)> = dec.partitions().collect();
        let mut frontier: BTreeSet<Cell> = BTreeSet::from([target.clone()]);
        let mut result: Vec<Cell> = Vec::new();
        for (idx, &(a, b)) in spans.iter().enumerate().rev() {
            if a >= cj {
                continue;
            }
            if b <= ci {
                break;
            }
            let keys: Vec<Cell> = frontier.iter().cloned().collect();
            let body = if b > cj {
                RequestBody::ShardScan {
                    asr: id as u32,
                    part: idx as u32,
                    offset: (cj - a) as u32,
                    frontier: keys,
                }
            } else {
                RequestBody::ShardProbe {
                    asr: id as u32,
                    part: idx as u32,
                    forward: false,
                    keys,
                }
            };
            let rows = self.broadcast_rows(db, &body).map_err(AsrError::from)?;
            if ci >= a {
                let offset = ci - a;
                let out: BTreeSet<Cell> =
                    rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
                result = out.into_iter().collect();
                break;
            }
            frontier = rows.iter().filter_map(|r| r.first().clone()).collect();
            if frontier.is_empty() {
                break;
            }
        }
        self.note_scatter_pages(db, &io_before);
        Ok(result.into_iter().filter_map(|c| c.as_oid()).collect())
    }

    fn note_scatter_pages(&self, db: &Database, before: &IoSnapshot) {
        let pages = (self.io.reads + self.io.writes) - (before.reads + before.writes);
        db.tracer().metrics().observe(
            "shard.scatter.pages",
            &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0],
            pages as f64,
        );
    }

    /// Broadcast a status probe; one health record per shard.
    pub fn status(&mut self) -> Result<Vec<ShardHealth>, ShardError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, client) in self.shards.iter_mut().enumerate() {
            let resp = client
                .call(RequestBody::ShardStatus)
                .map_err(|error| ShardError::Link { shard: i, error })?;
            match resp.body {
                ResponseBody::ShardStatusReply(health) => out.push(health),
                ResponseBody::Err(message) => return Err(ShardError::Remote { shard: i, message }),
                other => {
                    return Err(ShardError::Protocol {
                        shard: i,
                        got: other.label(),
                    })
                }
            }
        }
        Ok(out)
    }
}

impl SpanRouter for Fleet {
    fn forward_span(
        &mut self,
        db: &Database,
        path: &PathExpression,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        match db.find_supporting_asr(path, i, j) {
            Some(id) => self.forward(db, id, i, j, start),
            // No supporting ASR anywhere: unindexed traversal over the
            // catalog's complete object base, like `navigate_forward`.
            None => db.navigate_forward(path, i, j, start),
        }
    }

    fn backward_span(
        &mut self,
        db: &Database,
        asr: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        self.backward(db, asr, i, j, target)
    }
}

/// The scatter-gather coordinator: a zero-row catalog plus a [`Fleet`]
/// of placement shards, together answering the same span queries (and
/// whole OQL statements) as the primary they were seeded from.
pub struct ShardedDatabase {
    catalog: Database,
    fleet: Fleet,
}

impl ShardedDatabase {
    /// Seed `n` shards (and the catalog) from a durable primary through
    /// the replication substrate.  `chaos` arms every shard's serving
    /// channels with a fault profile (seeding links stay lossless);
    /// queries then pay retries, never correctness.
    pub fn from_primary<S: Storage>(
        primary: &DurableDatabase<S>,
        n: usize,
        chaos: Option<(ChaosProfile, u64)>,
    ) -> Result<Self, ShardError> {
        if n == 0 {
            return Err(ShardError::Seed("need at least one shard".to_string()));
        }
        let catalog = Self::seed_catalog(primary)?;
        let tracer = catalog.tracer().clone();
        let mut shards = Vec::with_capacity(n);
        for index in 0..n {
            let mut applier = ReplicaApplier::new();
            let mut link = LosslessChannel::new();
            replicate(
                primary,
                &mut applier,
                &mut link,
                &ReplicateOptions::default(),
            )
            .map_err(|e| ShardError::Seed(e.to_string()))?;
            let (inbox_profile, inbox_seed, outbox_profile, outbox_seed) = match chaos {
                Some((profile, seed)) => {
                    let base = seed ^ ((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    (profile, base, profile, base.wrapping_add(1))
                }
                None => (ChaosProfile::default(), 0, ChaosProfile::default(), 0),
            };
            let mut server = NetServer::new();
            let sid = server.open_session();
            let mut node = ShardNode {
                index,
                db: Database::new(primary.database().base().schema().clone()),
                applier,
                server,
                sid,
                inbox: FaultyChannel::new(inbox_profile, inbox_seed),
                outbox: FaultyChannel::new(outbox_profile, outbox_seed),
                placed_rows: 0,
                snap: None,
            };
            node.replace_slice(n)?;
            tracer.event(
                "shard.place",
                &[
                    ("shard", index.to_string()),
                    ("rows", node.placed_rows.to_string()),
                    ("lsn", node.applied_lsn().to_string()),
                ],
            );
            tracer
                .metrics()
                .inc_counter("shard.place.rows", node.placed_rows);
            shards.push(asr_net::WireClient::new(node));
        }
        tracer.metrics().set_gauge("shard.count", n as f64);
        let shard_pages = vec![0; n];
        Ok(ShardedDatabase {
            catalog,
            fleet: Fleet {
                shards,
                io: IoSnapshot::default(),
                shard_pages,
            },
        })
    }

    /// Replicate the primary into a catalog copy and retain every ASR to
    /// zero rows: metadata and naive fallback only — supported span
    /// answers must come off the shards.
    fn seed_catalog<S: Storage>(primary: &DurableDatabase<S>) -> Result<Database, ShardError> {
        let mut applier = ReplicaApplier::new();
        let mut link = LosslessChannel::new();
        replicate(
            primary,
            &mut applier,
            &mut link,
            &ReplicateOptions::default(),
        )
        .map_err(|e| ShardError::Seed(e.to_string()))?;
        let snap = applier
            .snapshot()
            .ok_or_else(|| ShardError::Seed("catalog applier has no snapshot".to_string()))?;
        let mut catalog =
            Database::load_from_string(&snap).map_err(|e| ShardError::Seed(e.to_string()))?;
        let ids: Vec<AsrId> = catalog.asrs().map(|(id, _)| id).collect();
        for id in ids {
            catalog
                .retain_asr_rows(id, |_, _| false)
                .map_err(|e| ShardError::Seed(e.to_string()))?;
        }
        Ok(catalog)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.fleet.len()
    }

    /// Serve every shard's probe/scan reads from a pinned MVCC snapshot
    /// of its slice instead of the live database.  Opt-in, so existing
    /// charged-I/O profiles are unchanged unless asked for; the pin is
    /// refreshed on every reseed so reads track the durable tip at
    /// reseed granularity.
    pub fn enable_snapshot_reads(&mut self) {
        for client in &mut self.fleet.shards {
            let node = client.transport_mut();
            node.snap = Some(node.db.snapshot());
        }
    }

    /// The catalog database (metadata + naive fallback).
    pub fn catalog(&self) -> &Database {
        &self.catalog
    }

    /// The shard fleet (I/O accounting, client stats, nodes).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Mutable fleet access (taking I/O, tests).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// Scatter-gather forward span query — same contract as
    /// [`Database::forward`] on the primary.
    pub fn forward(
        &mut self,
        id: AsrId,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        let Self { catalog, fleet } = self;
        fleet.forward(catalog, id, i, j, start)
    }

    /// Scatter-gather backward span query — same contract as
    /// [`Database::backward`] on the primary.
    pub fn backward(
        &mut self,
        id: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        let Self { catalog, fleet } = self;
        fleet.backward(catalog, id, i, j, target)
    }

    /// Run a whole OQL statement scatter-gather: the plan executes on
    /// the catalog, every span it touches routes through the fleet.
    pub fn query(&mut self, text: &str) -> asr_oql::Result<asr_oql::ResultSet> {
        let Self { catalog, fleet } = self;
        asr_oql::execute_routed(catalog, text, fleet)
    }

    /// Broadcast a health probe to every shard.
    pub fn status(&mut self) -> Result<Vec<ShardHealth>, ShardError> {
        self.fleet.status()
    }

    /// Render `\shards status` lines.
    pub fn render_status(&mut self) -> Result<String, ShardError> {
        let healths = self.status()?;
        let mut out = String::new();
        for (i, h) in healths.iter().enumerate() {
            out.push_str(&format!(
                "shard {i}: rows={} pages={} applied_lsn={} requests={}\n",
                h.placed_rows, h.pages, h.applied_lsn, h.requests
            ));
        }
        let (merged, max) = self.fleet.take_io();
        out.push_str(&format!(
            "scatter: merged_pages={} max_shard_pages={max}\n",
            merged.accesses()
        ));
        Ok(out)
    }

    /// Catch every shard (and the catalog) up to the primary's current
    /// durable tip: each applier replays the missing WAL suffix (or a
    /// delta bootstrap when segments were pruned), then the serving
    /// slice is rebuilt and re-placed.  Mutations flow through the
    /// primary; this is how they reach the fleet.
    pub fn reseed<S: Storage>(&mut self, primary: &DurableDatabase<S>) -> Result<(), ShardError> {
        // The rebuilt catalog adopts the old tracer so accumulated
        // `shard.*` metrics and attached sinks survive the reseed.
        let tracer = self.catalog.tracer().clone();
        let mut catalog = Self::seed_catalog(primary)?;
        catalog.adopt_tracer(tracer.clone());
        self.catalog = catalog;
        let n = self.fleet.len();
        for client in &mut self.fleet.shards {
            let node = client.transport_mut();
            let mut link = LosslessChannel::new();
            replicate(
                primary,
                &mut node.applier,
                &mut link,
                &ReplicateOptions::default(),
            )
            .map_err(|e| ShardError::Seed(e.to_string()))?;
            node.replace_slice(n)?;
            tracer.event(
                "shard.reseed",
                &[
                    ("shard", node.index.to_string()),
                    ("rows", node.placed_rows.to_string()),
                    ("lsn", node.applied_lsn().to_string()),
                ],
            );
            tracer.metrics().inc_counter("shard.reseeds", 1);
        }
        Ok(())
    }
}
