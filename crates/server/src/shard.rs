//! Sharded scatter-gather serving: hash placement plus a coordinator
//! that replays the partition walk over the wire.
//!
//! A [`ShardedDatabase`] is built *from* a durable primary: each of the
//! N [`ShardNode`]s is seeded through the replication substrate (its own
//! [`ReplicaApplier`] fed by [`replicate`]), then cut down to a
//! **placement slice** — for every ASR partition, a row lives on exactly
//! one shard, chosen by a deterministic hash of `(asr, partition, row)`
//! over the row's wire encoding.  The coordinator keeps a **catalog**
//! copy whose ASRs are retained to *zero* rows: it contributes schema,
//! decomposition metadata and the naive fallback over the (complete)
//! object base, but every supported span answer must come off the
//! shards.
//!
//! Scatter-gather replays `forward_supported` / `backward_supported`
//! (see `asr-core`'s `query.rs`) partition by partition: each border
//! probe or interior scan is broadcast to **all** shards as a
//! [`RequestBody::ShardProbe`] / [`RequestBody::ShardScan`], and the row
//! fragments are unioned before the next frontier is computed.
//! Broadcasting (rather than routing) is what makes the walk correct
//! under *any* row placement: the frontier join between partitions is by
//! value, so the rows that continue a path can live anywhere.  Because
//! shard slices partition each stored partition's row set exactly, the
//! union equals the single-node row set and the final projection is
//! bit-identical to the unsharded answer.
//!
//! # Fault domains
//!
//! Every shard is a fault domain with its own health state machine,
//! driven by per-request deadlines (a bounded wire-client attempt
//! budget) and a deterministic, tick-based health check:
//!
//! ```text
//! Up ──deadline miss──▶ Suspect ──miss──▶ Down ──tick──▶ Reseeding ──▶ Up
//!  ▲                       │                                  │
//!  └───────probe ok────────┘          failed attempt (backoff)┴──▶ Down
//! ```
//!
//! While a shard is `Down`/`Reseeding`, scatter-gather keeps serving in
//! **degraded mode**: surviving shards answer, and the coordinator
//! brands the result with the missing shard set — on the wire as the
//! response's `partial` field, in the shell as a `partial: missing
//! shards {…}` trailer — never a silently wrong union.  Recovery rides
//! the paper's central property: ASR slices are redundant, derived
//! state, so [`ShardedDatabase::tick`] re-seeds a replacement node
//! through [`replicate`]/[`ReplicaApplier`] (delta catch-up when the
//! crash retained the applier base, full bootstrap otherwise) and the
//! rebuilt slice is swapped in atomically.  Every transition emits a
//! typed flight-recorder event (`shard.suspect`, `shard.down`,
//! `shard.reseed.begin`/`end`, `shard.degraded_read`) and
//! `shard.health.*` metrics.
//!
//! Every broadcast rides the exactly-once wire client, so a chaotic
//! shard link (dropped, flipped, duplicated frames) costs retries and
//! backoff ticks — never a wrong answer.  Per-shard I/O comes back in
//! each response envelope and is merged via [`IoSnapshot::merge`];
//! [`Fleet::take_io`] exposes the merged cost and the per-shard maximum
//! (the scatter critical path) to benchmarks and `\shards status`.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use asr_core::{AsrError, AsrId, Cell, Database, Row, Snapshot};
use asr_durable::{
    replicate, Channel, ChannelStats, ChaosProfile, DurableDatabase, FaultyChannel,
    LosslessChannel, MemStorage, Need, ReplicaApplier, ReplicateOptions, ShipReport, Storage,
};
use asr_gom::{Oid, PathExpression};
use asr_net::{
    ClientError, ClientStats, RequestBody, ResponseBody, ShardHealth, Transport, Writer,
};
use asr_obs::Tracer;
use asr_oql::SpanRouter;
use asr_pagesim::IoSnapshot;

use crate::exec::ServerDb;
use crate::session::NetServer;

/// Consecutive deadline misses before `Suspect` escalates to `Down`.
const DOWN_AFTER_MISSES: u32 = 2;
/// Base and cap (in health-check ticks) for the reseed retry backoff:
/// `min(cap, base << (attempt - 1))` — the same shape the wire client
/// and the replication pump charge.
const RESEED_BACKOFF_BASE: u64 = 1;
const RESEED_BACKOFF_CAP: u64 = 8;
/// Histogram bounds for ticks a shard spends Down before recovering.
const RECOVERY_TICK_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// A scatter-gather failure: seeding, a shard link, or a remote error.
#[derive(Debug)]
pub enum ShardError {
    /// Seeding or re-seeding a shard through replication failed.
    Seed(String),
    /// A shard link stayed down past the wire client's retry budget.
    Link {
        /// Which shard.
        shard: usize,
        /// The client-side failure.
        error: ClientError,
    },
    /// A shard executed the request and answered with an error.
    Remote {
        /// Which shard.
        shard: usize,
        /// The remote error message.
        message: String,
    },
    /// A shard answered with a response body of the wrong shape.
    Protocol {
        /// Which shard.
        shard: usize,
        /// What came back.
        got: &'static str,
    },
    /// Every shard was unreachable: not even a degraded answer exists.
    Unavailable,
    /// A catalog-side ASR error.
    Asr(AsrError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Seed(msg) => write!(f, "shard seeding failed: {msg}"),
            ShardError::Link { shard, error } => write!(f, "shard {shard} link failed: {error}"),
            ShardError::Remote { shard, message } => write!(f, "shard {shard} error: {message}"),
            ShardError::Protocol { shard, got } => {
                write!(f, "shard {shard} protocol error: unexpected {got}")
            }
            ShardError::Unavailable => write!(f, "every shard is down; no degraded answer exists"),
            ShardError::Asr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<AsrError> for ShardError {
    fn from(e: AsrError) -> Self {
        ShardError::Asr(e)
    }
}

impl From<ShardError> for AsrError {
    fn from(e: ShardError) -> Self {
        match e {
            ShardError::Asr(e) => e,
            other => AsrError::Shard(other.to_string()),
        }
    }
}

/// Which shard of `n` owns `row` of `(asr, partition)` — a deterministic
/// hash of the row's wire encoding, so placement is stable across
/// re-seeds and independent of insertion order.
pub fn placement_shard(asr: AsrId, partition: usize, row: &Row, n: usize) -> usize {
    let mut w = Writer::new();
    w.u64(asr as u64);
    w.u64(partition as u64);
    w.row(row);
    let mut h = DefaultHasher::new();
    w.into_bytes().hash(&mut h);
    (h.finish() % n.max(1) as u64) as usize
}

/// The same SplitMix64 step the durable chaos harness uses — local so
/// fault plans derive from a seed without widening `asr-durable`'s API.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault-injection plan for one [`ShardNode`] — the
/// serving-process sibling of [`ChaosProfile`] (which damages the
/// *links*; this crashes or stalls the *node*).  Ops are counted per
/// wire poll, so a schedule derived from a seed plays back identically
/// run over run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardFaultPlan {
    /// Crash (stop answering, permanently) at this poll count.
    pub crash_at_op: Option<u64>,
    /// Begin swallowing polls at this poll count…
    pub stall_at_op: Option<u64>,
    /// …for this many polls (the node then resumes on its own).
    pub stall_ops: u64,
    /// A crash also loses the node's retained replica base, forcing the
    /// replacement through a **full** bootstrap instead of delta
    /// catch-up.
    pub lose_applier: bool,
    /// The replacement node itself crashes mid-bootstrap this many
    /// times before a reseed finally sticks.
    pub reseed_crashes: u32,
}

impl ShardFaultPlan {
    /// A hostile plan derived deterministically from `seed`, mirroring
    /// [`ChaosProfile::from_seed`]: every schedule gets either a crash
    /// or a stall (sometimes both), a third lose their replica base,
    /// and a third crash again during the reseed.
    pub fn from_seed(seed: u64) -> Self {
        let mut r = seed ^ 0x0FA7_A1D0;
        let crash = !splitmix(&mut r).is_multiple_of(3);
        let stall = !crash || splitmix(&mut r).is_multiple_of(3);
        ShardFaultPlan {
            crash_at_op: crash.then(|| 1 + splitmix(&mut r) % 24),
            stall_at_op: stall.then(|| 1 + splitmix(&mut r) % 24),
            stall_ops: 4 + splitmix(&mut r) % 24,
            lose_applier: splitmix(&mut r).is_multiple_of(3),
            reseed_crashes: splitmix(&mut r).is_multiple_of(3) as u32
                * (1 + (splitmix(&mut r) % 2) as u32),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_quiet(&self) -> bool {
        *self == ShardFaultPlan::default()
    }

    /// One-line human description for status output.
    pub fn describe(&self) -> String {
        if self.is_quiet() {
            return "quiet (no injections)".to_string();
        }
        let mut parts = Vec::new();
        if let Some(at) = self.crash_at_op {
            parts.push(format!("crash at op {at}"));
        }
        if let Some(at) = self.stall_at_op {
            parts.push(format!("stall at op {at} for {} op(s)", self.stall_ops));
        }
        if self.lose_applier {
            parts.push("replica base lost on crash".to_string());
        }
        if self.reseed_crashes > 0 {
            parts.push(format!("{} crash(es) mid-reseed", self.reseed_crashes));
        }
        parts.join(", ")
    }
}

/// One shard's position in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Serving normally.
    #[default]
    Up,
    /// Missed a deadline; still queried, one more miss goes Down.
    Suspect,
    /// Unreachable: excluded from scatter, awaiting a reseed slot.
    Down,
    /// A replacement node is bootstrapping (transient within a tick).
    Reseeding,
}

impl HealthState {
    /// Lowercase label for status lines and events.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Reseeding => "reseeding",
        }
    }
}

/// Coordinator-side health bookkeeping for one shard.
#[derive(Debug, Clone, Copy, Default)]
struct HealthRecord {
    state: HealthState,
    /// Consecutive deadline misses.
    misses: u32,
    /// Reseed attempts since the shard went Down.
    reseed_attempts: u32,
    /// Earliest tick the next reseed attempt may run (backoff gate).
    backoff_until: u64,
    /// Tick the shard went Down (ticks-to-recover accounting).
    down_since: Option<u64>,
}

/// One in-process shard: a placement-slice database behind its own
/// exactly-once server, reached through a pair of (optionally chaotic)
/// channels.  Implements [`Transport`], so a [`asr_net::WireClient`] can
/// drive it like a remote peer: `send` enqueues the request frame,
/// `poll` pumps the server once and dequeues a response frame.  An
/// armed [`ShardFaultPlan`] makes `poll` crash or stall the node on a
/// deterministic schedule.
pub struct ShardNode {
    index: usize,
    db: Database,
    applier: ReplicaApplier,
    server: NetServer,
    sid: usize,
    inbox: FaultyChannel,
    outbox: FaultyChannel,
    placed_rows: u64,
    /// When set, probe/scan reads answer from this pinned MVCC view of
    /// the slice instead of the live database (opt-in, see
    /// [`ShardedDatabase::enable_snapshot_reads`]).
    snap: Option<Snapshot>,
    /// Serving-channel chaos, kept so a replacement node can rebuild
    /// its channels with the same profile on a fresh seed lane.
    chaos: (ChaosProfile, u64),
    /// Replacement generation (bumped per successful reseed).
    generation: u32,
    /// The injected fault schedule.
    fault: ShardFaultPlan,
    /// Polls observed since this node (or its replacement) started.
    ops: u64,
    /// The node stopped answering (fault-injected crash).
    crashed: bool,
    /// The current stall window has been announced on the timeline.
    stall_logged: bool,
    /// The coordinator's timeline: fault injections land as typed
    /// events next to the health transitions they provoke.
    tracer: Tracer,
}

impl ShardNode {
    /// The shard's serving slice (tests and status inspection).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The commit epoch reads are pinned to, when snapshot serving is on.
    pub fn snapshot_epoch(&self) -> Option<u64> {
        self.snap.as_ref().map(|s| s.epoch())
    }

    /// Rows this shard kept at the last placement.
    pub fn placed_rows(&self) -> u64 {
        self.placed_rows
    }

    /// The replication LSN the shard's applier has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applier.status().applied_lsn
    }

    /// Fault accounting for the (request, response) channel pair.
    pub fn channel_stats(&self) -> (ChannelStats, ChannelStats) {
        (self.inbox.stats(), self.outbox.stats())
    }

    /// The armed fault schedule.
    pub fn fault_plan(&self) -> ShardFaultPlan {
        self.fault
    }

    /// Has the injected crash fired (and no replacement come up yet)?
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Replacement generation: 0 for the original node, +1 per reseed.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Rebuild the serving slice from the applier's current snapshot:
    /// reload, then retain only this shard's placement share.  The new
    /// slice is built **aside** and swapped in whole — a failure
    /// anywhere leaves the old slice untouched, so a crash-interrupted
    /// reseed can never serve a half-installed (stale or duplicated)
    /// row set.
    fn replace_slice(&mut self, n: usize) -> Result<(), ShardError> {
        let snap = self
            .applier
            .snapshot()
            .ok_or_else(|| ShardError::Seed("applier has no snapshot".to_string()))?;
        let mut db =
            Database::load_from_string(&snap).map_err(|e| ShardError::Seed(e.to_string()))?;
        let ids: Vec<AsrId> = db.asrs().map(|(id, _)| id).collect();
        let me = self.index;
        let mut placed = 0u64;
        for id in ids {
            placed += db
                .retain_asr_rows(id, |part, row| placement_shard(id, part, row, n) == me)
                .map_err(|e| ShardError::Seed(e.to_string()))?;
        }
        self.placed_rows = placed;
        self.db = db;
        let lsn = self.applied_lsn();
        self.server.set_applied_lsn(lsn);
        // Snapshot serving pins the *new* slice: a reseed moves the
        // epoch forward, it never leaves readers on the stale image.
        if self.snap.is_some() {
            self.snap = Some(self.db.snapshot());
        }
        Ok(())
    }

    /// Apply the fault schedule to one poll.  `true` means the node is
    /// (now) dead or stalled and the poll must be swallowed.
    fn fault_gate(&mut self) -> bool {
        self.ops += 1;
        if self.crashed {
            return true;
        }
        if let Some(at) = self.fault.crash_at_op {
            if self.ops >= at {
                self.crashed = true;
                self.tracer.event(
                    "shard.fault.crash",
                    &[
                        ("shard", self.index.to_string()),
                        ("op", self.ops.to_string()),
                        ("phase", "serve".to_string()),
                    ],
                );
                self.tracer.metrics().inc_counter("shard.fault.crashes", 1);
                return true;
            }
        }
        if let Some(at) = self.fault.stall_at_op {
            if self.ops >= at && self.ops < at.saturating_add(self.fault.stall_ops) {
                if !self.stall_logged {
                    self.stall_logged = true;
                    self.tracer.event(
                        "shard.fault.stall",
                        &[
                            ("shard", self.index.to_string()),
                            ("op", self.ops.to_string()),
                            ("ops", self.fault.stall_ops.to_string()),
                        ],
                    );
                    self.tracer.metrics().inc_counter("shard.fault.stalls", 1);
                }
                return true;
            }
        }
        false
    }
}

impl Transport for ShardNode {
    fn send(&mut self, frame: Vec<u8>) {
        self.inbox.send(frame);
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        if self.fault_gate() {
            return None;
        }
        let Self {
            db,
            server,
            sid,
            inbox,
            outbox,
            snap,
            ..
        } = self;
        let mut view = ServerDb::<MemStorage>::Plain(db);
        match snap {
            Some(snap) => server.pump_session_snapshot(*sid, &mut view, snap, inbox, outbox),
            None => server.pump_session(*sid, &mut view, inbox, outbox),
        };
        outbox.recv()
    }
}

/// The coordinator's client side: one exactly-once wire client per
/// shard, the per-shard health state machine, and merged scatter I/O
/// accounting.  Implements [`SpanRouter`], so `asr_oql::execute_routed`
/// runs whole OQL plans scatter-gather — the `db` the executor passes
/// in is the catalog.
pub struct Fleet {
    shards: Vec<asr_net::WireClient<ShardNode>>,
    io: IoSnapshot,
    shard_pages: Vec<u64>,
    health: Vec<HealthRecord>,
    /// Shards whose contribution is missing from answers since the last
    /// [`Fleet::take_degraded`] — the wire `partial` set.
    missing: BTreeSet<u32>,
    /// Health-check ticks elapsed ([`ShardedDatabase::tick`]).
    clock: u64,
    /// Per-request attempt budget (the deadline).  The default equals
    /// the wire client's stock budget, so chaotic-but-alive links keep
    /// their full retry allowance until a deadline is configured.
    deadline_attempts: u32,
}

impl Fleet {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the fleet has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Per-shard wire-client stats (retries, NACKs, backoff ticks).
    pub fn client_stats(&self) -> Vec<ClientStats> {
        self.shards.iter().map(|c| c.stats()).collect()
    }

    /// Per-shard channel fault stats.
    pub fn channel_stats(&self) -> Vec<(ChannelStats, ChannelStats)> {
        self.shards
            .iter()
            .map(|c| c.transport().channel_stats())
            .collect()
    }

    /// Direct access to a shard node (tests).
    pub fn node(&self, i: usize) -> &ShardNode {
        self.shards[i].transport()
    }

    /// Per-shard health states.
    pub fn health_states(&self) -> Vec<HealthState> {
        self.health.iter().map(|h| h.state).collect()
    }

    /// Is every shard serving normally?
    pub fn all_up(&self) -> bool {
        self.health.iter().all(|h| h.state == HealthState::Up)
    }

    /// Health-check ticks elapsed.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cap every scatter request at `attempts` wire attempts — the
    /// per-request deadline that turns a dead shard into a fast,
    /// bounded miss instead of a long grind.
    pub fn set_deadline(&mut self, attempts: u32) {
        self.deadline_attempts = attempts.max(1);
    }

    /// Take the shard set whose contribution has been missing from
    /// answers since the last call — empty means every answer since
    /// then was complete.
    pub fn take_degraded(&mut self) -> BTreeSet<u32> {
        std::mem::take(&mut self.missing)
    }

    /// Take the merged scatter I/O and the per-shard page maximum
    /// accumulated since the last call — `(merged, max_per_shard)`.
    pub fn take_io(&mut self) -> (IoSnapshot, u64) {
        let merged = self.io;
        let max = self.shard_pages.iter().copied().max().unwrap_or(0);
        self.io = IoSnapshot::default();
        self.shard_pages.iter_mut().for_each(|p| *p = 0);
        (merged, max)
    }

    /// Is shard `i` queried by scatter right now?
    fn serving(&self, i: usize) -> bool {
        matches!(self.health[i].state, HealthState::Up | HealthState::Suspect)
    }

    /// A deadline miss on shard `i`: escalate `Up → Suspect → Down`.
    fn note_miss(&mut self, db: &Database, i: usize, error: &ClientError) {
        let tracer = db.tracer();
        let rec = &mut self.health[i];
        rec.misses += 1;
        match rec.state {
            HealthState::Up => {
                rec.state = HealthState::Suspect;
                tracer.event(
                    "shard.suspect",
                    &[
                        ("shard", i.to_string()),
                        ("misses", rec.misses.to_string()),
                        ("error", error.to_string()),
                    ],
                );
                tracer.metrics().inc_counter("shard.health.suspects", 1);
            }
            HealthState::Suspect if rec.misses >= DOWN_AFTER_MISSES => {
                rec.state = HealthState::Down;
                rec.down_since = Some(self.clock);
                rec.reseed_attempts = 0;
                rec.backoff_until = self.clock;
                tracer.event(
                    "shard.down",
                    &[
                        ("shard", i.to_string()),
                        ("misses", rec.misses.to_string()),
                        ("tick", self.clock.to_string()),
                    ],
                );
                tracer.metrics().inc_counter("shard.health.downs", 1);
            }
            _ => {}
        }
        self.note_up_gauge(db);
    }

    /// A deadline met on shard `i`: a Suspect proves itself back Up.
    fn note_ok(&mut self, db: &Database, i: usize) {
        let rec = &mut self.health[i];
        rec.misses = 0;
        if rec.state == HealthState::Suspect {
            rec.state = HealthState::Up;
            db.tracer().event(
                "shard.up",
                &[("shard", i.to_string()), ("via", "probe".to_string())],
            );
            self.note_up_gauge(db);
        }
    }

    /// Record shard `i` as missing from the answer under construction.
    fn note_missing(&mut self, db: &Database, i: usize) {
        if self.missing.insert(i as u32) {
            db.tracer().event(
                "shard.degraded_read",
                &[
                    ("shard", i.to_string()),
                    ("state", self.health[i].state.label().to_string()),
                ],
            );
            db.tracer()
                .metrics()
                .inc_counter("shard.health.degraded_reads", 1);
        }
    }

    fn note_up_gauge(&self, db: &Database) {
        let up = self
            .health
            .iter()
            .filter(|h| h.state == HealthState::Up)
            .count();
        db.tracer()
            .metrics()
            .set_gauge("shard.health.up", up as f64);
    }

    /// Broadcast one request to every serving shard, union the row
    /// fragments, and fold each shard's I/O into the scatter
    /// accounting.  A shard that misses its deadline transitions in the
    /// health machine and joins the degraded set instead of failing the
    /// query; only a fleet with **no** reachable shard errors.
    fn broadcast_rows(
        &mut self,
        db: &Database,
        body: &RequestBody,
    ) -> Result<BTreeSet<Row>, ShardError> {
        let metrics = db.tracer().metrics();
        metrics.inc_counter("shard.scatter.broadcasts", 1);
        let mut union: BTreeSet<Row> = BTreeSet::new();
        let mut served = 0usize;
        let deadline = self.deadline_attempts;
        for i in 0..self.shards.len() {
            if !self.serving(i) {
                self.note_missing(db, i);
                continue;
            }
            let client = &mut self.shards[i];
            client.set_max_attempts(deadline);
            match client.call(body.clone()) {
                Ok(resp) => {
                    self.io.merge(&resp.io);
                    self.shard_pages[i] += resp.io.accesses();
                    match resp.body {
                        ResponseBody::Rows(rows) => {
                            union.extend(rows);
                            served += 1;
                            self.note_ok(db, i);
                        }
                        ResponseBody::Err(message) => {
                            return Err(ShardError::Remote { shard: i, message })
                        }
                        other => {
                            return Err(ShardError::Protocol {
                                shard: i,
                                got: other.label(),
                            })
                        }
                    }
                }
                Err(error) => {
                    self.note_miss(db, i, &error);
                    self.note_missing(db, i);
                }
            }
        }
        if served == 0 {
            return Err(ShardError::Unavailable);
        }
        metrics.inc_counter("shard.scatter.rows", union.len() as u64);
        Ok(union)
    }

    /// Scatter-gather forward span query `Q_{i,j}(fw)` through ASR `id`,
    /// falling back to the catalog (naive evaluation over the full
    /// object base) exactly where single-node evaluation would.
    pub fn forward(
        &mut self,
        db: &Database,
        id: AsrId,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        let asr = db.asr(id)?;
        if !asr.supports(i, j) {
            // Invalid spans error and unsupported spans fall back to
            // naive traversal — identically to `Database::forward`,
            // which sees the same (complete) object base.
            return db.forward(id, i, j, start);
        }
        let metrics = db.tracer().metrics();
        metrics.inc_counter("shard.scatter.queries", 1);
        let io_before = self.io;
        let ci = asr.column_of(i);
        let cj = asr.column_of(j);
        let dec = asr.config().decomposition.clone();
        let mut frontier: BTreeSet<Cell> = BTreeSet::from([Cell::Oid(start)]);
        let mut result: Vec<Cell> = Vec::new();
        for (idx, (a, b)) in dec.partitions().enumerate() {
            if b <= ci {
                continue;
            }
            if a >= cj {
                break;
            }
            let keys: Vec<Cell> = frontier.iter().cloned().collect();
            let body = if a < ci {
                RequestBody::ShardScan {
                    asr: id as u32,
                    part: idx as u32,
                    offset: (ci - a) as u32,
                    frontier: keys,
                }
            } else {
                RequestBody::ShardProbe {
                    asr: id as u32,
                    part: idx as u32,
                    forward: true,
                    keys,
                }
            };
            let rows = self.broadcast_rows(db, &body).map_err(AsrError::from)?;
            if cj <= b {
                let offset = cj - a;
                let out: BTreeSet<Cell> =
                    rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
                result = out.into_iter().collect();
                break;
            }
            frontier = rows.iter().filter_map(|r| r.last().clone()).collect();
            if frontier.is_empty() {
                break;
            }
        }
        self.note_scatter_pages(db, &io_before);
        Ok(result)
    }

    /// Scatter-gather backward span query `Q_{i,j}(bw)` through ASR
    /// `id`, with the same catalog fallback as [`Fleet::forward`].
    pub fn backward(
        &mut self,
        db: &Database,
        id: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        let asr = db.asr(id)?;
        if !asr.supports(i, j) {
            return db.backward(id, i, j, target);
        }
        let metrics = db.tracer().metrics();
        metrics.inc_counter("shard.scatter.queries", 1);
        let io_before = self.io;
        let ci = asr.column_of(i);
        let cj = asr.column_of(j);
        let dec = asr.config().decomposition.clone();
        let spans: Vec<(usize, usize)> = dec.partitions().collect();
        let mut frontier: BTreeSet<Cell> = BTreeSet::from([target.clone()]);
        let mut result: Vec<Cell> = Vec::new();
        for (idx, &(a, b)) in spans.iter().enumerate().rev() {
            if a >= cj {
                continue;
            }
            if b <= ci {
                break;
            }
            let keys: Vec<Cell> = frontier.iter().cloned().collect();
            let body = if b > cj {
                RequestBody::ShardScan {
                    asr: id as u32,
                    part: idx as u32,
                    offset: (cj - a) as u32,
                    frontier: keys,
                }
            } else {
                RequestBody::ShardProbe {
                    asr: id as u32,
                    part: idx as u32,
                    forward: false,
                    keys,
                }
            };
            let rows = self.broadcast_rows(db, &body).map_err(AsrError::from)?;
            if ci >= a {
                let offset = ci - a;
                let out: BTreeSet<Cell> =
                    rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
                result = out.into_iter().collect();
                break;
            }
            frontier = rows.iter().filter_map(|r| r.first().clone()).collect();
            if frontier.is_empty() {
                break;
            }
        }
        self.note_scatter_pages(db, &io_before);
        Ok(result.into_iter().filter_map(|c| c.as_oid()).collect())
    }

    fn note_scatter_pages(&self, db: &Database, before: &IoSnapshot) {
        let pages = (self.io.reads + self.io.writes) - (before.reads + before.writes);
        db.tracer().metrics().observe(
            "shard.scatter.pages",
            &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0],
            pages as f64,
        );
    }

    /// Broadcast a status probe; one health record per shard.  Errors
    /// if any shard is unreachable — health-aware callers use
    /// [`Fleet::health_report`] instead.
    pub fn status(&mut self) -> Result<Vec<ShardHealth>, ShardError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, client) in self.shards.iter_mut().enumerate() {
            let resp = client
                .call(RequestBody::ShardStatus)
                .map_err(|error| ShardError::Link { shard: i, error })?;
            match resp.body {
                ResponseBody::ShardStatusReply(health) => out.push(health),
                ResponseBody::Err(message) => return Err(ShardError::Remote { shard: i, message }),
                other => {
                    return Err(ShardError::Protocol {
                        shard: i,
                        got: other.label(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Probe every shard the health machine still trusts; Down and
    /// Reseeding shards report `None`.  Misses transition the machine
    /// exactly like scatter misses.
    pub fn health_report(&mut self, db: &Database) -> Vec<(HealthState, Option<ShardHealth>)> {
        let deadline = self.deadline_attempts;
        (0..self.shards.len())
            .map(|i| {
                if !self.serving(i) {
                    return (self.health[i].state, None);
                }
                let client = &mut self.shards[i];
                client.set_max_attempts(deadline);
                match client.call(RequestBody::ShardStatus) {
                    Ok(resp) => match resp.body {
                        ResponseBody::ShardStatusReply(h) => {
                            self.note_ok(db, i);
                            (self.health[i].state, Some(h))
                        }
                        _ => (self.health[i].state, None),
                    },
                    Err(error) => {
                        self.note_miss(db, i, &error);
                        (self.health[i].state, None)
                    }
                }
            })
            .collect()
    }
}

impl SpanRouter for Fleet {
    fn forward_span(
        &mut self,
        db: &Database,
        path: &PathExpression,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        match db.find_supporting_asr(path, i, j) {
            Some(id) => self.forward(db, id, i, j, start),
            // No supporting ASR anywhere: unindexed traversal over the
            // catalog's complete object base, like `navigate_forward`.
            None => db.navigate_forward(path, i, j, start),
        }
    }

    fn backward_span(
        &mut self,
        db: &Database,
        asr: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        self.backward(db, asr, i, j, target)
    }
}

/// The scatter-gather coordinator: a zero-row catalog plus a [`Fleet`]
/// of placement shards, together answering the same span queries (and
/// whole OQL statements) as the primary they were seeded from.
pub struct ShardedDatabase {
    catalog: Database,
    fleet: Fleet,
}

impl ShardedDatabase {
    /// Seed `n` shards (and the catalog) from a durable primary through
    /// the replication substrate.  `chaos` arms every shard's serving
    /// channels with a fault profile (seeding links stay lossless);
    /// queries then pay retries, never correctness.
    pub fn from_primary<S: Storage>(
        primary: &DurableDatabase<S>,
        n: usize,
        chaos: Option<(ChaosProfile, u64)>,
    ) -> Result<Self, ShardError> {
        if n == 0 {
            return Err(ShardError::Seed("need at least one shard".to_string()));
        }
        let catalog = Self::seed_catalog(primary)?;
        let tracer = catalog.tracer().clone();
        let mut shards = Vec::with_capacity(n);
        for index in 0..n {
            let mut applier = ReplicaApplier::new();
            let mut link = LosslessChannel::new();
            replicate(
                primary,
                &mut applier,
                &mut link,
                &ReplicateOptions::default(),
            )
            .map_err(|e| ShardError::Seed(e.to_string()))?;
            let (profile, base) = match chaos {
                Some((profile, seed)) => (
                    profile,
                    seed ^ ((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ),
                None => (ChaosProfile::default(), 0),
            };
            let mut server = NetServer::new();
            let sid = server.open_session();
            let mut node = ShardNode {
                index,
                db: Database::new(primary.database().base().schema().clone()),
                applier,
                server,
                sid,
                inbox: FaultyChannel::new(profile, base),
                outbox: FaultyChannel::new(profile, base.wrapping_add(1)),
                placed_rows: 0,
                snap: None,
                chaos: (profile, base),
                generation: 0,
                fault: ShardFaultPlan::default(),
                ops: 0,
                crashed: false,
                stall_logged: false,
                tracer: tracer.clone(),
            };
            node.replace_slice(n)?;
            tracer.event(
                "shard.place",
                &[
                    ("shard", index.to_string()),
                    ("rows", node.placed_rows.to_string()),
                    ("lsn", node.applied_lsn().to_string()),
                ],
            );
            tracer
                .metrics()
                .inc_counter("shard.place.rows", node.placed_rows);
            shards.push(asr_net::WireClient::new(node));
        }
        tracer.metrics().set_gauge("shard.count", n as f64);
        tracer.metrics().set_gauge("shard.health.up", n as f64);
        let shard_pages = vec![0; n];
        Ok(ShardedDatabase {
            catalog,
            fleet: Fleet {
                shards,
                io: IoSnapshot::default(),
                shard_pages,
                health: vec![HealthRecord::default(); n],
                missing: BTreeSet::new(),
                clock: 0,
                deadline_attempts: 64,
            },
        })
    }

    /// Replicate the primary into a catalog copy and retain every ASR to
    /// zero rows: metadata and naive fallback only — supported span
    /// answers must come off the shards.
    fn seed_catalog<S: Storage>(primary: &DurableDatabase<S>) -> Result<Database, ShardError> {
        let mut applier = ReplicaApplier::new();
        let mut link = LosslessChannel::new();
        replicate(
            primary,
            &mut applier,
            &mut link,
            &ReplicateOptions::default(),
        )
        .map_err(|e| ShardError::Seed(e.to_string()))?;
        let snap = applier
            .snapshot()
            .ok_or_else(|| ShardError::Seed("catalog applier has no snapshot".to_string()))?;
        let mut catalog =
            Database::load_from_string(&snap).map_err(|e| ShardError::Seed(e.to_string()))?;
        let ids: Vec<AsrId> = catalog.asrs().map(|(id, _)| id).collect();
        for id in ids {
            catalog
                .retain_asr_rows(id, |_, _| false)
                .map_err(|e| ShardError::Seed(e.to_string()))?;
        }
        Ok(catalog)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.fleet.len()
    }

    /// Serve every shard's probe/scan reads from a pinned MVCC snapshot
    /// of its slice instead of the live database.  Opt-in, so existing
    /// charged-I/O profiles are unchanged unless asked for; the pin is
    /// refreshed on every reseed so reads track the durable tip at
    /// reseed granularity.
    pub fn enable_snapshot_reads(&mut self) {
        for client in &mut self.fleet.shards {
            let node = client.transport_mut();
            node.snap = Some(node.db.snapshot());
        }
    }

    /// Arm shard `i` with a fault-injection schedule (tests, chaos
    /// sweeps, `\shards fault`).
    pub fn set_fault_plan(&mut self, i: usize, plan: ShardFaultPlan) {
        self.fleet.shards[i].transport_mut().fault = plan;
    }

    /// Cap every scatter request at `attempts` wire attempts — see
    /// [`Fleet::set_deadline`].
    pub fn set_deadline(&mut self, attempts: u32) {
        self.fleet.set_deadline(attempts);
    }

    /// The catalog database (metadata + naive fallback).
    pub fn catalog(&self) -> &Database {
        &self.catalog
    }

    /// The shard fleet (I/O accounting, client stats, nodes).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Mutable fleet access (taking I/O, tests).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// Per-shard health states.
    pub fn health_states(&self) -> Vec<HealthState> {
        self.fleet.health_states()
    }

    /// Is every shard serving normally?
    pub fn all_up(&self) -> bool {
        self.fleet.all_up()
    }

    /// Take the shard set missing from answers since the last call —
    /// the wire `partial` set (empty = every answer was complete).
    pub fn take_degraded(&mut self) -> BTreeSet<u32> {
        self.fleet.take_degraded()
    }

    /// Scatter-gather forward span query — same contract as
    /// [`Database::forward`] on the primary.
    pub fn forward(
        &mut self,
        id: AsrId,
        i: usize,
        j: usize,
        start: Oid,
    ) -> asr_core::Result<Vec<Cell>> {
        let Self { catalog, fleet } = self;
        fleet.forward(catalog, id, i, j, start)
    }

    /// Scatter-gather backward span query — same contract as
    /// [`Database::backward`] on the primary.
    pub fn backward(
        &mut self,
        id: AsrId,
        i: usize,
        j: usize,
        target: &Cell,
    ) -> asr_core::Result<Vec<Oid>> {
        let Self { catalog, fleet } = self;
        fleet.backward(catalog, id, i, j, target)
    }

    /// Run a whole OQL statement scatter-gather: the plan executes on
    /// the catalog, every span it touches routes through the fleet.
    pub fn query(&mut self, text: &str) -> asr_oql::Result<asr_oql::ResultSet> {
        let Self { catalog, fleet } = self;
        asr_oql::execute_routed(catalog, text, fleet)
    }

    /// Broadcast a health probe to every shard.
    pub fn status(&mut self) -> Result<Vec<ShardHealth>, ShardError> {
        self.fleet.status()
    }

    /// One deterministic health-check tick: probe every shard the
    /// machine still trusts, then give each Down shard past its backoff
    /// gate a reseed attempt.  This is the coordinator's self-healing
    /// loop — drive it from the serving loop (or `\shards tick`) and
    /// the fleet converges back to all-Up after any crash the
    /// replication substrate can repair.
    pub fn tick<S: Storage>(&mut self, primary: &DurableDatabase<S>) {
        let Self { catalog, fleet } = self;
        fleet.clock += 1;
        let tracer = catalog.tracer();
        tracer.metrics().inc_counter("shard.health.ticks", 1);
        fleet.health_report(catalog);
        for i in 0..fleet.shards.len() {
            let rec = fleet.health[i];
            if rec.state == HealthState::Down && fleet.clock >= rec.backoff_until {
                Self::recover_shard(catalog, fleet, i, primary);
            }
        }
        fleet.note_up_gauge(catalog);
    }

    /// Spin a replacement node for Down shard `i` and re-seed it
    /// through the replication substrate: delta catch-up when the crash
    /// retained the applier's base, full bootstrap otherwise.  On
    /// failure (including an injected crash-during-reseed) the shard
    /// stays Down and the next attempt waits out an exponential
    /// backoff.
    fn recover_shard<S: Storage>(
        catalog: &Database,
        fleet: &mut Fleet,
        i: usize,
        primary: &DurableDatabase<S>,
    ) {
        let tracer = catalog.tracer();
        let n = fleet.shards.len();
        {
            let rec = &mut fleet.health[i];
            rec.state = HealthState::Reseeding;
            rec.reseed_attempts += 1;
        }
        let attempt = fleet.health[i].reseed_attempts;
        let node = fleet.shards[i].transport_mut();
        // A crash that lost the node's disk also lost the retained
        // replica base: the replacement must bootstrap from scratch.
        if node.crashed && node.fault.lose_applier {
            node.applier = ReplicaApplier::new();
        }
        let mode = match node.applier.needed() {
            Need::Checkpoint => "full",
            Need::From(_) | Need::DeltaBootstrap(_) => "delta",
        };
        tracer.event(
            "shard.reseed.begin",
            &[
                ("shard", i.to_string()),
                ("attempt", attempt.to_string()),
                ("mode", mode.to_string()),
            ],
        );
        tracer
            .metrics()
            .inc_counter("shard.health.reseed_attempts", 1);
        let bytes_before = node.applier.status().bytes_received;
        let outcome = Self::bootstrap_replacement(node, primary, n);
        match outcome {
            Ok(report) => {
                node.crashed = false;
                node.ops = 0;
                node.stall_logged = false;
                // The replacement is a fresh process: the old schedule
                // died with the old node (reseed_crashes, if any, were
                // consumed above).
                node.fault = ShardFaultPlan::default();
                node.generation += 1;
                let (profile, base) = node.chaos;
                let lane = base ^ ((node.generation as u64) << 32);
                node.inbox = FaultyChannel::new(profile, lane);
                node.outbox = FaultyChannel::new(profile, lane.wrapping_add(1));
                let mut server = NetServer::new();
                let sid = server.open_session();
                server.set_applied_lsn(node.applied_lsn());
                node.server = server;
                node.sid = sid;
                let rows = node.placed_rows;
                let lsn = node.applied_lsn();
                let node_bytes = node.applier.status().bytes_received;
                let rec = &mut fleet.health[i];
                rec.state = HealthState::Up;
                rec.misses = 0;
                rec.backoff_until = 0;
                let ticks_down = rec
                    .down_since
                    .take()
                    .map_or(0, |since| fleet.clock.saturating_sub(since));
                tracer.event(
                    "shard.reseed.end",
                    &[
                        ("shard", i.to_string()),
                        ("outcome", "ok".to_string()),
                        ("mode", mode.to_string()),
                        ("deliveries", report.deliveries_sent.to_string()),
                        (
                            "bytes",
                            (node_bytes.saturating_sub(bytes_before)).to_string(),
                        ),
                        ("rows", rows.to_string()),
                        ("lsn", lsn.to_string()),
                        ("ticks_down", ticks_down.to_string()),
                    ],
                );
                let metrics = tracer.metrics();
                metrics.inc_counter("shard.reseeds", 1);
                metrics.inc_counter("shard.health.recoveries", 1);
                metrics.observe(
                    "shard.health.ticks_to_recover",
                    &RECOVERY_TICK_BOUNDS,
                    ticks_down as f64,
                );
            }
            Err(e) => {
                let rec = &mut fleet.health[i];
                rec.state = HealthState::Down;
                rec.backoff_until = fleet.clock
                    + RESEED_BACKOFF_CAP.min(RESEED_BACKOFF_BASE << (attempt - 1).min(63));
                tracer.event(
                    "shard.reseed.end",
                    &[
                        ("shard", i.to_string()),
                        ("outcome", "failed".to_string()),
                        ("error", e.to_string()),
                    ],
                );
                tracer
                    .metrics()
                    .inc_counter("shard.health.reseed_failures", 1);
            }
        }
    }

    /// Pump the replacement's applier to the primary's tip and rebuild
    /// its placement slice.  An injected `reseed_crashes` budget makes
    /// the replacement die before the slice swap — the build-aside
    /// discipline of [`ShardNode::replace_slice`] guarantees the dead
    /// node keeps serving *nothing* rather than a half-installed slice.
    fn bootstrap_replacement<S: Storage>(
        node: &mut ShardNode,
        primary: &DurableDatabase<S>,
        n: usize,
    ) -> Result<ShipReport, ShardError> {
        if node.fault.reseed_crashes > 0 {
            node.fault.reseed_crashes -= 1;
            node.tracer.event(
                "shard.fault.crash",
                &[
                    ("shard", node.index.to_string()),
                    ("op", node.ops.to_string()),
                    ("phase", "reseed".to_string()),
                ],
            );
            node.tracer.metrics().inc_counter("shard.fault.crashes", 1);
            return Err(ShardError::Seed(
                "replacement node crashed mid-bootstrap".to_string(),
            ));
        }
        let mut link = LosslessChannel::new();
        let report = replicate(
            primary,
            &mut node.applier,
            &mut link,
            &ReplicateOptions::default(),
        )
        .map_err(|e| ShardError::Seed(e.to_string()))?;
        node.replace_slice(n)?;
        Ok(report)
    }

    /// Render `\shards status` lines: per-shard health state, placement
    /// and replication figures, plus scatter and health-machine
    /// aggregates.
    pub fn render_status(&mut self) -> Result<String, ShardError> {
        let Self { catalog, fleet } = self;
        let report = fleet.health_report(catalog);
        let mut out = String::new();
        for (i, (state, health)) in report.iter().enumerate() {
            match health {
                Some(h) => out.push_str(&format!(
                    "shard {i}: state={} rows={} pages={} applied_lsn={} requests={}\n",
                    state.label(),
                    h.placed_rows,
                    h.pages,
                    h.applied_lsn,
                    h.requests
                )),
                None => {
                    let rec = &fleet.health[i];
                    out.push_str(&format!(
                        "shard {i}: state={} (unreachable; misses={} reseed_attempts={} next_attempt_tick={})\n",
                        rec.state.label(),
                        rec.misses,
                        rec.reseed_attempts,
                        rec.backoff_until
                    ))
                }
            }
        }
        let (merged, max) = fleet.take_io();
        out.push_str(&format!(
            "scatter: merged_pages={} max_shard_pages={max}\n",
            merged.accesses()
        ));
        let up = report.iter().filter(|(s, _)| *s == HealthState::Up).count();
        out.push_str(&format!(
            "health: tick={} up={up}/{}\n",
            fleet.clock,
            report.len()
        ));
        Ok(out)
    }

    /// Catch every shard (and the catalog) up to the primary's current
    /// durable tip: each applier replays the missing WAL suffix (or a
    /// delta bootstrap when segments were pruned), then the serving
    /// slice is rebuilt and re-placed.  Mutations flow through the
    /// primary; this is how they reach the fleet.
    pub fn reseed<S: Storage>(&mut self, primary: &DurableDatabase<S>) -> Result<(), ShardError> {
        // The rebuilt catalog adopts the old tracer so accumulated
        // `shard.*` metrics and attached sinks survive the reseed.
        let tracer = self.catalog.tracer().clone();
        let mut catalog = Self::seed_catalog(primary)?;
        catalog.adopt_tracer(tracer.clone());
        self.catalog = catalog;
        let n = self.fleet.len();
        for client in &mut self.fleet.shards {
            let node = client.transport_mut();
            let mut link = LosslessChannel::new();
            replicate(
                primary,
                &mut node.applier,
                &mut link,
                &ReplicateOptions::default(),
            )
            .map_err(|e| ShardError::Seed(e.to_string()))?;
            node.replace_slice(n)?;
            tracer.event(
                "shard.reseed",
                &[
                    ("shard", node.index.to_string()),
                    ("rows", node.placed_rows.to_string()),
                    ("lsn", node.applied_lsn().to_string()),
                ],
            );
            tracer.metrics().inc_counter("shard.reseeds", 1);
        }
        Ok(())
    }
}
