//! The multi-client session multiplexer.
//!
//! [`NetServer`] owns no database and no channels — the host (shell,
//! shard node, TCP loop) hands it a [`ServerDb`] view and the session's
//! receive/send channels each pump.  What it does own is the per-session
//! exactly-once state: the highest executed request id and the encoded
//! response it produced.  The rules, in request-id space:
//!
//! * `id == last_executed` — a duplicate of the request just served
//!   (response lost or the frame duplicated): **replay** the cached
//!   response, executing nothing.
//! * `id < last_executed` — a stale straggler the client has moved past:
//!   drop it.
//! * `id > last_executed` — fresh: execute, cache, respond.
//!
//! A delivery that fails [`asr_net::decode_frame`] (truncated, bit-flipped,
//! or not a request at all) is answered with a NACK carrying
//! `last_executed`, so the client re-sends — damage delays a request but
//! can never mis-execute it.

use asr_core::Snapshot;
use asr_durable::{Channel, Storage};
use asr_net::{decode_frame, Request, RequestBody, Response, ResponseBody, WireMessage};
use asr_obs::Tracer;
use asr_pagesim::IoSnapshot;

use crate::exec::{self, ServerDb};

/// Histogram bounds for per-request (and per-batch) page counts.
const PAGE_BOUNDS: [f64; 6] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];

/// Per-session exactly-once state.
#[derive(Debug, Default)]
struct SessionState {
    last_executed: u64,
    cached: Option<Vec<u8>>,
    closed: bool,
}

/// What one pump pass did (for tests and status lines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Fresh requests executed.
    pub executed: u64,
    /// Duplicate requests answered from the response cache.
    pub replayed: u64,
    /// Damaged deliveries NACKed.
    pub nacked: u64,
    /// Stale deliveries dropped.
    pub dropped_stale: u64,
}

/// The serving front: session table + exactly-once bookkeeping.
#[derive(Debug, Default)]
pub struct NetServer {
    sessions: Vec<SessionState>,
    requests_executed: u64,
    applied_lsn: u64,
}

impl NetServer {
    /// A server with no sessions yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a session; the returned id indexes every later pump.
    pub fn open_session(&mut self) -> usize {
        self.sessions.push(SessionState::default());
        self.sessions.len() - 1
    }

    /// Number of sessions ever opened.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Is the session still serving (a handled `Shutdown` closes it)?
    pub fn session_open(&self, sid: usize) -> bool {
        self.sessions.get(sid).is_some_and(|s| !s.closed)
    }

    /// Total fresh requests executed across all sessions.
    pub fn requests_executed(&self) -> u64 {
        self.requests_executed
    }

    /// Record the replication LSN this server's database has applied —
    /// stamped into `ShardStatus` replies (shard nodes set it after each
    /// reseed; a served primary leaves it 0).
    pub fn set_applied_lsn(&mut self, lsn: u64) {
        self.applied_lsn = lsn;
    }

    /// Settle a decoded request against the session's exactly-once
    /// state: closed sessions refuse, duplicates replay the cache, stale
    /// ids drop.  Returns the request only when it is fresh and must
    /// execute *now* — callers that defer execution must re-admit at
    /// execution time.
    fn admit(
        &mut self,
        sid: usize,
        req: Request,
        tracer: &Tracer,
        tx: &mut dyn Channel,
        report: &mut PumpReport,
    ) -> Option<Request> {
        let metrics = tracer.metrics();
        let sess = self.sessions.get_mut(sid)?;
        if sess.closed {
            tx.send(
                Response::complete(
                    req.id,
                    ResponseBody::Err("session closed".to_string()),
                    IoSnapshot::default(),
                )
                .encode(),
            );
            return None;
        }
        if req.id == sess.last_executed {
            if let Some(frame) = &sess.cached {
                report.replayed += 1;
                metrics.inc_counter("server.replays", 1);
                tx.send(frame.clone());
            }
            return None;
        }
        if req.id < sess.last_executed {
            report.dropped_stale += 1;
            metrics.inc_counter("server.stale_dropped", 1);
            return None;
        }
        Some(req)
    }

    /// Decode one delivery and [`admit`](Self::admit) it: damaged frames
    /// NACK with the resume point, everything else settles against the
    /// exactly-once state.
    fn triage(
        &mut self,
        sid: usize,
        delivery: &[u8],
        tracer: &Tracer,
        tx: &mut dyn Channel,
        report: &mut PumpReport,
    ) -> Option<Request> {
        let req = match decode_frame(delivery) {
            Some(WireMessage::Request(req)) => req,
            _ => {
                // Damaged (or cross-wired) frame: NACK with the resume
                // point.  The id is unreadable, so the NACK carries 0.
                let last = self.sessions.get(sid).map_or(0, |s| s.last_executed);
                report.nacked += 1;
                tracer.metrics().inc_counter("server.nacks", 1);
                tracer.event(
                    "server.nack",
                    &[("session", sid.to_string()), ("last", last.to_string())],
                );
                tx.send(
                    Response::complete(
                        0,
                        ResponseBody::Nack {
                            last_executed: last,
                        },
                        IoSnapshot::default(),
                    )
                    .encode(),
                );
                return None;
            }
        };
        self.admit(sid, req, tracer, tx, report)
    }

    /// Exactly-once bookkeeping for a fresh request whose outcome is
    /// already computed: stamp, cache, count, respond.  Shared by the
    /// serial execution path, both snapshot-read paths, and the sharded
    /// front door (the only caller passing a non-empty `partial` set —
    /// the shards missing from a degraded scatter-gather answer).
    #[allow(clippy::too_many_arguments)]
    fn finish_fresh(
        &mut self,
        sid: usize,
        tracer: &Tracer,
        req_id: u64,
        label: &str,
        shutdown: bool,
        outcome: Result<ResponseBody, String>,
        io: IoSnapshot,
        from_snapshot: bool,
        partial: Vec<u32>,
        tx: &mut dyn Channel,
        report: &mut PumpReport,
    ) {
        let metrics = tracer.metrics();
        let body = match outcome {
            Ok(mut body) => {
                if let ResponseBody::ShardStatusReply(health) = &mut body {
                    health.applied_lsn = self.applied_lsn;
                    health.requests = self.requests_executed + 1;
                }
                body
            }
            Err(msg) => {
                metrics.inc_counter("server.errors", 1);
                ResponseBody::Err(msg)
            }
        };
        let frame = Response {
            id: req_id,
            body,
            io,
            partial,
        }
        .encode();
        let sess = self
            .sessions
            .get_mut(sid)
            .expect("session existed before execute");
        sess.last_executed = req_id;
        sess.cached = Some(frame.clone());
        if shutdown {
            sess.closed = true;
            tracer.event("server.session_close", &[("session", sid.to_string())]);
        }
        self.requests_executed += 1;
        report.executed += 1;
        metrics.inc_counter("server.requests", 1);
        metrics.inc_counter(&format!("server.requests.{label}"), 1);
        if from_snapshot {
            metrics.inc_counter("server.snapshot.reads", 1);
        }
        metrics.observe("server.request.pages", &PAGE_BOUNDS, io.accesses() as f64);
        tx.send(frame);
    }

    /// Execute one fresh request against the live database and respond.
    fn respond_fresh<S: Storage>(
        &mut self,
        sid: usize,
        db: &mut ServerDb<'_, S>,
        req: Request,
        tx: &mut dyn Channel,
        report: &mut PumpReport,
    ) {
        let tracer = db.db().tracer().clone();
        let shutdown = matches!(req.body, RequestBody::Shutdown);
        let before = db.db().stats().snapshot();
        let outcome = exec::execute(db, &req.body);
        let after = db.db().stats().snapshot();
        let io = IoSnapshot {
            reads: after.reads - before.reads,
            writes: after.writes - before.writes,
            buffer_hits: after.buffer_hits - before.buffer_hits,
            batch_probes: after.batch_probes - before.batch_probes,
            batch_pages_saved: after.batch_pages_saved - before.batch_pages_saved,
        };
        self.finish_fresh(
            sid,
            &tracer,
            req.id,
            req.body.label(),
            shutdown,
            outcome,
            io,
            false,
            Vec::new(),
            tx,
            report,
        );
    }

    /// Drain `rx`, executing fresh requests against `db` and pushing every
    /// response onto `tx`.
    pub fn pump_session<S: Storage>(
        &mut self,
        sid: usize,
        db: &mut ServerDb<'_, S>,
        rx: &mut dyn Channel,
        tx: &mut dyn Channel,
    ) -> PumpReport {
        let tracer = db.db().tracer().clone();
        let mut report = PumpReport::default();
        while let Some(delivery) = rx.recv() {
            let Some(req) = self.triage(sid, &delivery, &tracer, tx, &mut report) else {
                continue;
            };
            self.respond_fresh(sid, db, req, tx, &mut report);
        }
        report
    }

    /// Like [`NetServer::pump_session`], but fresh snapshot-eligible
    /// reads (`Ping`, `ShardProbe`, `ShardScan`) are answered from the
    /// pinned `snap` — charging modeled pages to the snapshot's meter,
    /// which rides back in the response envelope — while everything else
    /// still executes against the live `db`.
    pub fn pump_session_snapshot<S: Storage>(
        &mut self,
        sid: usize,
        db: &mut ServerDb<'_, S>,
        snap: &Snapshot,
        rx: &mut dyn Channel,
        tx: &mut dyn Channel,
    ) -> PumpReport {
        let tracer = db.db().tracer().clone();
        let mut report = PumpReport::default();
        while let Some(delivery) = rx.recv() {
            let Some(req) = self.triage(sid, &delivery, &tracer, tx, &mut report) else {
                continue;
            };
            if exec::is_snapshot_read(&req.body) {
                let before = snap.pages_read();
                let outcome =
                    exec::execute_snapshot(snap, &req.body).expect("eligibility checked above");
                let io = IoSnapshot {
                    reads: snap.pages_read() - before,
                    ..IoSnapshot::default()
                };
                self.finish_fresh(
                    sid,
                    &tracer,
                    req.id,
                    req.body.label(),
                    false,
                    outcome,
                    io,
                    true,
                    Vec::new(),
                    tx,
                    &mut report,
                );
            } else {
                self.respond_fresh(sid, db, req, tx, &mut report);
            }
        }
        report
    }

    /// Serve one session as the **sharded front door**: OQL queries run
    /// scatter-gather over the fleet, and a degraded answer (surviving
    /// shards only) carries the missing shard set in the response's
    /// `partial` field — on the wire, never silently wrong.  Mutations
    /// are refused: they flow through the primary and reach the fleet
    /// via reseed, so the coordinator can never fork from the durable
    /// timeline.
    pub fn pump_session_sharded(
        &mut self,
        sid: usize,
        sharded: &mut crate::shard::ShardedDatabase,
        rx: &mut dyn Channel,
        tx: &mut dyn Channel,
    ) -> PumpReport {
        let tracer = sharded.catalog().tracer().clone();
        let mut report = PumpReport::default();
        while let Some(delivery) = rx.recv() {
            let Some(req) = self.triage(sid, &delivery, &tracer, tx, &mut report) else {
                continue;
            };
            let shutdown = matches!(req.body, RequestBody::Shutdown);
            let label = req.body.label();
            let (outcome, io, partial) = match &req.body {
                RequestBody::Ping | RequestBody::Shutdown => {
                    (Ok(ResponseBody::Ok), IoSnapshot::default(), Vec::new())
                }
                RequestBody::Query(text) => {
                    // Clear any degraded carry-over so the partial set
                    // brands exactly this query's answer.
                    sharded.take_degraded();
                    match sharded.query(text) {
                        Ok(rs) => {
                            let (merged, _) = sharded.fleet_mut().take_io();
                            let partial: Vec<u32> = sharded.take_degraded().into_iter().collect();
                            (
                                Ok(ResponseBody::Table {
                                    columns: rs.columns,
                                    rows: rs.rows,
                                }),
                                merged,
                                partial,
                            )
                        }
                        Err(e) => (
                            Err(e.to_string()),
                            IoSnapshot::default(),
                            sharded.take_degraded().into_iter().collect(),
                        ),
                    }
                }
                body if body.is_mutation() => (
                    Err(
                        "sharded front door is read-only; mutate the primary and reseed"
                            .to_string(),
                    ),
                    IoSnapshot::default(),
                    Vec::new(),
                ),
                other => (
                    Err(format!(
                        "{} is not served by the sharded front door",
                        other.label()
                    )),
                    IoSnapshot::default(),
                    Vec::new(),
                ),
            };
            self.finish_fresh(
                sid,
                &tracer,
                req.id,
                label,
                shutdown,
                outcome,
                io,
                false,
                partial,
                tx,
                &mut report,
            );
        }
        report
    }

    /// Pump many sessions in one pass, executing each session's leading
    /// run of snapshot-eligible reads **concurrently** on a pool of
    /// `workers` OS threads against a single pinned [`Snapshot`], then
    /// the remaining requests (mutations, plans, durable control)
    /// serially in arrival order.
    ///
    /// Per-session ordering is exactly what serial execution would give:
    /// a session's concurrent reads all precede its first non-read, so
    /// they observe the commit epoch in force when the session's turn
    /// began, and the exactly-once cache is maintained in intake order
    /// by the serial completion phase.  Cross-session interleaving
    /// carries no ordering guarantee in either pump, so answering every
    /// read at one pinned epoch is indistinguishable from some serial
    /// schedule.
    pub fn pump_sessions_parallel<S: Storage>(
        &mut self,
        db: &mut ServerDb<'_, S>,
        sessions: &mut [(usize, &mut dyn Channel, &mut dyn Channel)],
        workers: usize,
    ) -> PumpReport {
        let tracer = db.db().tracer().clone();
        let mut report = PumpReport::default();
        // Phase 1 — serial intake: triage every delivery (damage,
        // duplicates and staleness settle immediately); fresh requests
        // split into the concurrent read prefix and the serial tail.
        let mut reads: Vec<(usize, Request)> = Vec::new();
        let mut tail: Vec<(usize, Request)> = Vec::new();
        for (slot, (sid, rx, tx)) in sessions.iter_mut().enumerate() {
            let mut in_tail = false;
            // Highest id already admitted from this drain.  A repeat at
            // or below it (a duplicated or reordered frame) must NOT be
            // admitted again — it goes to the tail, where re-admission
            // at execution time replays or drops it exactly as the
            // serial pump would.  Without this, an in-batch duplicate
            // would execute twice.
            let mut admitted: Option<u64> = None;
            while let Some(delivery) = rx.recv() {
                let Some(req) = self.triage(*sid, &delivery, &tracer, *tx, &mut report) else {
                    continue;
                };
                if admitted.is_some_and(|high| req.id <= high) {
                    tail.push((slot, req));
                    continue;
                }
                admitted = Some(req.id);
                if !in_tail && exec::is_snapshot_read(&req.body) {
                    reads.push((slot, req));
                } else {
                    in_tail = true;
                    tail.push((slot, req));
                }
            }
        }

        // Phase 2 — the worker pool: one snapshot pin serves every read.
        // Workers pull indices off a shared cursor; results are slotted
        // back by index so completion order never leaks into responses.
        let mut outcomes: Vec<Option<Result<ResponseBody, String>>> = Vec::new();
        if !reads.is_empty() {
            let snap = db.snapshot();
            outcomes.resize_with(reads.len(), || None);
            let pool = workers.clamp(1, reads.len());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let done: Vec<(usize, Result<ResponseBody, String>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..pool)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= reads.len() {
                                    break local;
                                }
                                let outcome = exec::execute_snapshot(&snap, &reads[i].1.body)
                                    .expect("phase 1 admits only snapshot reads");
                                local.push((i, outcome));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("snapshot reader panicked"))
                    .collect()
            });
            for (i, outcome) in done {
                outcomes[i] = Some(outcome);
            }
            let metrics = tracer.metrics();
            metrics.inc_counter("server.snapshot.batches", 1);
            metrics.set_gauge("server.snapshot.epoch", snap.epoch() as f64);
            metrics.observe(
                "server.snapshot.batch_pages",
                &PAGE_BOUNDS,
                snap.pages_read() as f64,
            );
        }

        // Phase 3 — serial completion: stamp, cache and send every read
        // response in intake order (page I/O is metered per batch, not
        // per request — the envelope carries zero), then run the tail.
        for ((slot, req), outcome) in reads.into_iter().zip(outcomes) {
            let outcome = outcome.expect("every admitted read executed");
            let label = req.body.label();
            let (sid, _, tx) = &mut sessions[slot];
            let sid = *sid;
            self.finish_fresh(
                sid,
                &tracer,
                req.id,
                label,
                false,
                outcome,
                IoSnapshot::default(),
                true,
                Vec::new(),
                &mut **tx,
                &mut report,
            );
        }
        for (slot, req) in tail {
            let (sid, _, tx) = &mut sessions[slot];
            let sid = *sid;
            // Re-admit against the state as of *execution* time: a
            // Shutdown earlier in this tail may have closed the session,
            // and deferred duplicates must replay or drop, not re-run.
            let Some(req) = self.admit(sid, req, &tracer, &mut **tx, &mut report) else {
                continue;
            };
            self.respond_fresh(sid, db, req, &mut **tx, &mut report);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use asr_core::Database;
    use asr_durable::{LosslessChannel, MemStorage};
    use asr_net::Request;

    use super::*;

    fn tiny_db() -> Database {
        asr_workload::company_database().db
    }

    fn plain<'a>(db: &'a mut Database) -> ServerDb<'a, MemStorage> {
        ServerDb::Plain(db)
    }

    fn send_req(ch: &mut LosslessChannel, id: u64, body: RequestBody) {
        ch.send(Request { id, body }.encode());
    }

    fn recv_resp(ch: &mut LosslessChannel) -> Response {
        match decode_frame(&ch.recv().expect("delivery")) {
            Some(WireMessage::Response(resp)) => resp,
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn fresh_requests_execute_and_respond() {
        let mut db = tiny_db();
        let mut server = NetServer::new();
        let sid = server.open_session();
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        send_req(&mut rx, 1, RequestBody::Ping);
        send_req(&mut rx, 2, RequestBody::ListAsrs);
        let report = server.pump_session(sid, &mut plain(&mut db), &mut rx, &mut tx);
        assert_eq!(report.executed, 2);
        assert_eq!(recv_resp(&mut tx).body, ResponseBody::Ok);
        match recv_resp(&mut tx).body {
            ResponseBody::Text(_) => {}
            other => panic!("expected text, got {other:?}"),
        }
        assert_eq!(db.tracer().metrics().counter("server.requests"), 2);
    }

    #[test]
    fn duplicate_replays_without_reexecution() {
        let mut db = tiny_db();
        let mut server = NetServer::new();
        let sid = server.open_session();
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        let body = RequestBody::Instantiate {
            type_name: "EMP".into(),
        };
        send_req(&mut rx, 1, body.clone());
        send_req(&mut rx, 1, body.clone());
        send_req(&mut rx, 1, body);
        let report = server.pump_session(sid, &mut plain(&mut db), &mut rx, &mut tx);
        assert_eq!(report.executed, 1);
        assert_eq!(report.replayed, 2);
        // All three responses are byte-identical: one object, not three.
        let first = recv_resp(&mut tx);
        assert_eq!(recv_resp(&mut tx), first);
        assert_eq!(recv_resp(&mut tx), first);
        assert_eq!(server.requests_executed(), 1);
    }

    #[test]
    fn damaged_frame_nacks_and_stale_drops() {
        let mut db = tiny_db();
        let mut server = NetServer::new();
        let sid = server.open_session();
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        // Execute ids 1 and 2, then replay id 1 (stale) and damage a frame.
        send_req(&mut rx, 1, RequestBody::Ping);
        send_req(&mut rx, 2, RequestBody::Ping);
        send_req(&mut rx, 1, RequestBody::Ping);
        let mut bad = Request {
            id: 3,
            body: RequestBody::Ping,
        }
        .encode();
        let len = bad.len();
        bad[len - 1] ^= 0x01;
        rx.send(bad);
        let report = server.pump_session(sid, &mut plain(&mut db), &mut rx, &mut tx);
        assert_eq!(report.executed, 2);
        assert_eq!(report.dropped_stale, 1);
        assert_eq!(report.nacked, 1);
        recv_resp(&mut tx);
        recv_resp(&mut tx);
        let nack = recv_resp(&mut tx);
        assert_eq!(nack.id, 0);
        assert_eq!(nack.body, ResponseBody::Nack { last_executed: 2 });
    }

    #[test]
    fn shutdown_closes_session() {
        let mut db = tiny_db();
        let mut server = NetServer::new();
        let sid = server.open_session();
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        send_req(&mut rx, 1, RequestBody::Shutdown);
        send_req(&mut rx, 2, RequestBody::Ping);
        server.pump_session(sid, &mut plain(&mut db), &mut rx, &mut tx);
        assert!(!server.session_open(sid));
        assert_eq!(recv_resp(&mut tx).body, ResponseBody::Ok);
        match recv_resp(&mut tx).body {
            ResponseBody::Err(msg) => assert!(msg.contains("closed")),
            other => panic!("expected err, got {other:?}"),
        }
    }

    #[test]
    fn request_errors_keep_session_usable() {
        let mut db = tiny_db();
        let mut server = NetServer::new();
        let sid = server.open_session();
        let (mut rx, mut tx) = (LosslessChannel::new(), LosslessChannel::new());
        send_req(&mut rx, 1, RequestBody::Query("select nonsense".into()));
        send_req(&mut rx, 2, RequestBody::Ping);
        let report = server.pump_session(sid, &mut plain(&mut db), &mut rx, &mut tx);
        assert_eq!(report.executed, 2);
        match recv_resp(&mut tx).body {
            ResponseBody::Err(_) => {}
            other => panic!("expected err, got {other:?}"),
        }
        assert_eq!(recv_resp(&mut tx).body, ResponseBody::Ok);
        assert_eq!(db.tracer().metrics().counter("server.errors"), 1);
    }
}
