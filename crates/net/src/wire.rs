//! Request/response messages and their frame envelope.
//!
//! A message on the wire is `frame(payload)` where the payload is:
//!
//! ```text
//! [dir: u8 'Q'|'R'] [id: u64 LE] [tag: u8] [body…]
//! ```
//!
//! `id` is the client-assigned, per-session monotonic request id; a
//! response echoes the id of the request it answers (`0` for a NACK to a
//! frame whose id was unreadable).  Decoding mirrors
//! [`asr_durable::ShipMessage`]: *any* damage — short frame, bad CRC,
//! unknown tag, trailing bytes — yields `None`, and the receiver NACKs
//! rather than guessing.  Combined with exactly-once execution on the
//! server (duplicate ids replay the cached response), this is what makes
//! the chaos profile safe: a damaged or replayed frame can delay a
//! request but never mis-execute it.

use asr_core::{Cell, Row};
use asr_gom::{Oid, Value};
use asr_pagesim::IoSnapshot;

use crate::codec::{CodecError, Reader, Writer};

const DIR_REQUEST: u8 = b'Q';
const DIR_RESPONSE: u8 = b'R';

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Per-session monotonic id, assigned by the client.
    pub id: u64,
    /// What to execute.
    pub body: RequestBody,
}

/// The request taxonomy — the shell grammar plus the shard-internal ops.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness / round-trip check.
    Ping,
    /// Execute an OQL query, returning a result table.
    Query(String),
    /// Execute an OQL query with the per-operator profile (`\analyze`).
    Analyze(String),
    /// Instantiate an object of the named type (`\new`-style mutation).
    Instantiate { type_name: String },
    /// Set `owner.attr = value`.
    SetAttr {
        owner: Oid,
        attr: String,
        value: Value,
    },
    /// Insert `elem` into the set attribute `owner.attr`.
    InsertIntoAttrSet {
        owner: Oid,
        attr: String,
        elem: Value,
    },
    /// Bind a shell variable on the server session.
    BindVar { name: String, value: Value },
    /// Materialize an ASR over `dotted` (extension by name; empty `cuts`
    /// means binary decomposition).
    CreateAsr {
        dotted: String,
        extension: String,
        cuts: Vec<u32>,
    },
    /// Drop an ASR by id.
    DropAsr { asr: u32 },
    /// List live ASRs (rendered text).
    ListAsrs,
    /// Render the server's metrics table (`\stats`).
    Stats,
    /// Durable checkpoint (`delta` = `\checkpoint delta`).
    Checkpoint { delta: bool },
    /// Batched clustered probe against one stored partition of one ASR:
    /// `lookup_first_many` when `forward`, else `lookup_last_many`.
    /// Scatter-gather broadcasts this to every shard and unions the rows.
    ShardProbe {
        asr: u32,
        part: u32,
        forward: bool,
        keys: Vec<Cell>,
    },
    /// Exhaustive scan of one stored partition, keeping rows whose cell
    /// at `offset` is in `frontier` (the interior-entry case of the span
    /// walk).  Broadcast like [`RequestBody::ShardProbe`].
    ShardScan {
        asr: u32,
        part: u32,
        offset: u32,
        frontier: Vec<Cell>,
    },
    /// Shard liveness + placement accounting.
    ShardStatus,
    /// Close the session.
    Shutdown,
}

impl RequestBody {
    /// Short label for spans/metrics.
    pub fn label(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::Query(_) => "query",
            RequestBody::Analyze(_) => "analyze",
            RequestBody::Instantiate { .. } => "instantiate",
            RequestBody::SetAttr { .. } => "set_attr",
            RequestBody::InsertIntoAttrSet { .. } => "insert_attr_set",
            RequestBody::BindVar { .. } => "bind_var",
            RequestBody::CreateAsr { .. } => "create_asr",
            RequestBody::DropAsr { .. } => "drop_asr",
            RequestBody::ListAsrs => "list_asrs",
            RequestBody::Stats => "stats",
            RequestBody::Checkpoint { .. } => "checkpoint",
            RequestBody::ShardProbe { .. } => "shard_probe",
            RequestBody::ShardScan { .. } => "shard_scan",
            RequestBody::ShardStatus => "shard_status",
            RequestBody::Shutdown => "shutdown",
        }
    }

    /// Does this request mutate server state?  (Mutations are the ops the
    /// exactly-once guard exists for.)
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            RequestBody::Instantiate { .. }
                | RequestBody::SetAttr { .. }
                | RequestBody::InsertIntoAttrSet { .. }
                | RequestBody::BindVar { .. }
                | RequestBody::CreateAsr { .. }
                | RequestBody::DropAsr { .. }
                | RequestBody::Checkpoint { .. }
        )
    }
}

/// Per-shard placement/health figures carried by
/// [`ResponseBody::ShardStatusReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardHealth {
    /// Stored-partition rows placed on this shard across all ASRs.
    pub placed_rows: u64,
    /// Modeled pages across the shard's partition trees.
    pub pages: u64,
    /// Replication LSN the shard's applier has reached.
    pub applied_lsn: u64,
    /// Requests the shard node has executed.
    pub requests: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id (0 when the damaged request's id was
    /// unreadable).
    pub id: u64,
    /// The outcome.
    pub body: ResponseBody,
    /// Page I/O charged on the server while executing this request —
    /// merged shard-side costs via [`IoSnapshot::merge`].
    pub io: IoSnapshot,
    /// Shard indices whose contribution is *missing* from this answer.
    /// Empty means the answer is complete; non-empty marks a degraded
    /// scatter-gather result that only covers the surviving shards — the
    /// coordinator flags partiality explicitly rather than returning a
    /// silently wrong union.
    pub partial: Vec<u32>,
}

impl Response {
    /// A complete (non-degraded) response.
    pub fn complete(id: u64, body: ResponseBody, io: IoSnapshot) -> Self {
        Response {
            id,
            body,
            io,
            partial: Vec::new(),
        }
    }
}

/// The response taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Success with nothing to return.
    Ok,
    /// The request failed (message text); the session stays usable.
    Err(String),
    /// The frame was damaged in transit (CRC/decode failure).  Carries the
    /// highest request id executed so far so the client knows where to
    /// resume; the client re-sends everything after it.
    Nack { last_executed: u64 },
    /// An OQL result table.
    Table {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// Rendered text (analyze profile, stats table, ASR listing).
    Text(String),
    /// A fresh OID (instantiate) or an ASR id in the low bits (create).
    Id(u64),
    /// Set-insert result (`true` when the element was new).
    Flag(bool),
    /// Stored-partition rows (shard probe/scan).
    Rows(Vec<Row>),
    /// Shard health (shard-status).
    ShardStatusReply(ShardHealth),
}

impl ResponseBody {
    /// Short label for spans/metrics.
    pub fn label(&self) -> &'static str {
        match self {
            ResponseBody::Ok => "ok",
            ResponseBody::Err(_) => "err",
            ResponseBody::Nack { .. } => "nack",
            ResponseBody::Table { .. } => "table",
            ResponseBody::Text(_) => "text",
            ResponseBody::Id(_) => "id",
            ResponseBody::Flag(_) => "flag",
            ResponseBody::Rows(_) => "rows",
            ResponseBody::ShardStatusReply(_) => "shard_status",
        }
    }
}

/// Either direction, as decoded off a channel.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    Request(Request),
    Response(Response),
}

impl Request {
    /// Frame this request for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(DIR_REQUEST);
        w.u64(self.id);
        match &self.body {
            RequestBody::Ping => w.u8(0),
            RequestBody::Query(text) => {
                w.u8(1);
                w.str(text);
            }
            RequestBody::Analyze(text) => {
                w.u8(2);
                w.str(text);
            }
            RequestBody::Instantiate { type_name } => {
                w.u8(3);
                w.str(type_name);
            }
            RequestBody::SetAttr { owner, attr, value } => {
                w.u8(4);
                w.oid(*owner);
                w.str(attr);
                w.value(value);
            }
            RequestBody::InsertIntoAttrSet { owner, attr, elem } => {
                w.u8(5);
                w.oid(*owner);
                w.str(attr);
                w.value(elem);
            }
            RequestBody::BindVar { name, value } => {
                w.u8(6);
                w.str(name);
                w.value(value);
            }
            RequestBody::CreateAsr {
                dotted,
                extension,
                cuts,
            } => {
                w.u8(7);
                w.str(dotted);
                w.str(extension);
                w.u32(cuts.len() as u32);
                for c in cuts {
                    w.u32(*c);
                }
            }
            RequestBody::DropAsr { asr } => {
                w.u8(8);
                w.u32(*asr);
            }
            RequestBody::ListAsrs => w.u8(9),
            RequestBody::Stats => w.u8(10),
            RequestBody::Checkpoint { delta } => {
                w.u8(11);
                w.bool(*delta);
            }
            RequestBody::ShardProbe {
                asr,
                part,
                forward,
                keys,
            } => {
                w.u8(12);
                w.u32(*asr);
                w.u32(*part);
                w.bool(*forward);
                w.cells(keys);
            }
            RequestBody::ShardScan {
                asr,
                part,
                offset,
                frontier,
            } => {
                w.u8(13);
                w.u32(*asr);
                w.u32(*part);
                w.u32(*offset);
                w.cells(frontier);
            }
            RequestBody::ShardStatus => w.u8(14),
            RequestBody::Shutdown => w.u8(15),
        }
        asr_durable::frame(&w.into_bytes())
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<RequestBody, CodecError> {
        Ok(match r.u8()? {
            0 => RequestBody::Ping,
            1 => RequestBody::Query(r.str()?),
            2 => RequestBody::Analyze(r.str()?),
            3 => RequestBody::Instantiate {
                type_name: r.str()?,
            },
            4 => RequestBody::SetAttr {
                owner: r.oid()?,
                attr: r.str()?,
                value: r.value()?,
            },
            5 => RequestBody::InsertIntoAttrSet {
                owner: r.oid()?,
                attr: r.str()?,
                elem: r.value()?,
            },
            6 => RequestBody::BindVar {
                name: r.str()?,
                value: r.value()?,
            },
            7 => {
                let dotted = r.str()?;
                let extension = r.str()?;
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(CodecError::Short);
                }
                let cuts = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
                RequestBody::CreateAsr {
                    dotted,
                    extension,
                    cuts,
                }
            }
            8 => RequestBody::DropAsr { asr: r.u32()? },
            9 => RequestBody::ListAsrs,
            10 => RequestBody::Stats,
            11 => RequestBody::Checkpoint { delta: r.bool()? },
            12 => RequestBody::ShardProbe {
                asr: r.u32()?,
                part: r.u32()?,
                forward: r.bool()?,
                keys: r.cells()?,
            },
            13 => RequestBody::ShardScan {
                asr: r.u32()?,
                part: r.u32()?,
                offset: r.u32()?,
                frontier: r.cells()?,
            },
            14 => RequestBody::ShardStatus,
            15 => RequestBody::Shutdown,
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

impl Response {
    /// Frame this response for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(DIR_RESPONSE);
        w.u64(self.id);
        match &self.body {
            ResponseBody::Ok => w.u8(0),
            ResponseBody::Err(msg) => {
                w.u8(1);
                w.str(msg);
            }
            ResponseBody::Nack { last_executed } => {
                w.u8(2);
                w.u64(*last_executed);
            }
            ResponseBody::Table { columns, rows } => {
                w.u8(3);
                w.u32(columns.len() as u32);
                for c in columns {
                    w.str(c);
                }
                w.u32(rows.len() as u32);
                for row in rows {
                    w.u32(row.len() as u32);
                    for v in row {
                        w.value(v);
                    }
                }
            }
            ResponseBody::Text(text) => {
                w.u8(4);
                w.str(text);
            }
            ResponseBody::Id(id) => {
                w.u8(5);
                w.u64(*id);
            }
            ResponseBody::Flag(b) => {
                w.u8(6);
                w.bool(*b);
            }
            ResponseBody::Rows(rows) => {
                w.u8(7);
                w.rows(rows);
            }
            ResponseBody::ShardStatusReply(h) => {
                w.u8(8);
                w.u64(h.placed_rows);
                w.u64(h.pages);
                w.u64(h.applied_lsn);
                w.u64(h.requests);
            }
        }
        w.io(&self.io);
        w.u32(self.partial.len() as u32);
        for shard in &self.partial {
            w.u32(*shard);
        }
        asr_durable::frame(&w.into_bytes())
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<ResponseBody, CodecError> {
        Ok(match r.u8()? {
            0 => ResponseBody::Ok,
            1 => ResponseBody::Err(r.str()?),
            2 => ResponseBody::Nack {
                last_executed: r.u64()?,
            },
            3 => {
                let ncols = r.u32()? as usize;
                if ncols > r.remaining() {
                    return Err(CodecError::Short);
                }
                let columns = (0..ncols).map(|_| r.str()).collect::<Result<_, _>>()?;
                let nrows = r.u32()? as usize;
                if nrows > r.remaining() {
                    return Err(CodecError::Short);
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let width = r.u32()? as usize;
                    if width > r.remaining() {
                        return Err(CodecError::Short);
                    }
                    rows.push((0..width).map(|_| r.value()).collect::<Result<_, _>>()?);
                }
                ResponseBody::Table { columns, rows }
            }
            4 => ResponseBody::Text(r.str()?),
            5 => ResponseBody::Id(r.u64()?),
            6 => ResponseBody::Flag(r.bool()?),
            7 => ResponseBody::Rows(r.rows()?),
            8 => ResponseBody::ShardStatusReply(ShardHealth {
                placed_rows: r.u64()?,
                pages: r.u64()?,
                applied_lsn: r.u64()?,
                requests: r.u64()?,
            }),
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

/// Refuse frames whose length word claims more than this payload.  A
/// single corrupt length byte must not balloon downstream allocation or
/// stall a stream waiting for terabytes; TCP reassembly
/// (`asr_server::tcp`) shares this cap.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Decode one delivery: verify the `[len][crc32][payload]` envelope, then
/// the payload grammar.  `None` means the frame is damaged (or not ours) —
/// the receiver NACKs or retries, mirroring [`asr_durable::ShipMessage`]'s
/// contract that damage is detected, never interpreted.
pub fn decode_frame(delivery: &[u8]) -> Option<WireMessage> {
    if delivery.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(delivery[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(delivery[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return None;
    }
    if delivery.len() != 8 + len {
        return None;
    }
    let payload = &delivery[8..];
    if asr_durable::crc32(payload) != crc {
        return None;
    }
    let mut r = Reader::new(payload);
    let dir = r.u8().ok()?;
    let id = r.u64().ok()?;
    match dir {
        DIR_REQUEST => {
            let body = Request::decode_body(&mut r).ok()?;
            r.finish().ok()?;
            Some(WireMessage::Request(Request { id, body }))
        }
        DIR_RESPONSE => {
            let body = Response::decode_body(&mut r).ok()?;
            let io = r.io().ok()?;
            let missing = r.u32().ok()? as usize;
            if missing > r.remaining() {
                return None;
            }
            let partial = (0..missing)
                .map(|_| r.u32())
                .collect::<Result<_, _>>()
                .ok()?;
            r.finish().ok()?;
            Some(WireMessage::Response(Response {
                id,
                body,
                io,
                partial,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        let cells = vec![
            Cell::Oid(Oid::from_raw(4)),
            Cell::Value(Value::string("alloy")),
        ];
        let bodies = vec![
            RequestBody::Ping,
            RequestBody::Query("SELECT e FROM e IN Emp WHERE e.name = \"x\"".into()),
            RequestBody::Analyze("SELECT e FROM e IN Emp".into()),
            RequestBody::Instantiate {
                type_name: "EMP".into(),
            },
            RequestBody::SetAttr {
                owner: Oid::from_raw(9),
                attr: "name".into(),
                value: Value::string("Mick"),
            },
            RequestBody::InsertIntoAttrSet {
                owner: Oid::from_raw(2),
                attr: "divisions".into(),
                elem: Value::Ref(Oid::from_raw(5)),
            },
            RequestBody::BindVar {
                name: "cheap".into(),
                value: Value::decimal(10, 0),
            },
            RequestBody::CreateAsr {
                dotted: "Division.Manufactures.Composition.Name".into(),
                extension: "full".into(),
                cuts: vec![0, 2, 4],
            },
            RequestBody::DropAsr { asr: 3 },
            RequestBody::ListAsrs,
            RequestBody::Stats,
            RequestBody::Checkpoint { delta: true },
            RequestBody::ShardProbe {
                asr: 0,
                part: 1,
                forward: true,
                keys: cells.clone(),
            },
            RequestBody::ShardScan {
                asr: 0,
                part: 2,
                offset: 1,
                frontier: cells,
            },
            RequestBody::ShardStatus,
            RequestBody::Shutdown,
        ];
        bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| Request {
                id: i as u64 + 1,
                body,
            })
            .collect()
    }

    fn sample_responses() -> Vec<Response> {
        let io = IoSnapshot {
            reads: 10,
            writes: 2,
            buffer_hits: 5,
            batch_probes: 3,
            batch_pages_saved: 7,
        };
        let row = Row::new(vec![Some(Cell::Oid(Oid::from_raw(1))), None]);
        let bodies = vec![
            ResponseBody::Ok,
            ResponseBody::Err("no ASR with id 9".into()),
            ResponseBody::Nack { last_executed: 41 },
            ResponseBody::Table {
                columns: vec!["e.name".into()],
                rows: vec![vec![Value::string("Mick")], vec![Value::Null]],
            },
            ResponseBody::Text("profile…".into()),
            ResponseBody::Id(77),
            ResponseBody::Flag(true),
            ResponseBody::Rows(vec![row]),
            ResponseBody::ShardStatusReply(ShardHealth {
                placed_rows: 100,
                pages: 12,
                applied_lsn: 9,
                requests: 55,
            }),
        ];
        bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| Response {
                id: i as u64 + 1,
                body,
                io,
                // Exercise both complete and degraded answers.
                partial: if i % 3 == 0 { vec![1, 3] } else { Vec::new() },
            })
            .collect()
    }

    #[test]
    fn every_request_round_trips() {
        for req in sample_requests() {
            let frame = req.encode();
            match decode_frame(&frame) {
                Some(WireMessage::Request(back)) => assert_eq!(back, req),
                other => panic!("bad decode for {:?}: {other:?}", req.body.label()),
            }
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in sample_responses() {
            let frame = resp.encode();
            match decode_frame(&frame) {
                Some(WireMessage::Response(back)) => assert_eq!(back, resp),
                other => panic!("bad decode for {:?}: {other:?}", resp.body.label()),
            }
        }
    }

    #[test]
    fn decode_rejects_damage() {
        let frame = Request {
            id: 7,
            body: RequestBody::Query("SELECT e FROM e IN Emp".into()),
        }
        .encode();
        // Truncations at every length.
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_none(), "cut at {cut}");
        }
        // Single-bit flips anywhere in the frame must be caught (header
        // damage breaks the length/CRC checks, payload damage the CRC).
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_none(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn partial_flag_round_trips_and_defaults_empty() {
        let degraded = Response {
            id: 12,
            body: ResponseBody::Rows(vec![Row::new(vec![Some(Cell::Oid(Oid::from_raw(8)))])]),
            io: IoSnapshot::default(),
            partial: vec![0, 2, 5],
        };
        match decode_frame(&degraded.encode()) {
            Some(WireMessage::Response(back)) => {
                assert_eq!(back.partial, vec![0, 2, 5]);
                assert_eq!(back, degraded);
            }
            other => panic!("bad decode: {other:?}"),
        }
        let complete = Response::complete(13, ResponseBody::Ok, IoSnapshot::default());
        match decode_frame(&complete.encode()) {
            Some(WireMessage::Response(back)) => assert!(back.partial.is_empty()),
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_oversize_length_word() {
        // A frame whose length word claims more than MAX_FRAME_LEN must be
        // refused before any allocation, even if the byte count "matches".
        let mut huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 8]);
        assert!(decode_frame(&huge).is_none());
        // u32::MAX is the classic corrupt-length-byte case.
        let mut garbage = u32::MAX.to_le_bytes().to_vec();
        garbage.extend_from_slice(&[0u8; 64]);
        assert!(decode_frame(&garbage).is_none());
        // The cap sits above every legitimate frame: a real one decodes.
        let ok = Request {
            id: 1,
            body: RequestBody::Ping,
        }
        .encode();
        assert!(decode_frame(&ok).is_some());
    }

    #[test]
    fn mutation_classification() {
        assert!(RequestBody::Instantiate {
            type_name: "EMP".into()
        }
        .is_mutation());
        assert!(!RequestBody::Query("q".into()).is_mutation());
        assert!(!RequestBody::ShardProbe {
            asr: 0,
            part: 0,
            forward: true,
            keys: vec![]
        }
        .is_mutation());
    }
}
