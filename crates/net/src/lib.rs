//! `asr-net`: the binary wire protocol for scale-out serving.
//!
//! Every message travels as one WAL-style frame — `[len][crc32][payload]`,
//! built by [`asr_durable::frame`] and verified on receipt exactly the way
//! [`asr_durable::scan_wal`] verifies log records.  Integrity is enforced
//! end-to-end by the frame CRC, *not* by the transport: the transport is
//! the existing [`asr_durable::Channel`] trait, so the fault-injecting
//! [`asr_durable::FaultyChannel`] (drops, truncations, bit flips,
//! duplicates, reorders) carries over unchanged as the network test
//! harness.  A damaged frame decodes to `None`, is NACKed, and is re-sent —
//! never silently mis-executed.
//!
//! The payload grammar (see DESIGN.md "Wire protocol") is a direction byte
//! (`Q` request / `R` response), a little-endian request id, and a tagged
//! body covering the shell grammar — OQL queries, `\analyze`, mutations,
//! admin ops — plus the shard-internal probe/scan ops the scatter-gather
//! coordinator issues.

mod client;
mod codec;
mod wire;

pub use client::{ClientError, ClientStats, Transport, WireClient};
pub use codec::{CodecError, Reader, Writer};
pub use wire::{
    decode_frame, Request, RequestBody, Response, ResponseBody, ShardHealth, WireMessage,
    MAX_FRAME_LEN,
};
