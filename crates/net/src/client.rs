//! The wire client: request ids, retries, NACK handling, and duplicate
//! suppression over an arbitrary transport.
//!
//! The client never interprets a damaged frame: anything that fails
//! [`decode_frame`] is counted and dropped, and the request is re-sent
//! after a modeled backoff (the same `min(cap, base << (n-1))` schedule
//! the replication pump charges).  Because the server executes each
//! request id at most once and replays the cached response for
//! duplicates, a re-send is always safe — at-least-once delivery plus
//! server-side dedup gives exactly-once execution.

use std::fmt;

use asr_durable::BackoffPolicy;

use crate::wire::{decode_frame, Request, RequestBody, Response, ResponseBody, WireMessage};

/// A bidirectional framed transport: the client's view of one session.
///
/// In-process servers implement this by pumping their request queue
/// inside [`Transport::poll`]; a TCP transport maps it onto socket
/// writes/reads.  `poll` returns raw deliveries — damage detection stays
/// in the client so every transport gets it for free.
pub trait Transport {
    /// Hand one frame to the server side (which may lose or damage it).
    fn send(&mut self, frame: Vec<u8>);
    /// Take the next server → client delivery, if one is available.
    fn poll(&mut self) -> Option<Vec<u8>>;
}

/// Why a call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No intact response after the configured number of attempts — the
    /// link is effectively down (e.g. a blackout chaos profile).
    Exhausted {
        /// Attempts made (send + poll rounds).
        attempts: u32,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted { attempts } => {
                write!(f, "no intact response after {attempts} attempts")
            }
        }
    }
}

/// Delivery accounting for one client session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests issued (distinct ids).
    pub requests: u64,
    /// Frames sent, including re-sends.
    pub frames_sent: u64,
    /// Re-sends of an already-issued request.
    pub retries: u64,
    /// Deliveries that failed CRC/decode and were discarded.
    pub damaged_responses: u64,
    /// Intact responses for an older id (duplicates, late arrivals).
    pub stale_responses: u64,
    /// NACKs received (server saw a damaged frame).
    pub nacks: u64,
    /// Modeled backoff ticks charged across all retries.
    pub backoff_ticks: u64,
}

/// One client session speaking the wire protocol over a [`Transport`].
pub struct WireClient<T: Transport> {
    transport: T,
    next_id: u64,
    backoff: BackoffPolicy,
    max_attempts: u32,
    stats: ClientStats,
}

impl<T: Transport> WireClient<T> {
    /// A session over `transport` with the default retry budget.
    pub fn new(transport: T) -> Self {
        WireClient {
            transport,
            next_id: 1,
            backoff: BackoffPolicy::default(),
            max_attempts: 64,
            stats: ClientStats::default(),
        }
    }

    /// Override the retry budget (attempts before [`ClientError::Exhausted`]).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Re-budget an existing session.  The coordinator uses this as its
    /// per-request deadline: a short budget detects a dead shard in a few
    /// attempts instead of grinding through the default 64.
    pub fn set_max_attempts(&mut self, max_attempts: u32) {
        self.max_attempts = max_attempts.max(1);
    }

    /// The current attempt budget.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Session accounting so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The transport, e.g. to reach the chaos channel underneath.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable transport access.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Issue `body`, retrying through damage until an intact response for
    /// this request arrives or the attempt budget is exhausted.
    pub fn call(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.requests += 1;
        let frame = Request { id, body }.encode();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.transport.send(frame.clone());
            self.stats.frames_sent += 1;
            if attempts > 1 {
                self.stats.retries += 1;
            }
            // Drain everything the transport has; the response for `id`
            // may be preceded by stale duplicates or damaged deliveries.
            while let Some(delivery) = self.transport.poll() {
                match decode_frame(&delivery) {
                    Some(WireMessage::Response(resp)) if resp.id == id => {
                        if let ResponseBody::Nack { .. } = resp.body {
                            self.stats.nacks += 1;
                            break; // re-send the same frame
                        }
                        return Ok(resp);
                    }
                    Some(WireMessage::Response(resp)) if resp.id == 0 => {
                        // NACK for a frame whose id was unreadable: the
                        // server wants a re-send.
                        self.stats.nacks += 1;
                        break;
                    }
                    Some(WireMessage::Response(_)) => {
                        self.stats.stale_responses += 1;
                    }
                    Some(WireMessage::Request(_)) | None => {
                        self.stats.damaged_responses += 1;
                    }
                }
            }
            if attempts >= self.max_attempts {
                return Err(ClientError::Exhausted { attempts });
            }
            self.stats.backoff_ticks += self.backoff.delay_for(attempts);
        }
    }
}

#[cfg(test)]
mod tests {
    use asr_pagesim::IoSnapshot;

    use super::*;

    /// A scripted transport: the "server" side is a queue of canned
    /// deliveries released one per poll after each send.
    struct Scripted {
        sent: Vec<Vec<u8>>,
        replies: std::collections::VecDeque<Vec<u8>>,
    }

    impl Transport for Scripted {
        fn send(&mut self, frame: Vec<u8>) {
            self.sent.push(frame);
        }
        fn poll(&mut self) -> Option<Vec<u8>> {
            self.replies.pop_front()
        }
    }

    fn ok_response(id: u64) -> Vec<u8> {
        Response::complete(id, ResponseBody::Ok, IoSnapshot::default()).encode()
    }

    #[test]
    fn call_skips_stale_and_damaged_then_succeeds() {
        let mut damaged = ok_response(3);
        let n = damaged.len();
        damaged[n - 1] ^= 0x40;
        let transport = Scripted {
            sent: Vec::new(),
            replies: [ok_response(0xDEAD), damaged, ok_response(1)].into(),
        };
        let mut client = WireClient::new(transport);
        let resp = client.call(RequestBody::Ping).expect("response");
        assert_eq!(resp.id, 1);
        assert_eq!(client.stats().stale_responses, 1);
        assert_eq!(client.stats().damaged_responses, 1);
    }

    #[test]
    fn nack_triggers_resend() {
        let nack = Response::complete(
            0,
            ResponseBody::Nack { last_executed: 0 },
            IoSnapshot::default(),
        )
        .encode();
        let transport = Scripted {
            sent: Vec::new(),
            replies: [nack, ok_response(1)].into(),
        };
        let mut client = WireClient::new(transport);
        let resp = client.call(RequestBody::Ping).expect("response");
        assert_eq!(resp.body, ResponseBody::Ok);
        let stats = client.stats();
        assert_eq!(stats.nacks, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.frames_sent, 2);
        assert!(stats.backoff_ticks >= 1);
    }

    #[test]
    fn silence_exhausts() {
        let transport = Scripted {
            sent: Vec::new(),
            replies: [].into(),
        };
        let mut client = WireClient::new(transport).with_max_attempts(5);
        let err = client.call(RequestBody::Ping).unwrap_err();
        assert_eq!(err, ClientError::Exhausted { attempts: 5 });
        assert_eq!(client.stats().frames_sent, 5);
    }
}
