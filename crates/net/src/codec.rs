//! Primitive little-endian codecs shared by every wire message.
//!
//! The writer side is infallible (`Vec<u8>` appends); the reader side
//! returns [`CodecError`] on any shortfall or malformed tag so the caller
//! can treat the whole frame as damaged.  All integers are little-endian,
//! matching the WAL frame header; strings are `u32` length + UTF-8 bytes;
//! sequences are `u32` count + elements.

use std::fmt;

use asr_core::{Cell, Row};
use asr_gom::{Oid, Value};
use asr_pagesim::IoSnapshot;

/// Why a payload failed to decode.  Callers normally collapse this to
/// "frame damaged" — the distinction is for tests and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the field needs.
    Short,
    /// A tag byte named no known variant.
    BadTag(u8),
    /// String bytes were not UTF-8.
    BadUtf8,
    /// Bytes remained after the message was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Short => write!(f, "payload too short"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// The finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn oid(&mut self, oid: Oid) {
        self.u64(oid.as_raw());
    }

    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Integer(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(bits) => {
                self.u8(2);
                self.u64(*bits);
            }
            Value::Decimal(d) => {
                self.u8(3);
                self.i64(*d);
            }
            Value::String(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Char(c) => {
                self.u8(5);
                self.u32(*c as u32);
            }
            Value::Bool(b) => {
                self.u8(6);
                self.bool(*b);
            }
            Value::Ref(oid) => {
                self.u8(7);
                self.oid(*oid);
            }
        }
    }

    pub fn cell(&mut self, c: &Cell) {
        match c {
            Cell::Oid(oid) => {
                self.u8(0);
                self.oid(*oid);
            }
            Cell::Value(v) => {
                self.u8(1);
                self.value(v);
            }
        }
    }

    /// A row: arity, then each column as NULL (`0`) or `1` + cell.
    pub fn row(&mut self, row: &Row) {
        self.u32(row.arity() as u32);
        for cell in row.cells() {
            match cell {
                None => self.u8(0),
                Some(c) => {
                    self.u8(1);
                    self.cell(c);
                }
            }
        }
    }

    pub fn cells(&mut self, cells: &[Cell]) {
        self.u32(cells.len() as u32);
        for c in cells {
            self.cell(c);
        }
    }

    pub fn rows(&mut self, rows: &[Row]) {
        self.u32(rows.len() as u32);
        for r in rows {
            self.row(r);
        }
    }

    pub fn io(&mut self, io: &IoSnapshot) {
        self.u64(io.reads);
        self.u64(io.writes);
        self.u64(io.buffer_hits);
        self.u64(io.batch_probes);
        self.u64(io.batch_pages_saved);
    }
}

/// Cursor over a received payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Short);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    pub fn oid(&mut self) -> Result<Oid, CodecError> {
        Ok(Oid::from_raw(self.u64()?))
    }

    pub fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Integer(self.i64()?)),
            2 => Ok(Value::Float(self.u64()?)),
            3 => Ok(Value::Decimal(self.i64()?)),
            4 => Ok(Value::String(self.str()?)),
            5 => {
                let raw = self.u32()?;
                char::from_u32(raw)
                    .map(Value::Char)
                    .ok_or(CodecError::BadTag(5))
            }
            6 => Ok(Value::Bool(self.bool()?)),
            7 => Ok(Value::Ref(self.oid()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn cell(&mut self) -> Result<Cell, CodecError> {
        match self.u8()? {
            0 => Ok(Cell::Oid(self.oid()?)),
            1 => Ok(Cell::Value(self.value()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn row(&mut self) -> Result<Row, CodecError> {
        let arity = self.u32()? as usize;
        // Arity is bounded by the payload length: each column is ≥ 1 byte.
        if arity > self.remaining() {
            return Err(CodecError::Short);
        }
        let mut cells = Vec::with_capacity(arity);
        for _ in 0..arity {
            cells.push(match self.u8()? {
                0 => None,
                1 => Some(self.cell()?),
                t => return Err(CodecError::BadTag(t)),
            });
        }
        Ok(Row::new(cells))
    }

    pub fn cells(&mut self) -> Result<Vec<Cell>, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::Short);
        }
        (0..n).map(|_| self.cell()).collect()
    }

    pub fn rows(&mut self) -> Result<Vec<Row>, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::Short);
        }
        (0..n).map(|_| self.row()).collect()
    }

    pub fn io(&mut self) -> Result<IoSnapshot, CodecError> {
        Ok(IoSnapshot {
            reads: self.u64()?,
            writes: self.u64()?,
            buffer_hits: self.u64()?,
            batch_probes: self.u64()?,
            batch_pages_saved: self.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.str("héllo");
        w.oid(Oid::from_raw(99));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.oid().unwrap(), Oid::from_raw(99));
        r.finish().unwrap();
    }

    #[test]
    fn values_cells_rows_round_trip() {
        let values = vec![
            Value::Null,
            Value::Integer(-7),
            Value::float(2.75),
            Value::decimal(1205, 50),
            Value::string("Kemper & Moerkotte"),
            Value::Char('π'),
            Value::Bool(false),
            Value::Ref(Oid::from_raw(12)),
        ];
        let row = Row::new(vec![
            Some(Cell::Oid(Oid::from_raw(3))),
            None,
            Some(Cell::Value(Value::string("wing"))),
        ]);
        let mut w = Writer::new();
        for v in &values {
            w.value(v);
        }
        w.row(&row);
        w.rows(&[row.clone(), row.clone()]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &values {
            assert_eq!(&r.value().unwrap(), v);
        }
        assert_eq!(r.row().unwrap(), row);
        assert_eq!(r.rows().unwrap(), vec![row.clone(), row]);
        r.finish().unwrap();
    }

    #[test]
    fn short_and_bad_tag_rejected() {
        // String tag claiming 1 byte with none following.
        let mut r = Reader::new(&[4, 1, 0, 0, 0]);
        assert_eq!(r.value().unwrap_err(), CodecError::Short);
        let mut r = Reader::new(&[0xFF]);
        assert_eq!(r.value().unwrap_err(), CodecError::BadTag(0xFF));
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64().unwrap_err(), CodecError::Short);
        // A huge claimed arity must not allocate: bounded by remaining().
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).rows().unwrap_err(), CodecError::Short);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn io_snapshot_round_trips() {
        let io = IoSnapshot {
            reads: 1,
            writes: 2,
            buffer_hits: 3,
            batch_probes: 4,
            batch_pages_saved: 5,
        };
        let mut w = Writer::new();
        w.io(&io);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.io().unwrap(), io);
        r.finish().unwrap();
    }
}
