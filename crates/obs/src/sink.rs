//! Pluggable consumers for finished spans and events.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

use crate::span::SpanRecord;

/// Receives every finished span / event a [`crate::Tracer`] delivers.
pub trait EventSink {
    /// Handle one record. Called synchronously at span close.
    fn record(&self, record: &SpanRecord);
}

/// Keeps the most recent `capacity` records in memory (`\trace on` uses
/// this in the shell).
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buffer: RefCell<VecDeque<SpanRecord>>,
}

impl RingBufferSink {
    /// A ring holding up to `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            buffer: RefCell::new(VecDeque::new()),
        }
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buffer.borrow().len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.borrow().is_empty()
    }

    /// Remove and return all buffered records, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.buffer.borrow_mut().drain(..).collect()
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, record: &SpanRecord) {
        let mut buffer = self.buffer.borrow_mut();
        if buffer.len() == self.capacity {
            buffer.pop_front();
        }
        buffer.push_back(record.clone());
    }
}

/// Streams records as JSONL to any [`Write`] target.
#[derive(Debug)]
pub struct WriterSink<W: Write> {
    out: RefCell<W>,
}

impl<W: Write> WriterSink<W> {
    /// Wrap a writer; one JSON line per record.
    pub fn new(out: W) -> Self {
        WriterSink {
            out: RefCell::new(out),
        }
    }

    /// Unwrap the writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl<W: Write> EventSink for WriterSink<W> {
    fn record(&self, record: &SpanRecord) {
        // Sinks are best-effort: tracing must never fail the traced
        // operation, so write errors are swallowed.
        let _ = writeln!(self.out.borrow_mut(), "{}", record.to_jsonl());
    }
}

/// Adapts any closure into a sink (how the advisor subscribes its
/// usage recorder).
pub struct FnSink<F: Fn(&SpanRecord)>(F);

impl<F: Fn(&SpanRecord)> FnSink<F> {
    /// Wrap `f`; it is called once per record.
    pub fn new(f: F) -> Self {
        FnSink(f)
    }
}

impl<F: Fn(&SpanRecord)> EventSink for FnSink<F> {
    fn record(&self, record: &SpanRecord) {
        (self.0)(record)
    }
}

/// Convenience: box a closure sink for [`crate::Tracer::add_sink`].
pub fn fn_sink<F: Fn(&SpanRecord) + 'static>(f: F) -> Rc<dyn EventSink> {
    Rc::new(FnSink::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let sink = RingBufferSink::new(2);
        let tracer = Tracer::new();
        for name in ["a", "b", "c"] {
            sink.record(&tracer.span(name).finish());
        }
        let names: Vec<String> = sink.drain().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert!(sink.is_empty());
    }

    #[test]
    fn writer_sink_emits_jsonl() {
        let tracer = Tracer::new();
        let sink = WriterSink::new(Vec::new());
        sink.record(&tracer.span("x").finish());
        sink.record(&tracer.span("y").finish());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn fn_sink_sees_every_record() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let tracer = Tracer::new();
        let seen2 = Rc::clone(&seen);
        tracer.add_sink(fn_sink(move |r| seen2.borrow_mut().push(r.name.clone())));
        tracer.event("e1", &[]);
        tracer.span("s1").finish();
        assert_eq!(*seen.borrow(), vec!["e1".to_string(), "s1".to_string()]);
    }
}
