//! RAII nested spans with per-span I/O deltas.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s; while a guard is alive every
//! page access charged to the tracer's attached
//! [`IoStats`](asr_pagesim::IoStats) falls inside the span, and when the
//! guard finishes (explicitly via [`SpanGuard::finish`] or implicitly on
//! drop — including during a panic unwind) the read/write/buffer-hit
//! *delta* is captured into a [`SpanRecord`] and offered to every
//! registered [`EventSink`]. Zero-duration [`Tracer::event`]s share the
//! record type (with `event = true`) so subscribers like the advisor's
//! usage recorder consume one stream.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

use asr_pagesim::{IoSnapshot, StatsHandle};

use crate::json;
use crate::metrics::MetricsRegistry;
use crate::sink::EventSink;

/// One finished span or point event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique (per tracer) id.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name (dotted lower-case by convention, e.g. `query.backward`).
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Free-form key/value annotations.
    pub attrs: Vec<(String, String)>,
    /// Page reads charged while the span was open.
    pub reads: u64,
    /// Page writes charged while the span was open.
    pub writes: u64,
    /// Buffer hits recorded while the span was open.
    pub buffer_hits: u64,
    /// Rows/objects produced, when the instrumented code reports it.
    pub rows: Option<u64>,
    /// True for zero-duration point events ([`Tracer::event`]).
    pub event: bool,
}

impl SpanRecord {
    /// Total page accesses in the span (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The record as one line of JSON.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":\"{}\",\"depth\":{},\"event\":{}",
            self.id,
            json::escape(&self.name),
            self.depth,
            self.event
        );
        if let Some(parent) = self.parent {
            let _ = write!(out, ",\"parent\":{parent}");
        }
        let _ = write!(
            out,
            ",\"reads\":{},\"writes\":{},\"buffer_hits\":{}",
            self.reads, self.writes, self.buffer_hits
        );
        if let Some(rows) = self.rows {
            let _ = write!(out, ",\"rows\":{rows}");
        }
        if !self.attrs.is_empty() {
            let _ = write!(out, ",\"attrs\":{{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ",");
                }
                let _ = write!(out, "\"{}\":\"{}\"", json::escape(k), json::escape(v));
            }
            let _ = write!(out, "}}");
        }
        let _ = write!(out, "}}");
        out
    }
}

/// Handle returned by [`Tracer::add_sink`], used to detach it again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkId(u64);

#[derive(Default)]
struct Inner {
    stats: RefCell<Option<StatsHandle>>,
    metrics: MetricsRegistry,
    enabled: Cell<bool>,
    next_span: Cell<u64>,
    next_sink: Cell<u64>,
    /// Ids of currently open spans, innermost last.
    stack: RefCell<Vec<u64>>,
    sinks: RefCell<Vec<(u64, Rc<dyn EventSink>)>>,
}

/// Cheaply clonable tracing context: spans, events, sinks and a bundled
/// [`MetricsRegistry`].
///
/// Span *capture* (the I/O deltas) always works when stats are attached;
/// [`Tracer::set_enabled`] only gates delivery to sinks, so e.g.
/// `EXPLAIN ANALYZE` gets measured spans even while `\trace` is off.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled.get())
            .field("open_spans", &self.inner.stack.borrow().len())
            .field("sinks", &self.inner.sinks.borrow().len())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no stats attached (spans report zero I/O) and
    /// delivery enabled.
    pub fn new() -> Self {
        let tracer = Tracer::default();
        tracer.inner.enabled.set(true);
        tracer
    }

    /// A tracer capturing I/O deltas from `stats`.
    pub fn with_stats(stats: StatsHandle) -> Self {
        let tracer = Tracer::new();
        tracer.attach_stats(stats);
        tracer
    }

    /// Attach (or replace) the stats handle spans snapshot.
    pub fn attach_stats(&self, stats: StatsHandle) {
        *self.inner.stats.borrow_mut() = Some(stats);
    }

    /// The bundled metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Gate delivery to sinks (capture is unaffected).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.set(enabled);
    }

    /// Whether records are delivered to sinks.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Register a sink; every finished span and event is offered to it.
    pub fn add_sink(&self, sink: Rc<dyn EventSink>) -> SinkId {
        let id = self.inner.next_sink.get();
        self.inner.next_sink.set(id + 1);
        self.inner.sinks.borrow_mut().push((id, sink));
        SinkId(id)
    }

    /// Detach a sink; returns false if it was already gone.
    pub fn remove_sink(&self, id: SinkId) -> bool {
        let mut sinks = self.inner.sinks.borrow_mut();
        let before = sinks.len();
        sinks.retain(|(sid, _)| *sid != id.0);
        sinks.len() != before
    }

    /// Number of attached sinks.
    pub fn sink_count(&self) -> usize {
        self.inner.sinks.borrow().len()
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.inner.stack.borrow().len()
    }

    /// Open a span. Close it with [`SpanGuard::finish`] to obtain the
    /// record, or let it drop.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Open a span with initial attributes.
    pub fn span_with(&self, name: &str, attrs: &[(&str, String)]) -> SpanGuard {
        let inner = &self.inner;
        let id = inner.next_span.get() + 1;
        inner.next_span.set(id);
        let mut stack = inner.stack.borrow_mut();
        let parent = stack.last().copied();
        let depth = stack.len();
        stack.push(id);
        drop(stack);
        let start = inner.stats.borrow().as_ref().map(|s| s.snapshot());
        SpanGuard {
            inner: Rc::clone(&self.inner),
            start,
            record: Some(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                depth,
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                reads: 0,
                writes: 0,
                buffer_hits: 0,
                rows: None,
                event: false,
            }),
        }
    }

    /// Emit a zero-duration point event (no I/O delta) to the sinks.
    pub fn event(&self, name: &str, attrs: &[(&str, String)]) {
        let inner = &self.inner;
        let id = inner.next_span.get() + 1;
        inner.next_span.set(id);
        let stack = inner.stack.borrow();
        let record = SpanRecord {
            id,
            parent: stack.last().copied(),
            name: name.to_string(),
            depth: stack.len(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            reads: 0,
            writes: 0,
            buffer_hits: 0,
            rows: None,
            event: true,
        };
        drop(stack);
        emit(inner, &record);
    }
}

fn emit(inner: &Inner, record: &SpanRecord) {
    if !inner.enabled.get() {
        return;
    }
    // Clone the sink list out so a sink may attach/detach sinks reentrantly.
    let sinks: Vec<Rc<dyn EventSink>> = inner
        .sinks
        .borrow()
        .iter()
        .map(|(_, s)| Rc::clone(s))
        .collect();
    for sink in sinks {
        sink.record(record);
    }
}

/// RAII handle for an open span. Dropping it — on any path, including a
/// panic unwind — closes the span, captures the I/O delta and notifies the
/// sinks.
pub struct SpanGuard {
    inner: Rc<Inner>,
    start: Option<IoSnapshot>,
    /// `None` once finalized (guards against double-close from
    /// `finish` + `Drop`).
    record: Option<SpanRecord>,
}

impl SpanGuard {
    /// Attach an attribute to the (still open) span.
    pub fn add_attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(record) = self.record.as_mut() {
            record.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Report how many rows/objects the spanned operation produced.
    pub fn set_rows(&mut self, rows: u64) {
        if let Some(record) = self.record.as_mut() {
            record.rows = Some(rows);
        }
    }

    /// Close the span now and return its record (also delivered to sinks).
    pub fn finish(mut self) -> SpanRecord {
        self.finalize().expect("span can only finish once")
    }

    fn finalize(&mut self) -> Option<SpanRecord> {
        let mut record = self.record.take()?;
        if let (Some(start), Some(stats)) = (self.start, self.inner.stats.borrow().as_ref()) {
            let now = stats.snapshot();
            record.reads = now.reads - start.reads;
            record.writes = now.writes - start.writes;
            record.buffer_hits = now.buffer_hits - start.buffer_hits;
        }
        // Pop this span; search from the innermost end so out-of-order
        // drops (e.g. mid-unwind) stay consistent.
        let mut stack = self.inner.stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&id| id == record.id) {
            stack.remove(pos);
        }
        drop(stack);
        emit(&self.inner, &record);
        Some(record)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let _ = self.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_pagesim::IoStats;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn spans_capture_io_deltas() {
        let stats = IoStats::new_handle();
        let tracer = Tracer::with_stats(Rc::clone(&stats));
        stats.count_read();
        let mut span = tracer.span("outer");
        stats.count_read();
        stats.count_write();
        stats.count_buffer_hit();
        span.set_rows(3);
        let record = span.finish();
        assert_eq!((record.reads, record.writes, record.buffer_hits), (1, 1, 1));
        assert_eq!(record.accesses(), 2);
        assert_eq!(record.rows, Some(3));
        assert!(!record.event);
    }

    #[test]
    fn nesting_tracks_parent_and_depth() {
        let tracer = Tracer::new();
        let outer = tracer.span("outer");
        let outer_id = {
            let inner = tracer.span("inner");
            assert_eq!(tracer.open_spans(), 2);
            let inner_record = inner.finish();
            assert_eq!(inner_record.depth, 1);
            inner_record.parent.expect("inner has a parent")
        };
        let outer_record = outer.finish();
        assert_eq!(outer_record.id, outer_id);
        assert_eq!(outer_record.depth, 0);
        assert_eq!(outer_record.parent, None);
        assert_eq!(tracer.open_spans(), 0);
    }

    #[test]
    fn guard_drop_is_panic_safe() {
        let tracer = Tracer::new();
        let seen = Rc::new(crate::sink::RingBufferSink::new(16));
        tracer.add_sink(seen.clone());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _span = tracer.span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        // The unwind closed the span: the stack is clean and the record
        // still reached the sink.
        assert_eq!(tracer.open_spans(), 0);
        let records = seen.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "doomed");
        // A fresh span after the panic is top-level again.
        let record = tracer.span("after").finish();
        assert_eq!(record.depth, 0);
        assert_eq!(record.parent, None);
    }

    #[test]
    fn disabled_tracer_still_measures_but_does_not_deliver() {
        let stats = IoStats::new_handle();
        let tracer = Tracer::with_stats(Rc::clone(&stats));
        let sink = Rc::new(crate::sink::RingBufferSink::new(4));
        tracer.add_sink(sink.clone());
        tracer.set_enabled(false);
        let span = tracer.span("quiet");
        stats.count_read();
        let record = span.finish();
        assert_eq!(record.reads, 1, "capture is independent of delivery");
        assert!(sink.is_empty());
        tracer.set_enabled(true);
        tracer.event("ping", &[]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn events_carry_attrs_and_position() {
        let tracer = Tracer::new();
        let sink = Rc::new(crate::sink::RingBufferSink::new(4));
        tracer.add_sink(sink.clone());
        let _span = tracer.span("ctx");
        tracer.event(
            "usage.backward",
            &[("i", "0".to_string()), ("j", "3".to_string())],
        );
        let records = sink.drain();
        assert_eq!(records.len(), 1);
        assert!(records[0].event);
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[0].attr("j"), Some("3"));
    }

    #[test]
    fn sink_removal_stops_delivery() {
        let tracer = Tracer::new();
        let sink = Rc::new(crate::sink::RingBufferSink::new(4));
        let id = tracer.add_sink(sink.clone());
        tracer.event("one", &[]);
        assert!(tracer.remove_sink(id));
        assert!(!tracer.remove_sink(id));
        tracer.event("two", &[]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn jsonl_rendering_is_stable() {
        let tracer = Tracer::new();
        let mut span = tracer.span_with("q", &[("kind", "backward".to_string())]);
        span.set_rows(2);
        let line = span.finish().to_jsonl();
        assert!(line.starts_with("{\"id\":1,\"name\":\"q\""));
        assert!(line.contains("\"rows\":2"));
        assert!(line.contains("\"attrs\":{\"kind\":\"backward\"}"));
        assert!(line.ends_with('}'));
    }
}
