//! A bounded black-box recorder for postmortem analysis.
//!
//! The [`FlightRecorder`] is an [`EventSink`] that keeps the most recent
//! `capacity` span/event records, stamping each with a monotonically
//! increasing sequence number the moment it arrives.  Unlike
//! [`crate::RingBufferSink`] (which is a raw drain-once buffer for the
//! shell's `\trace` command), the flight recorder is built for *failure
//! attribution*: when a replication pump stalls or crash recovery runs,
//! the last N events — which fault fired, which delivery was NACKed,
//! which backoff tick burned — are attached to the error/report itself.
//!
//! Determinism: sequence numbers are assigned in arrival order starting
//! at 1 and never reused, so two runs over the same schedule produce
//! byte-identical [`FlightRecorder::dump_jsonl`] output (wall-clock time
//! is deliberately absent from [`crate::SpanRecord`]).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::sink::EventSink;
use crate::span::SpanRecord;

/// One recorded entry: a span/event plus its arrival sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotonic arrival index (1-based, never reused).
    pub seq: u64,
    /// The underlying span or event record.
    pub record: SpanRecord,
}

impl FlightEvent {
    /// One JSON line: the record's JSONL with a leading `"seq"` field.
    pub fn to_jsonl(&self) -> String {
        let body = self.record.to_jsonl();
        // SpanRecord::to_jsonl always renders an object; splice seq in
        // front so the line stays a single flat object.
        format!("{{\"seq\":{},{}", self.seq, &body[1..])
    }

    /// A compact one-line summary (`#seq name [k=v ...]`) for embedding
    /// in error messages and recovery reports.
    pub fn summary(&self) -> String {
        let mut line = format!("#{} {}", self.seq, self.record.name);
        for (k, v) in &self.record.attrs {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        line
    }
}

/// A point-in-time description of the recorder returned by
/// [`FlightRecorder::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightStatus {
    /// Ring capacity (events retained).
    pub capacity: usize,
    /// Events currently buffered.
    pub len: usize,
    /// Total events ever recorded (including evicted ones).
    pub recorded: u64,
    /// Events evicted to make room (== `recorded - len`).
    pub dropped: u64,
    /// Sequence number of the oldest buffered event, if any.
    pub first_seq: Option<u64>,
    /// Sequence number of the newest buffered event, if any.
    pub last_seq: Option<u64>,
}

/// Bounded ring of sequence-numbered records; see module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: Cell<u64>,
    dropped: Cell<u64>,
    buffer: RefCell<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// Default ring capacity used by the durability stack and the shell.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A recorder retaining up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            next_seq: Cell::new(1),
            dropped: Cell::new(0),
            buffer: RefCell::new(VecDeque::new()),
        }
    }

    /// A recorder with [`Self::DEFAULT_CAPACITY`], wrapped in `Rc` ready
    /// for [`crate::Tracer::add_sink`].
    pub fn shared() -> Rc<Self> {
        Rc::new(FlightRecorder::new(Self::DEFAULT_CAPACITY))
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.borrow().len()
    }

    /// True if nothing has been buffered (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.buffer.borrow().is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.next_seq.get() - 1
    }

    /// Events evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Record an ad-hoc named event directly, without going through a
    /// [`crate::Tracer`].  Fault injectors use this: they sit *below* the
    /// database (the tracer may not exist yet when a fault fires during
    /// open/recovery), so they write into the black box directly.
    pub fn note(&self, name: &str, attrs: &[(&str, String)]) {
        let record = SpanRecord {
            id: 0,
            parent: None,
            name: name.to_string(),
            depth: 0,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            reads: 0,
            writes: 0,
            buffer_hits: 0,
            rows: None,
            event: true,
        };
        self.record(&record);
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let buffer = self.buffer.borrow();
        let skip = buffer.len().saturating_sub(n);
        buffer.iter().skip(skip).cloned().collect()
    }

    /// Compact summaries (see [`FlightEvent::summary`]) of the last `n`
    /// events, oldest first — the form embedded in error messages.
    pub fn tail_summaries(&self, n: usize) -> Vec<String> {
        self.tail(n).iter().map(FlightEvent::summary).collect()
    }

    /// Every buffered event as JSONL, oldest first, one line each.
    pub fn dump_jsonl(&self) -> String {
        let buffer = self.buffer.borrow();
        let mut out = String::new();
        for event in buffer.iter() {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Drop all buffered events.  Sequence numbering continues from where
    /// it was — `recorded()` is a lifetime total.
    pub fn clear(&self) {
        let mut buffer = self.buffer.borrow_mut();
        self.dropped.set(self.dropped.get() + buffer.len() as u64);
        buffer.clear();
    }

    /// Current status snapshot.
    pub fn status(&self) -> FlightStatus {
        let buffer = self.buffer.borrow();
        FlightStatus {
            capacity: self.capacity,
            len: buffer.len(),
            recorded: self.recorded(),
            dropped: self.dropped.get(),
            first_seq: buffer.front().map(|e| e.seq),
            last_seq: buffer.back().map(|e| e.seq),
        }
    }
}

impl EventSink for FlightRecorder {
    fn record(&self, record: &SpanRecord) {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        let mut buffer = self.buffer.borrow_mut();
        if buffer.len() == self.capacity {
            buffer.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        buffer.push_back(FlightEvent {
            seq,
            record: record.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn sequence_numbers_are_monotonic_from_one() {
        let rec = FlightRecorder::new(8);
        let tracer = Tracer::new();
        tracer.add_sink(Rc::new(FlightRecorder::new(1))); // unrelated sink
        for name in ["a", "b", "c"] {
            rec.record(&tracer.span(name).finish());
        }
        let seqs: Vec<u64> = rec.tail(10).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2, 3]);
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn wraparound_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        let tracer = Tracer::new();
        for i in 0..10 {
            rec.record(&tracer.span(format!("s{i}").as_str()).finish());
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 7);
        let status = rec.status();
        assert_eq!(status.first_seq, Some(8));
        assert_eq!(status.last_seq, Some(10));
        let names: Vec<String> = rec.tail(3).into_iter().map(|e| e.record.name).collect();
        assert_eq!(names, ["s7", "s8", "s9"]);
    }

    #[test]
    fn tail_returns_last_n_oldest_first() {
        let rec = FlightRecorder::new(16);
        for i in 0..5 {
            rec.note(&format!("e{i}"), &[]);
        }
        let tail: Vec<u64> = rec.tail(2).iter().map(|e| e.seq).collect();
        assert_eq!(tail, [4, 5]);
        assert!(rec.tail(0).is_empty());
        assert_eq!(rec.tail(100).len(), 5);
    }

    #[test]
    fn dump_is_deterministic_across_identical_runs() {
        let run = || {
            let rec = FlightRecorder::new(4);
            let tracer = Tracer::new();
            for i in 0..7 {
                rec.record(&tracer.span_with("step", &[("i", i.to_string())]).finish());
            }
            rec.note("fault.crash", &[("n", "3".to_string())]);
            rec.dump_jsonl()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 4);
        assert!(a.lines().all(|l| l.starts_with("{\"seq\":")));
        assert!(a.contains("fault.crash"));
    }

    #[test]
    fn note_records_an_event_with_attrs() {
        let rec = FlightRecorder::new(4);
        rec.note("chaos.drop", &[("delivery", "7".to_string())]);
        let tail = rec.tail(1);
        assert!(tail[0].record.event);
        assert_eq!(tail[0].record.attr("delivery"), Some("7"));
        assert_eq!(tail[0].summary(), "#1 chaos.drop delivery=7");
    }

    #[test]
    fn attached_to_a_tracer_it_sees_spans_and_events() {
        let rec = Rc::new(FlightRecorder::new(8));
        let tracer = Tracer::new();
        tracer.add_sink(rec.clone());
        tracer.event("wal.fault", &[("kind", "torn".to_string())]);
        tracer.span("wal.append").finish();
        assert_eq!(rec.len(), 2);
        let sums = rec.tail_summaries(2);
        assert_eq!(sums[0], "#1 wal.fault kind=torn");
        assert_eq!(sums[1], "#2 wal.append");
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let rec = FlightRecorder::new(4);
        for _ in 0..3 {
            rec.note("e", &[]);
        }
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.dropped(), 3);
        rec.note("f", &[]);
        assert_eq!(rec.tail(1)[0].seq, 4);
    }
}
