//! # asr-obs — zero-dependency tracing & metrics
//!
//! The paper's entire evaluation metric is *observed page accesses*; this
//! crate makes that metric a first-class runtime feature instead of a
//! single global counter. It is hand-rolled on `std` only (DESIGN.md
//! restricts external dependencies) and single-threaded by design, like
//! the rest of the system (`IoStats` itself is `Cell`-based).
//!
//! Three pieces:
//!
//! * [`Tracer`] — RAII nested [`span::SpanGuard`]s that capture per-span
//!   page read/write/buffer-hit deltas from [`asr_pagesim::IoStats`], plus
//!   zero-duration *events* (e.g. "a backward span query ran") that feed
//!   subscribers such as the advisor's usage recorder;
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms with human-table, JSONL and Prometheus-style text
//!   exposition;
//! * [`EventSink`] — pluggable span/event consumers: an in-memory
//!   [`sink::RingBufferSink`], a [`sink::WriterSink`] emitting JSONL, an
//!   arbitrary-closure [`sink::FnSink`], and the bounded, sequence-
//!   numbered [`FlightRecorder`] black box that failure paths attach
//!   their last-N-events tail from.
//!
//! A [`Tracer`] bundles one metrics registry and any number of sinks and
//! clones cheaply (`Rc` inside), so one instance threads through a whole
//! `Database` without lifetime gymnastics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flightrec;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use flightrec::{FlightEvent, FlightRecorder, FlightStatus};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{EventSink, FnSink, RingBufferSink, WriterSink};
pub use span::{SinkId, SpanGuard, SpanRecord, Tracer};
