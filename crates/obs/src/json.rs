//! Just enough JSON to emit records and snapshots: string escaping and a
//! small value writer. Hand-rolled so the observability layer stays
//! dependency-free.

use std::fmt::Write;

/// Escape `s` for use inside a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` the way JSON expects (no NaN/Inf — clamped to null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Keep integers clean: 3 not 3.0 is fine for JSON consumers.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_json_compatibly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
