//! Named counters, gauges and fixed-bucket histograms with three
//! exposition formats: a human-readable table, JSONL, and
//! Prometheus-style text.
//!
//! The registry clones cheaply (`Rc<RefCell<…>>`) so every layer of the
//! system can hold the same instance. Metric names are free-form; the
//! convention used across the workspace is dotted lower-case
//! (`asr.rebuild_fallback`, `query.backward`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::json;

/// A fixed-bucket histogram in the Prometheus style: `bounds[i]` is the
/// inclusive upper bound (`le`) of bucket `i`, with an implicit final
/// `+Inf` bucket.
#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts.len() == bounds.len() + 1`.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    fn new(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        // First bucket whose upper bound admits the value (`value <= le`).
        let idx = self
            .bounds
            .iter()
            .position(|&le| value <= le)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (`le`), ascending; the final `+Inf` bucket is
    /// implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (not cumulative); one longer than `bounds`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub total: u64,
}

impl HistogramSnapshot {
    /// Cumulative counts per bucket, Prometheus-style (last = total).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket containing the target rank — the classic
    /// Prometheus `histogram_quantile` estimator.  The lower edge of the
    /// first bucket is taken as 0; a rank landing in the implicit `+Inf`
    /// bucket clamps to the last finite bound (the estimator cannot see
    /// past it).  `None` when the histogram is empty or `q` is out of
    /// range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.total as f64;
        let mut below = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            let upto = below + count;
            if rank <= upto as f64 || idx == self.counts.len() - 1 {
                if idx >= self.bounds.len() {
                    // +Inf bucket: clamp to the last finite bound.
                    return Some(self.bounds.last().copied().unwrap_or(0.0));
                }
                let lower = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let upper = self.bounds[idx];
                if count == 0 {
                    return Some(upper);
                }
                let within = (rank - below as f64) / count as f64;
                return Some(lower + (upper - lower) * within.clamp(0.0, 1.0));
            }
            below = upto;
        }
        None
    }

    /// The p50/p95/p99 tail summary used by serving benchmarks.
    pub fn tail_summary(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → snapshot.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Cheaply clonable registry of counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Inner>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn inc_counter(&self, name: &str, by: u64) {
        *self
            .inner
            .borrow_mut()
            .counters
            .entry(name.to_string())
            .or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Record `value` into the named histogram. `bounds` defines the
    /// inclusive bucket upper bounds on first use and is ignored on
    /// subsequent calls (fixed-bucket semantics).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    /// Snapshot of one histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .borrow()
            .histograms
            .get(name)
            .map(|h| HistogramSnapshot {
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                sum: h.sum,
                total: h.total,
            })
    }

    /// Point-in-time copy of every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            sum: h.sum,
                            total: h.total,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Drop every metric (names included).
    pub fn clear(&self) {
        *self.inner.borrow_mut() = Inner::default();
    }

    /// Human-readable table of every metric.
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }

    /// One JSON object per line (counters, then gauges, then histograms).
    pub fn to_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }

    /// Prometheus-style text exposition.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

impl MetricsSnapshot {
    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Human-readable table of every metric.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            return "no metrics recorded\n".to_string();
        }
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0)
            .max(6);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  counter    {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:<width$}  gauge      {value}");
        }
        for (name, h) in &self.histograms {
            let mean = if h.total > 0 {
                h.sum / h.total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{name:<width$}  histogram  n={} sum={} mean={mean:.2}",
                h.total,
                json::number(h.sum),
            );
            for (i, &count) in h.counts.iter().enumerate() {
                let le = h
                    .bounds
                    .get(i)
                    .map(|b| json::number(*b))
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = writeln!(out, "{:<width$}    le={le}: {count}", "");
            }
        }
        out
    }

    /// One JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json::escape(name)
            );
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json::escape(name),
                json::number(*value)
            );
        }
        for (name, h) in &self.histograms {
            let bounds: Vec<String> = h.bounds.iter().map(|b| json::number(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"total\":{}}}",
                json::escape(name),
                bounds.join(","),
                counts.join(","),
                json::number(h.sum),
                h.total
            );
        }
        out
    }

    /// Prometheus text format. Metric names are sanitized (`.` → `_`).
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", json::number(*value));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let cumulative = h.cumulative();
            for (i, cum) in cumulative.iter().enumerate() {
                let le = h
                    .bounds
                    .get(i)
                    .map(|b| json::number(*b))
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_sum {}", json::number(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = MetricsRegistry::new();
        m.inc_counter("asr.rebuild_fallback", 1);
        m.inc_counter("asr.rebuild_fallback", 2);
        m.set_gauge("buffer.hit_rate", 0.75);
        assert_eq!(m.counter("asr.rebuild_fallback"), 3);
        assert_eq!(m.counter("never.touched"), 0);
        assert_eq!(m.gauge("buffer.hit_rate"), Some(0.75));

        let clone = m.clone();
        clone.inc_counter("asr.rebuild_fallback", 1);
        assert_eq!(m.counter("asr.rebuild_fallback"), 4, "clones share state");
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let m = MetricsRegistry::new();
        let bounds = [1.0, 5.0, 25.0];
        // One observation per interesting position: below, exactly on each
        // bound, between bounds, and above all bounds.
        for v in [0.0, 1.0, 1.5, 5.0, 24.9, 25.0, 25.1, 1000.0] {
            m.observe("q.pages", &bounds, v);
        }
        let h = m.histogram("q.pages").unwrap();
        assert_eq!(h.bounds, vec![1.0, 5.0, 25.0]);
        // le=1: {0.0, 1.0}; le=5: {1.5, 5.0}; le=25: {24.9, 25.0}; +Inf: {25.1, 1000}.
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.cumulative(), vec![2, 4, 6, 8]);
        assert_eq!(h.total, 8);
        assert!((h.sum - 1082.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_bounds_are_fixed_at_first_use_and_sorted() {
        let m = MetricsRegistry::new();
        m.observe("h", &[10.0, 1.0, 10.0], 2.0);
        // Different bounds later are ignored: fixed-bucket semantics.
        m.observe("h", &[99.0], 2.0);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![1.0, 10.0], "sorted and deduplicated");
        assert_eq!(h.counts, vec![0, 2, 0]);
    }

    #[test]
    fn exposition_formats_cover_every_metric() {
        let m = MetricsRegistry::new();
        m.inc_counter("ops.total", 7);
        m.set_gauge("hit.rate", 0.5);
        m.observe("lat", &[1.0, 2.0], 1.5);

        let table = m.render_table();
        assert!(table.contains("ops.total"));
        assert!(table.contains("counter"));
        assert!(table.contains("histogram"));

        let jsonl = m.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"bounds\":[1,2]"));

        let prom = m.to_prometheus();
        assert!(prom.contains("# TYPE ops_total counter"));
        assert!(prom.contains("lat_bucket{le=\"2\"} 1"));
        assert!(prom.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("lat_count 1"));
    }

    #[test]
    fn quantile_estimates_interpolate_and_clamp() {
        let m = MetricsRegistry::new();
        let bounds = [1.0, 2.0, 4.0, 8.0];
        // 100 observations uniformly on (0, 4]: 25 per finite bucket ≤ 4.
        for i in 0..100 {
            m.observe("lat", &bounds, (i as f64 + 1.0) * 0.04);
        }
        let h = m.histogram("lat").unwrap();
        let (p50, p95, p99) = h.tail_summary().unwrap();
        assert!((p50 - 2.0).abs() < 0.25, "p50 ≈ 2.0, got {p50}");
        assert!((p95 - 3.8).abs() < 0.25, "p95 ≈ 3.8, got {p95}");
        assert!(p99 <= 4.0 && p99 > 3.8, "p99 in (3.8, 4.0], got {p99}");
        // Everything beyond the last finite bound clamps to it.
        m.observe("hot", &[1.0], 50.0);
        let hot = m.histogram("hot").unwrap();
        assert_eq!(hot.quantile(0.99), Some(1.0));
        // Empty and out-of-range are None.
        assert_eq!(h.quantile(1.5), None);
        let empty = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            total: 0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn clear_forgets_everything() {
        let m = MetricsRegistry::new();
        m.inc_counter("c", 1);
        m.observe("h", &[1.0], 0.5);
        m.clear();
        assert!(m.snapshot().is_empty());
    }
}
