//! Property tests: the page-granular B+ tree behaves exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, while
//! maintaining all structural invariants.

use std::collections::BTreeMap;

use asr_pagesim::stats::IoStats;
use asr_pagesim::BPlusTree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 512, b % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400),
                           leaf_cap in 2usize..8, inner_cap in 3usize..8) {
        let mut tree: BPlusTree<u16, u32> =
            BPlusTree::with_capacities(leaf_cap, inner_cap, IoStats::new_handle());
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let tree_result = tree.insert(k, v);
                    match model.entry(k) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(tree_result.is_err(), "duplicate must be rejected");
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            prop_assert!(tree_result.is_ok());
                            e.insert(v);
                        }
                    }
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k).copied());
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got: Vec<(u16, u32)> = tree.range_collect(&lo, &hi);
                    let want: Vec<(u16, u32)> =
                        model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants().unwrap();

        // Full scans agree at the end.
        let mut scanned = Vec::new();
        tree.scan_all(|k, v| scanned.push((*k, *v)));
        let expected: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn bulk_insert_then_drain(keys in proptest::collection::btree_set(any::<u32>(), 1..600)) {
        let mut tree: BPlusTree<u32, u32> =
            BPlusTree::with_capacities(4, 5, IoStats::new_handle());
        for &k in &keys {
            tree.insert(k, k.wrapping_mul(7)).unwrap();
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len(), keys.len());
        for &k in &keys {
            prop_assert_eq!(tree.remove(&k), Some(k.wrapping_mul(7)));
        }
        tree.check_invariants().unwrap();
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.height(), 1);
    }

    #[test]
    fn accounting_monotone_nonzero(keys in proptest::collection::btree_set(any::<u16>(), 1..200)) {
        let stats = IoStats::new_handle();
        let mut tree: BPlusTree<u16, ()> =
            BPlusTree::with_capacities(4, 4, std::rc::Rc::clone(&stats));
        for &k in &keys {
            let before = stats.accesses();
            tree.insert(k, ()).unwrap();
            prop_assert!(stats.accesses() > before, "every insert touches pages");
        }
        stats.reset();
        let k = *keys.iter().next().unwrap();
        tree.get(&k);
        prop_assert_eq!(stats.reads(), tree.height() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk loading and item-at-a-time insertion produce behaviourally
    /// identical trees, and both satisfy every structural invariant.
    #[test]
    fn bulk_load_equals_incremental(keys in proptest::collection::btree_set(any::<u32>(), 0..500),
                                    leaf_cap in 2usize..9, inner_cap in 3usize..9) {
        let entries: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect();

        let mut bulk: BPlusTree<u32, u32> =
            BPlusTree::with_capacities(leaf_cap, inner_cap, IoStats::new_handle());
        bulk.fill(entries.clone()).unwrap();
        bulk.check_invariants().unwrap();

        let mut incr: BPlusTree<u32, u32> =
            BPlusTree::with_capacities(leaf_cap, inner_cap, IoStats::new_handle());
        for (k, v) in &entries {
            incr.insert(*k, *v).unwrap();
        }

        prop_assert_eq!(bulk.len(), incr.len());
        let mut a = Vec::new();
        bulk.scan_all(|k, v| a.push((*k, *v)));
        let mut b = Vec::new();
        incr.scan_all(|k, v| b.push((*k, *v)));
        prop_assert_eq!(a, b);

        // The bulk-loaded tree keeps working under mutation.
        for &(k, _) in entries.iter().step_by(3) {
            prop_assert_eq!(bulk.remove(&k), Some(k.wrapping_mul(31)));
        }
        bulk.check_invariants().unwrap();
    }
}
