//! An LRU buffer pool.
//!
//! The paper's cost model assumes every page access hits secondary storage,
//! so all structures default to an **unbuffered** pool (capacity 0) that
//! charges each access directly.  A non-zero capacity enables classic LRU
//! caching with dirty-page write-back — useful for ablation experiments
//! that ask how much of the ASR advantage survives a warm buffer.

use std::collections::{BTreeMap, HashMap};

use crate::stats::{IoStats, StructureId};

/// Per-structure LRU buffer pool over that structure's page numbers.
#[derive(Debug, Default)]
pub struct BufferPool {
    capacity: usize,
    /// page -> (lru tick, dirty)
    resident: HashMap<u64, (u64, bool)>,
    /// lru tick -> page (inverse index for O(log n) eviction)
    by_tick: BTreeMap<u64, u64>,
    tick: u64,
    /// Structure all charges through this pool are attributed to.
    sid: StructureId,
}

impl BufferPool {
    /// A pass-through pool: every access is charged to disk (the paper's
    /// assumption).
    pub fn unbuffered() -> Self {
        BufferPool::default()
    }

    /// An LRU pool holding up to `capacity` pages.
    pub fn with_capacity(capacity: usize) -> Self {
        BufferPool {
            capacity,
            ..BufferPool::default()
        }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attribute all subsequent charges through this pool to `sid`.
    pub fn set_structure(&mut self, sid: StructureId) {
        self.sid = sid;
    }

    /// The structure charges are currently attributed to.
    pub fn structure(&self) -> StructureId {
        self.sid
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    /// Access `page` for reading, charging `stats` as appropriate.
    pub fn read(&mut self, page: u64, stats: &IoStats) {
        self.access(page, false, stats);
    }

    /// Access `page` for writing.  Unbuffered pools charge a read-modify-
    /// write as separate read/write accesses at the call sites; buffered
    /// pools mark the page dirty and defer the disk write to eviction or
    /// [`BufferPool::flush`].
    pub fn write(&mut self, page: u64, stats: &IoStats) {
        if self.capacity == 0 {
            stats.count_write_for(self.sid);
            return;
        }
        self.access(page, true, stats);
    }

    fn access(&mut self, page: u64, dirty: bool, stats: &IoStats) {
        if self.capacity == 0 {
            stats.count_read_for(self.sid);
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_tick, was_dirty)) = self.resident.insert(page, (tick, dirty)) {
            // Hit: refresh recency, keep dirtiness sticky.
            self.by_tick.remove(&old_tick);
            self.by_tick.insert(tick, page);
            if was_dirty {
                self.resident.insert(page, (tick, true));
            }
            stats.count_buffer_hit_for(self.sid);
            return;
        }
        // Miss: fetch from disk.
        stats.count_read_for(self.sid);
        self.by_tick.insert(tick, page);
        if self.resident.len() > self.capacity {
            self.evict_lru(stats);
        }
    }

    fn evict_lru(&mut self, stats: &IoStats) {
        if let Some((&oldest_tick, &victim)) = self.by_tick.iter().next() {
            self.by_tick.remove(&oldest_tick);
            if let Some((_, dirty)) = self.resident.remove(&victim) {
                if dirty {
                    stats.count_write_for(self.sid);
                }
            }
        }
    }

    /// Write back all dirty pages and empty the pool.
    pub fn flush(&mut self, stats: &IoStats) {
        for (_, (_, dirty)) in self.resident.drain() {
            if dirty {
                stats.count_write_for(self.sid);
            }
        }
        self.by_tick.clear();
        self.tick = 0;
    }

    /// Drop all resident pages *without* writing anything (used when the
    /// underlying structure is rebuilt from scratch).
    pub fn invalidate(&mut self) {
        self.resident.clear();
        self.by_tick.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;

    #[test]
    fn unbuffered_charges_every_access() {
        let stats = IoStats::default();
        let mut pool = BufferPool::unbuffered();
        pool.read(1, &stats);
        pool.read(1, &stats);
        pool.write(1, &stats);
        assert_eq!(stats.reads(), 2);
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.buffer_hits(), 0);
    }

    #[test]
    fn repeated_reads_hit_the_buffer() {
        let stats = IoStats::default();
        let mut pool = BufferPool::with_capacity(4);
        pool.read(1, &stats);
        pool.read(1, &stats);
        pool.read(1, &stats);
        assert_eq!(stats.reads(), 1, "only the first read goes to disk");
        assert_eq!(stats.buffer_hits(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let stats = IoStats::default();
        let mut pool = BufferPool::with_capacity(2);
        pool.read(1, &stats);
        pool.read(2, &stats);
        pool.read(1, &stats); // refresh 1: LRU victim is now 2
        pool.read(3, &stats); // evicts 2
        stats.reset();
        pool.read(1, &stats);
        assert_eq!(stats.buffer_hits(), 1, "1 survived");
        pool.read(2, &stats);
        assert_eq!(stats.reads(), 1, "2 was evicted and re-read");
    }

    #[test]
    fn dirty_pages_written_on_eviction_and_flush() {
        let stats = IoStats::default();
        let mut pool = BufferPool::with_capacity(1);
        pool.write(1, &stats); // miss -> read charge, marked dirty
        assert_eq!((stats.reads(), stats.writes()), (1, 0));
        pool.read(2, &stats); // evicts dirty 1 -> write charge
        assert_eq!(stats.writes(), 1);
        pool.write(2, &stats); // hit, marks 2 dirty
        pool.flush(&stats);
        assert_eq!(stats.writes(), 2);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn dirtiness_is_sticky_across_reads() {
        let stats = IoStats::default();
        let mut pool = BufferPool::with_capacity(2);
        pool.write(1, &stats);
        pool.read(1, &stats); // must not launder the dirty bit
        pool.flush(&stats);
        assert_eq!(stats.writes(), 1);
    }

    #[test]
    fn invalidate_discards_without_writes() {
        let stats = IoStats::default();
        let mut pool = BufferPool::with_capacity(2);
        pool.write(1, &stats);
        pool.invalidate();
        pool.flush(&stats);
        assert_eq!(stats.writes(), 0);
    }
}
