//! System-specific parameters (Figure 3 of the paper).

/// Net size of a page in bytes (`PageSize = 4056`).
pub const PAGE_SIZE: usize = 4056;

/// Stored size of an object identifier in bytes (`OIDsize = 8`).
pub const OID_SIZE: usize = 8;

/// Size of a page pointer in bytes (`PPsize = 4`).
pub const PP_SIZE: usize = 4;

/// Fan-out of the B⁺ tree:
/// `B⁺fan = ⌊PageSize / (PPsize + OIDsize)⌋ = ⌊4056 / 12⌋ = 338`.
pub const fn bplus_fan() -> usize {
    PAGE_SIZE / (PP_SIZE + OID_SIZE)
}

/// Fan-out for a page of a given size with a given key width (generalizes
/// [`bplus_fan`] to composite keys).
pub const fn fan_for(page_size: usize, key_size: usize, pointer_size: usize) -> usize {
    page_size / (pointer_size + key_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(PAGE_SIZE, 4056);
        assert_eq!(OID_SIZE, 8);
        assert_eq!(PP_SIZE, 4);
        assert_eq!(bplus_fan(), 338);
    }

    #[test]
    fn generalized_fan() {
        assert_eq!(fan_for(PAGE_SIZE, OID_SIZE, PP_SIZE), bplus_fan());
        // Composite key of two OIDs.
        assert_eq!(fan_for(PAGE_SIZE, 16, PP_SIZE), 202);
    }
}
