//! # asr-pagesim — page-granular storage simulator
//!
//! The cost metric of Kemper & Moerkotte's evaluation is the number of
//! **secondary-storage page accesses**.  This crate reproduces that
//! experimental substrate: an in-memory "disk" of fixed-size pages whose
//! every read and write is counted, plus the two storage structures the
//! paper assumes:
//!
//! * [`ClusteredFile`] — objects clustered by type, `opp_i = ⌊PageSize /
//!   size_i⌋` objects per page (formulas 17–18 of the paper), and
//! * [`BPlusTree`] — a from-scratch B+ tree with page-sized nodes
//!   (`B⁺fan = ⌊PageSize / (PPsize + OIDsize)⌋`, Figure 3) used to store
//!   access-support-relation partitions clustered on their first or last
//!   attribute (Section 5.2, following Valduriez' join indices).
//!
//! An optional LRU [`BufferPool`] can be layered on top; the paper's model
//! assumes *no* buffering (every access hits the disk), which is the default
//! configuration, but the buffered mode enables ablation experiments.
//!
//! All structures route their page traffic through a shared [`IoStats`]
//! handle, so an experiment can meter an arbitrary ensemble of files and
//! trees with one counter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod buffer;
pub mod clustered;
pub mod constants;
pub mod error;
pub mod stats;

pub use btree::{build_bulk, BPlusTree, BatchReport, BulkNodes, NodeImage, TreeDelta, TreeImage};
pub use buffer::BufferPool;
pub use clustered::ClusteredFile;
pub use constants::{bplus_fan, OID_SIZE, PAGE_SIZE, PP_SIZE};
pub use error::{PageSimError, Result};
pub use stats::{IoSnapshot, IoStats, StatsHandle, StructureId, StructureIo, StructureKind};
