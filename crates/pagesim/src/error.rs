//! Error type for the storage simulator.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PageSimError>;

/// Errors raised by the simulated storage structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageSimError {
    /// An entry (object, key) was not found.
    NotFound(String),
    /// An entry would not fit on a page (e.g. a tuple larger than
    /// `PAGE_SIZE`).
    EntryTooLarge {
        /// Size of the offending entry in bytes.
        entry: usize,
        /// The page capacity it exceeded.
        capacity: usize,
    },
    /// A duplicate key was inserted into a unique structure.
    DuplicateKey(String),
    /// Structural invariant violation detected by a self-check.
    CorruptStructure(String),
}

impl fmt::Display for PageSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSimError::NotFound(what) => write!(f, "not found: {what}"),
            PageSimError::EntryTooLarge { entry, capacity } => {
                write!(
                    f,
                    "entry of {entry} bytes exceeds page capacity of {capacity} bytes"
                )
            }
            PageSimError::DuplicateKey(key) => write!(f, "duplicate key: {key}"),
            PageSimError::CorruptStructure(msg) => write!(f, "corrupt structure: {msg}"),
        }
    }
}

impl std::error::Error for PageSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PageSimError::EntryTooLarge {
            entry: 9000,
            capacity: 4056,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4056"));
    }
}
