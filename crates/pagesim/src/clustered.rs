//! Type-clustered object files.
//!
//! The paper assumes objects are clustered by type: all `c_i` objects of
//! type `t_i`, each of `size_i` bytes, are packed `opp_i = ⌊PageSize /
//! size_i⌋` to a page, occupying `op_i = ⌈c_i / opp_i⌉` pages (formulas
//! 17–18).  Retrieving an object costs one page access; an exhaustive scan
//! costs `op_i` accesses — which is precisely what backward navigation
//! without access support degenerates to.
//!
//! The file is generic over a payload `T` so callers can co-locate whatever
//! bookkeeping they like with the accounting; the object *content* itself
//! lives in the `asr-gom` object base, the file contributes the page math.

use std::cell::RefCell;
use std::rc::Rc;

use crate::buffer::BufferPool;
use crate::constants::PAGE_SIZE;
use crate::error::{PageSimError, Result};
use crate::stats::{IoStats, StatsHandle};

/// A clustered file of fixed-size objects keyed by `u64` (OID raw values).
#[derive(Debug)]
pub struct ClusteredFile<T> {
    object_size: usize,
    opp: usize,
    /// slot -> (key, payload); `None` marks a deleted slot (tombstone).
    slots: Vec<Option<(u64, T)>>,
    /// key -> slot
    index: std::collections::HashMap<u64, usize>,
    stats: StatsHandle,
    buffer: RefCell<BufferPool>,
}

impl<T> ClusteredFile<T> {
    /// Create a file for objects of `object_size` bytes, charging accesses
    /// to `stats`.
    ///
    /// Objects larger than a page occupy `⌈size / PAGE_SIZE⌉` pages each
    /// (`opp` is then treated as a fraction: one object per that many
    /// pages), mirroring how the analytical model floors `opp_i` at 1.
    pub fn new(object_size: usize, stats: StatsHandle) -> Result<Self> {
        if object_size == 0 {
            return Err(PageSimError::EntryTooLarge {
                entry: 0,
                capacity: PAGE_SIZE,
            });
        }
        let opp = (PAGE_SIZE / object_size).max(1);
        Ok(ClusteredFile {
            object_size,
            opp,
            slots: Vec::new(),
            index: std::collections::HashMap::new(),
            stats,
            buffer: RefCell::new(BufferPool::unbuffered()),
        })
    }

    /// Replace the (default pass-through) buffer pool. The file's
    /// structure tag (if any) carries over to the new pool.
    pub fn set_buffer(&mut self, mut pool: BufferPool) {
        pool.set_structure(self.buffer.borrow().structure());
        self.buffer = RefCell::new(pool);
    }

    /// Register this file under `label` in the stats registry so its page
    /// traffic is attributable (see [`IoStats::register_structure`]).
    pub fn tag(&mut self, label: impl Into<String>) -> crate::stats::StructureId {
        let sid = self
            .stats
            .register_structure(crate::stats::StructureKind::ClusteredFile, label);
        self.buffer.borrow_mut().set_structure(sid);
        sid
    }

    /// The structure id this file's charges are attributed to.
    pub fn structure_id(&self) -> crate::stats::StructureId {
        self.buffer.borrow().structure()
    }

    /// The configured per-object size in bytes (`size_i`).
    pub fn object_size(&self) -> usize {
        self.object_size
    }

    /// Objects per page (`opp_i`, at least 1).
    pub fn objects_per_page(&self) -> usize {
        self.opp
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no live objects exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of pages the file occupies (`op_i`), including pages that
    /// only hold tombstones.
    pub fn page_count(&self) -> u64 {
        if self.slots.is_empty() {
            0
        } else {
            self.page_of_slot(self.slots.len() - 1) + 1
        }
    }

    /// Pages an object larger than a page spills over.
    fn pages_per_object(&self) -> u64 {
        self.object_size.div_ceil(PAGE_SIZE).max(1) as u64
    }

    /// The page number holding `slot`.
    fn page_of_slot(&self, slot: usize) -> u64 {
        if self.object_size > PAGE_SIZE {
            slot as u64 * self.pages_per_object()
        } else {
            (slot / self.opp) as u64
        }
    }

    /// Append an object.  Returns its slot.
    pub fn insert(&mut self, key: u64, payload: T) -> Result<usize> {
        if self.index.contains_key(&key) {
            return Err(PageSimError::DuplicateKey(format!("object {key}")));
        }
        let slot = self.slots.len();
        self.slots.push(Some((key, payload)));
        self.index.insert(key, slot);
        Ok(slot)
    }

    /// Fetch an object, charging one page access per page it spans.
    pub fn get(&self, key: u64) -> Result<&T> {
        let &slot = self
            .index
            .get(&key)
            .ok_or_else(|| PageSimError::NotFound(format!("object {key}")))?;
        self.charge_object_read(slot);
        Ok(self.slots[slot]
            .as_ref()
            .map(|(_, t)| t)
            .expect("indexed slot is live"))
    }

    /// Like [`ClusteredFile::get`] but also charging the write-back access
    /// (an in-place object update costs read + write — the paper's "one
    /// page access to retrieve ... and one page access to write back").
    pub fn get_for_update(&mut self, key: u64) -> Result<&mut T> {
        let &slot = self
            .index
            .get(&key)
            .ok_or_else(|| PageSimError::NotFound(format!("object {key}")))?;
        self.charge_object_read(slot);
        let page = self.page_of_slot(slot);
        for p in 0..self.pages_per_object() {
            self.buffer.borrow_mut().write(page + p, &self.stats);
        }
        Ok(self.slots[slot]
            .as_mut()
            .map(|(_, t)| t)
            .expect("indexed slot is live"))
    }

    fn charge_object_read(&self, slot: usize) {
        let page = self.page_of_slot(slot);
        for p in 0..self.pages_per_object() {
            self.buffer.borrow_mut().read(page + p, &self.stats);
        }
    }

    /// Remove an object, leaving a tombstone (clustering is physical; the
    /// model never compacts).  Charges the read + write of its page.
    pub fn remove(&mut self, key: u64) -> Result<T> {
        let slot = self
            .index
            .remove(&key)
            .ok_or_else(|| PageSimError::NotFound(format!("object {key}")))?;
        self.charge_object_read(slot);
        let page = self.page_of_slot(slot);
        self.buffer.borrow_mut().write(page, &self.stats);
        Ok(self.slots[slot]
            .take()
            .map(|(_, t)| t)
            .expect("indexed slot was live"))
    }

    /// Exhaustively scan the file, charging every page once, and visit each
    /// live object.  This is the access pattern of an unsupported backward
    /// query (Section 5.6.2: `op_i` page accesses for the anchor extent).
    pub fn scan(&self, mut visit: impl FnMut(u64, &T)) {
        let pages = self.page_count();
        for page in 0..pages {
            self.buffer.borrow_mut().read(page, &self.stats);
        }
        for entry in self.slots.iter().flatten() {
            visit(entry.0, &entry.1);
        }
    }

    /// Does the file contain `key`?
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }
}

/// Convenience constructor for files that only do accounting (`T = ()`).
impl ClusteredFile<()> {
    /// Build an accounting-only file pre-populated with `count` objects
    /// keyed `0..count`.
    pub fn accounting(object_size: usize, count: u64, stats: StatsHandle) -> Result<Self> {
        let mut file = ClusteredFile::new(object_size, stats)?;
        for key in 0..count {
            file.insert(key, ())?;
        }
        Ok(file)
    }
}

impl<T> ClusteredFile<T> {
    /// Snapshot-free helper: run `f` and return the page accesses it cost.
    pub fn metered<R>(&self, f: impl FnOnce(&Self) -> R) -> (R, u64) {
        let before = self.stats.snapshot();
        let r = f(self);
        (r, self.stats.accesses_since(&before))
    }
}

/// Build a fresh stats handle (re-exported convenience).
pub fn fresh_stats() -> StatsHandle {
    Rc::new(IoStats::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_matches_formulas_17_18() {
        // size_i = 500 -> opp = 8, c_i = 100 -> op = ceil(100/8) = 13.
        let stats = IoStats::new_handle();
        let file = ClusteredFile::accounting(500, 100, stats).unwrap();
        assert_eq!(file.objects_per_page(), 8);
        assert_eq!(file.page_count(), 13);
    }

    #[test]
    fn get_costs_one_page_access() {
        let stats = IoStats::new_handle();
        let file = ClusteredFile::accounting(500, 100, Rc::clone(&stats)).unwrap();
        file.get(0).unwrap();
        assert_eq!(stats.accesses(), 1);
        file.get(7).unwrap(); // same page — but unbuffered, charged again
        assert_eq!(stats.accesses(), 2);
    }

    #[test]
    fn scan_costs_op_pages() {
        let stats = IoStats::new_handle();
        let file = ClusteredFile::accounting(500, 100, Rc::clone(&stats)).unwrap();
        let mut seen = 0;
        file.scan(|_, _| seen += 1);
        assert_eq!(seen, 100);
        assert_eq!(stats.accesses(), 13);
    }

    #[test]
    fn update_costs_read_plus_write() {
        let stats = IoStats::new_handle();
        let mut file = ClusteredFile::new(500, Rc::clone(&stats)).unwrap();
        file.insert(1, 10u32).unwrap();
        *file.get_for_update(1).unwrap() = 20;
        assert_eq!((stats.reads(), stats.writes()), (1, 1));
        assert_eq!(*file.get(1).unwrap(), 20);
    }

    #[test]
    fn oversized_objects_span_pages() {
        let stats = IoStats::new_handle();
        let file = ClusteredFile::accounting(PAGE_SIZE * 2, 3, Rc::clone(&stats)).unwrap();
        assert_eq!(file.objects_per_page(), 1);
        assert_eq!(file.page_count(), 5); // slots at pages 0,2,4
        file.get(1).unwrap();
        assert_eq!(stats.accesses(), 2, "two pages per object");
    }

    #[test]
    fn remove_leaves_tombstone() {
        let stats = IoStats::new_handle();
        let mut file = ClusteredFile::new(500, Rc::clone(&stats)).unwrap();
        for k in 0..10 {
            file.insert(k, k).unwrap();
        }
        assert_eq!(file.remove(3).unwrap(), 3);
        assert!(!file.contains(3));
        assert!(file.get(3).is_err());
        assert_eq!(file.len(), 9);
        assert_eq!(file.page_count(), 2, "pages not compacted");
        let mut seen = Vec::new();
        file.scan(|k, _| seen.push(k));
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let stats = IoStats::new_handle();
        let mut file = ClusteredFile::new(100, stats).unwrap();
        file.insert(1, ()).unwrap();
        assert!(matches!(
            file.insert(1, ()),
            Err(PageSimError::DuplicateKey(_))
        ));
    }

    #[test]
    fn buffered_scan_is_cheaper_second_time() {
        let stats = IoStats::new_handle();
        let mut file = ClusteredFile::accounting(500, 100, Rc::clone(&stats)).unwrap();
        file.set_buffer(BufferPool::with_capacity(64));
        file.scan(|_, _| {});
        let cold = stats.accesses();
        file.scan(|_, _| {});
        assert_eq!(stats.accesses(), cold, "warm scan fully buffered");
        assert!(stats.buffer_hits() > 0);
    }

    #[test]
    fn metered_reports_deltas() {
        let stats = IoStats::new_handle();
        let file = ClusteredFile::accounting(500, 100, stats).unwrap();
        let (_, cost) = file.metered(|f| *f.get(0).unwrap());
        assert_eq!(cost, 1);
    }

    #[test]
    fn zero_size_rejected() {
        let stats = IoStats::new_handle();
        assert!(ClusteredFile::<()>::new(0, stats).is_err());
    }
}
