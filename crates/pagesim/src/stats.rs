//! Page-access accounting.
//!
//! Every simulated structure charges its page reads and writes to an
//! [`IoStats`] instance, shared through the cheaply clonable
//! [`StatsHandle`].  Experiments reset the counter, run an operation and
//! read off the access count — exactly the quantity the paper's analytical
//! model predicts.

use std::fmt;
use std::rc::Rc;
use std::cell::Cell;

/// Shared, cheaply clonable handle to an [`IoStats`] counter.
pub type StatsHandle = Rc<IoStats>;

/// Counts page reads and writes.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    /// Reads satisfied by a buffer pool (not charged as disk reads).
    buffer_hits: Cell<u64>,
}

impl IoStats {
    /// A fresh counter behind a shared handle.
    pub fn new_handle() -> StatsHandle {
        Rc::new(IoStats::default())
    }

    /// Charge one page read.
    pub fn count_read(&self) {
        self.reads.set(self.reads.get() + 1);
    }

    /// Charge one page write.
    pub fn count_write(&self) {
        self.writes.set(self.writes.get() + 1);
    }

    /// Record a buffer-pool hit (a logical read that cost no disk access).
    pub fn count_buffer_hit(&self) {
        self.buffer_hits.set(self.buffer_hits.get() + 1);
    }

    /// Pages read from disk so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Pages written to disk so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Buffer hits so far.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits.get()
    }

    /// Total page accesses — the paper's cost metric (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.buffer_hits.set(0);
    }

    /// An immutable snapshot (for computing deltas across an operation).
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.get(),
            writes: self.writes.get(),
            buffer_hits: self.buffer_hits.get(),
        }
    }

    /// Accesses since `before` was taken.
    pub fn accesses_since(&self, before: &IoSnapshot) -> u64 {
        self.accesses() - (before.reads + before.writes)
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Page reads at snapshot time.
    pub reads: u64,
    /// Page writes at snapshot time.
    pub writes: u64,
    /// Buffer hits at snapshot time.
    pub buffer_hits: u64,
}

impl IoSnapshot {
    /// Total accesses in the snapshot.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads, {} writes ({} buffer hits)",
            self.reads.get(),
            self.writes.get(),
            self.buffer_hits.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let stats = IoStats::new_handle();
        stats.count_read();
        stats.count_read();
        stats.count_write();
        stats.count_buffer_hit();
        assert_eq!(stats.reads(), 2);
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.buffer_hits(), 1);
        assert_eq!(stats.accesses(), 3);
        stats.reset();
        assert_eq!(stats.accesses(), 0);
    }

    #[test]
    fn snapshot_deltas() {
        let stats = IoStats::new_handle();
        stats.count_read();
        let before = stats.snapshot();
        stats.count_read();
        stats.count_write();
        assert_eq!(stats.accesses_since(&before), 2);
        assert_eq!(before.accesses(), 1);
    }

    #[test]
    fn handles_share_the_counter() {
        let a = IoStats::new_handle();
        let b = Rc::clone(&a);
        a.count_read();
        b.count_write();
        assert_eq!(a.accesses(), 2);
        assert_eq!(b.accesses(), 2);
    }
}
