//! Page-access accounting.
//!
//! Every simulated structure charges its page reads and writes to an
//! [`IoStats`] instance, shared through the cheaply clonable
//! [`StatsHandle`].  Experiments reset the counter, run an operation and
//! read off the access count — exactly the quantity the paper's analytical
//! model predicts.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Shared, cheaply clonable handle to an [`IoStats`] counter.
pub type StatsHandle = Rc<IoStats>;

/// Identifies one registered storage structure (a clustered file or a B+
/// tree) for per-structure I/O attribution.
///
/// The default value, [`StructureId::UNTRACKED`], charges only the global
/// counters — structures opt in by registering a label via
/// [`IoStats::register_structure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StructureId(u32);

impl StructureId {
    /// The "no attribution" id every structure starts with.
    pub const UNTRACKED: StructureId = StructureId(0);

    /// Whether charges through this id reach a per-structure counter.
    pub fn is_tracked(self) -> bool {
        self.0 != 0
    }

    fn index(self) -> Option<usize> {
        (self.0 as usize).checked_sub(1)
    }
}

impl fmt::Display for StructureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tracked() {
            write!(f, "s{}", self.0)
        } else {
            write!(f, "untracked")
        }
    }
}

/// The kind of storage structure behind a [`StructureId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// A type-clustered object file (`opp_i` objects per page).
    ClusteredFile,
    /// A page-granular B+ tree (ASR partitions, directions).
    BTree,
    /// A sequential durability structure: the write-ahead log or a
    /// checkpoint snapshot file (`asr-durable`).
    Wal,
    /// Anything else that charges page traffic.
    Other,
}

impl StructureKind {
    /// Short lower-case name for tables and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::ClusteredFile => "clustered_file",
            StructureKind::BTree => "btree",
            StructureKind::Wal => "wal",
            StructureKind::Other => "other",
        }
    }
}

#[derive(Debug)]
struct StructureEntry {
    kind: StructureKind,
    label: String,
    reads: Cell<u64>,
    writes: Cell<u64>,
    buffer_hits: Cell<u64>,
}

/// A point-in-time copy of one structure's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureIo {
    /// The id charges were tagged with.
    pub id: StructureId,
    /// What kind of structure registered it.
    pub kind: StructureKind,
    /// Human-readable label chosen at registration.
    pub label: String,
    /// Page reads attributed to this structure.
    pub reads: u64,
    /// Page writes attributed to this structure.
    pub writes: u64,
    /// Buffer hits attributed to this structure.
    pub buffer_hits: u64,
}

impl StructureIo {
    /// Total attributed page accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Counts page reads and writes.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    /// Reads satisfied by a buffer pool (not charged as disk reads).
    buffer_hits: Cell<u64>,
    /// Probes answered through a batched sorted descent
    /// ([`BPlusTree::scan_ranges_sorted`](crate::BPlusTree::scan_ranges_sorted)).
    batch_probes: Cell<u64>,
    /// Page reads a per-probe evaluation would have charged on top of what
    /// the batched descents actually read.
    batch_pages_saved: Cell<u64>,
    /// Per-structure attribution, indexed by `StructureId - 1`.
    structures: RefCell<Vec<StructureEntry>>,
}

impl IoStats {
    /// A fresh counter behind a shared handle.
    pub fn new_handle() -> StatsHandle {
        Rc::new(IoStats::default())
    }

    /// Charge one page read.
    pub fn count_read(&self) {
        self.reads.set(self.reads.get() + 1);
    }

    /// Charge one page write.
    pub fn count_write(&self) {
        self.writes.set(self.writes.get() + 1);
    }

    /// Record a buffer-pool hit (a logical read that cost no disk access).
    pub fn count_buffer_hit(&self) {
        self.buffer_hits.set(self.buffer_hits.get() + 1);
    }

    /// Record the outcome of one batched probe run: `probes` keys/ranges
    /// answered, saving `pages_saved` page reads over per-probe descents.
    pub fn count_batch(&self, probes: u64, pages_saved: u64) {
        self.batch_probes.set(self.batch_probes.get() + probes);
        self.batch_pages_saved
            .set(self.batch_pages_saved.get() + pages_saved);
    }

    /// Register a structure for I/O attribution; charges tagged with the
    /// returned id are counted both globally and per structure.
    pub fn register_structure(&self, kind: StructureKind, label: impl Into<String>) -> StructureId {
        let label = label.into();
        let mut structures = self.structures.borrow_mut();
        // Re-registering the same (kind, label) — e.g. after an ASR rebuild
        // recreates its partition trees — reuses the entry so the counters
        // accumulate across the structure's lifetimes.
        if let Some(idx) = structures
            .iter()
            .position(|e| e.kind == kind && e.label == label)
        {
            return StructureId(idx as u32 + 1);
        }
        structures.push(StructureEntry {
            kind,
            label,
            reads: Cell::new(0),
            writes: Cell::new(0),
            buffer_hits: Cell::new(0),
        });
        StructureId(structures.len() as u32)
    }

    fn with_entry(&self, id: StructureId, f: impl FnOnce(&StructureEntry)) {
        if let Some(idx) = id.index() {
            if let Some(entry) = self.structures.borrow().get(idx) {
                f(entry);
            }
        }
    }

    /// Charge one page read, attributed to `id`.
    pub fn count_read_for(&self, id: StructureId) {
        self.count_read();
        self.with_entry(id, |e| e.reads.set(e.reads.get() + 1));
    }

    /// Charge one page write, attributed to `id`.
    pub fn count_write_for(&self, id: StructureId) {
        self.count_write();
        self.with_entry(id, |e| e.writes.set(e.writes.get() + 1));
    }

    /// Record a buffer hit, attributed to `id`.
    pub fn count_buffer_hit_for(&self, id: StructureId) {
        self.count_buffer_hit();
        self.with_entry(id, |e| e.buffer_hits.set(e.buffer_hits.get() + 1));
    }

    /// Point-in-time counters for every registered structure, in
    /// registration order.
    pub fn structures(&self) -> Vec<StructureIo> {
        self.structures
            .borrow()
            .iter()
            .enumerate()
            .map(|(idx, e)| StructureIo {
                id: StructureId(idx as u32 + 1),
                kind: e.kind,
                label: e.label.clone(),
                reads: e.reads.get(),
                writes: e.writes.get(),
                buffer_hits: e.buffer_hits.get(),
            })
            .collect()
    }

    /// Point-in-time counters for one structure, if registered.
    pub fn structure(&self, id: StructureId) -> Option<StructureIo> {
        let idx = id.index()?;
        let structures = self.structures.borrow();
        let e = structures.get(idx)?;
        Some(StructureIo {
            id,
            kind: e.kind,
            label: e.label.clone(),
            reads: e.reads.get(),
            writes: e.writes.get(),
            buffer_hits: e.buffer_hits.get(),
        })
    }

    /// Pages read from disk so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Pages written to disk so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Buffer hits so far.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits.get()
    }

    /// Probes answered through batched sorted descents so far.
    pub fn batch_probes(&self) -> u64 {
        self.batch_probes.get()
    }

    /// Page reads avoided by batching so far (vs. per-probe descents).
    pub fn batch_pages_saved(&self) -> u64 {
        self.batch_pages_saved.get()
    }

    /// Total page accesses — the paper's cost metric (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Reset all counters to zero. Structure registrations survive; only
    /// their counters are cleared.
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.buffer_hits.set(0);
        self.batch_probes.set(0);
        self.batch_pages_saved.set(0);
        for entry in self.structures.borrow().iter() {
            entry.reads.set(0);
            entry.writes.set(0);
            entry.buffer_hits.set(0);
        }
    }

    /// An immutable snapshot (for computing deltas across an operation).
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.get(),
            writes: self.writes.get(),
            buffer_hits: self.buffer_hits.get(),
            batch_probes: self.batch_probes.get(),
            batch_pages_saved: self.batch_pages_saved.get(),
        }
    }

    /// Accesses since `before` was taken.
    pub fn accesses_since(&self, before: &IoSnapshot) -> u64 {
        self.accesses() - (before.reads + before.writes)
    }

    /// Add a snapshot's totals into this counter's global tallies.
    ///
    /// This is the cheap half of the sharding contract (see [`absorb`]
    /// [`IoStats::absorb`]): worker threads count into private handles and
    /// ship plain [`IoSnapshot`] values (which are `Send`) back to the
    /// coordinator, which folds them in here when the scope joins.
    pub fn absorb_snapshot(&self, shard: &IoSnapshot) {
        self.reads.set(self.reads.get() + shard.reads);
        self.writes.set(self.writes.get() + shard.writes);
        self.buffer_hits
            .set(self.buffer_hits.get() + shard.buffer_hits);
        self.batch_probes
            .set(self.batch_probes.get() + shard.batch_probes);
        self.batch_pages_saved
            .set(self.batch_pages_saved.get() + shard.batch_pages_saved);
    }

    /// Merge another counter — globals, batch tallies *and* per-structure
    /// attribution — into this one.
    ///
    /// `IoStats` is deliberately `Cell`-based and single-threaded: a
    /// parallel harness gives each worker thread its own *shard* (a
    /// private handle that never crosses threads, so the hot counting
    /// path stays free of atomics), then merges the shards into one
    /// aggregate when the scope joins.  Structures are matched by
    /// `(kind, label)` — the same identity [`register_structure`]
    /// [`IoStats::register_structure`] dedups on — and registered here on
    /// first sight, so shard-local [`StructureId`]s never leak across
    /// counters.
    pub fn absorb(&self, shard: &IoStats) {
        self.absorb_snapshot(&shard.snapshot());
        for io in shard.structures() {
            let id = self.register_structure(io.kind, io.label);
            self.with_entry(id, |e| {
                e.reads.set(e.reads.get() + io.reads);
                e.writes.set(e.writes.get() + io.writes);
                e.buffer_hits.set(e.buffer_hits.get() + io.buffer_hits);
            });
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Page reads at snapshot time.
    pub reads: u64,
    /// Page writes at snapshot time.
    pub writes: u64,
    /// Buffer hits at snapshot time.
    pub buffer_hits: u64,
    /// Batched probes at snapshot time.
    pub batch_probes: u64,
    /// Pages saved by batching at snapshot time.
    pub batch_pages_saved: u64,
}

impl IoSnapshot {
    /// Total accesses in the snapshot.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fold another snapshot's tallies into this one (shard merging).
    pub fn merge(&mut self, other: &IoSnapshot) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.buffer_hits += other.buffer_hits;
        self.batch_probes += other.batch_probes;
        self.batch_pages_saved += other.batch_pages_saved;
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads, {} writes ({} buffer hits)",
            self.reads.get(),
            self.writes.get(),
            self.buffer_hits.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let stats = IoStats::new_handle();
        stats.count_read();
        stats.count_read();
        stats.count_write();
        stats.count_buffer_hit();
        assert_eq!(stats.reads(), 2);
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.buffer_hits(), 1);
        assert_eq!(stats.accesses(), 3);
        stats.reset();
        assert_eq!(stats.accesses(), 0);
    }

    #[test]
    fn snapshot_deltas() {
        let stats = IoStats::new_handle();
        stats.count_read();
        let before = stats.snapshot();
        stats.count_read();
        stats.count_write();
        assert_eq!(stats.accesses_since(&before), 2);
        assert_eq!(before.accesses(), 1);
    }

    #[test]
    fn structure_attribution_splits_the_totals() {
        let stats = IoStats::new_handle();
        let file = stats.register_structure(StructureKind::ClusteredFile, "EMP file");
        let tree = stats.register_structure(StructureKind::BTree, "asr fwd");
        assert!(file.is_tracked());
        assert_ne!(file, tree);

        stats.count_read_for(file);
        stats.count_read_for(file);
        stats.count_write_for(tree);
        stats.count_buffer_hit_for(tree);
        stats.count_read_for(StructureId::UNTRACKED);

        assert_eq!(stats.reads(), 3, "global totals include untracked charges");
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.buffer_hits(), 1);

        let per = stats.structures();
        assert_eq!(per.len(), 2);
        assert_eq!((per[0].reads, per[0].writes), (2, 0));
        assert_eq!(per[0].label, "EMP file");
        assert_eq!((per[1].reads, per[1].writes, per[1].buffer_hits), (0, 1, 1));
        assert_eq!(per[1].kind, StructureKind::BTree);

        let attributed: u64 = per.iter().map(|s| s.accesses()).sum();
        assert_eq!(attributed, 3, "one read was untracked");

        stats.reset();
        assert_eq!(stats.structure(tree).unwrap().accesses(), 0);
        assert_eq!(stats.structures().len(), 2, "registrations survive reset");
    }

    #[test]
    fn snapshot_merge_adds_fieldwise() {
        let a = IoStats::new_handle();
        a.count_read();
        a.count_batch(3, 5);
        let b = IoStats::new_handle();
        b.count_write();
        b.count_buffer_hit();
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!((total.reads, total.writes, total.buffer_hits), (1, 1, 1));
        assert_eq!((total.batch_probes, total.batch_pages_saved), (3, 5));
    }

    #[test]
    fn absorb_merges_shards_including_structures() {
        // Two worker shards charging the same logical structure plus one
        // shard-private structure each.
        let shard_a = IoStats::new_handle();
        let wal_a = shard_a.register_structure(StructureKind::Wal, "wal.log");
        let file_a = shard_a.register_structure(StructureKind::ClusteredFile, "EMP");
        shard_a.count_read_for(wal_a);
        shard_a.count_write_for(file_a);

        let shard_b = IoStats::new_handle();
        // Opposite registration order: ids differ per shard, identity is
        // (kind, label).
        let tree_b = shard_b.register_structure(StructureKind::BTree, "asr fwd");
        let wal_b = shard_b.register_structure(StructureKind::Wal, "wal.log");
        shard_b.count_write_for(wal_b);
        shard_b.count_write_for(wal_b);
        shard_b.count_buffer_hit_for(tree_b);

        let total = IoStats::new_handle();
        total.absorb(&shard_a);
        total.absorb(&shard_b);

        assert_eq!(total.reads(), 1);
        assert_eq!(total.writes(), 3);
        assert_eq!(total.buffer_hits(), 1);
        let per = total.structures();
        assert_eq!(per.len(), 3, "wal.log deduped across shards");
        let wal = per
            .iter()
            .find(|s| s.kind == StructureKind::Wal && s.label == "wal.log")
            .unwrap();
        assert_eq!((wal.reads, wal.writes), (1, 2));
    }

    #[test]
    fn absorb_snapshot_hits_only_globals() {
        let total = IoStats::new_handle();
        total.register_structure(StructureKind::Other, "x");
        let shard = IoStats::new_handle();
        shard.count_read();
        shard.count_write();
        total.absorb_snapshot(&shard.snapshot());
        assert_eq!(total.accesses(), 2);
        assert_eq!(total.structures()[0].accesses(), 0);
    }

    #[test]
    fn handles_share_the_counter() {
        let a = IoStats::new_handle();
        let b = Rc::clone(&a);
        a.count_read();
        b.count_write();
        assert_eq!(a.accesses(), 2);
        assert_eq!(b.accesses(), 2);
    }
}
