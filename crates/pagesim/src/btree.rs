//! A page-granular B+ tree.
//!
//! Section 5.2 of the paper stores every access-support-relation partition
//! in **two redundant B+ trees**, clustered on the first resp. the last
//! attribute.  This module provides that tree: a classic B+ tree whose node
//! capacities derive from the paper's page geometry —
//!
//! * leaf pages hold `⌊PageSize / entry_size⌋` entries (the paper's
//!   `atpp^{i,j}`, formula 14),
//! * inner pages hold `⌊PageSize / (key_size + PPsize)⌋` children (the
//!   paper's `B⁺fan`, Figure 3) —
//!
//! and whose every node visit is charged to the shared [`IoStats`](crate::IoStats) counter
//! (one node = one page).  The tree supports unique-key insertion, point
//! lookup, deletion with borrow/merge rebalancing, and ordered range scans
//! over the linked leaf level.
//!
//! Composite keys (e.g. `(column value, row id)`) are expressed through the
//! ordinary `Ord` bound; prefix scans become half-open ranges.

use std::cell::RefCell;
use std::fmt::Debug;
use std::ops::Bound;

use crate::buffer::BufferPool;
use crate::constants::{PAGE_SIZE, PP_SIZE};
use crate::error::{PageSimError, Result};
use crate::stats::StatsHandle;

const NO_NODE: usize = usize::MAX;

/// Plan chunk sizes for bulk loading: greedy chunks of `target`, with the
/// tail adjusted so every chunk (except a lone root chunk) holds at least
/// `min` and at most `capacity` items.
fn chunk_plan(total: usize, target: usize, min: usize, capacity: usize) -> Vec<usize> {
    debug_assert!(min <= target && target <= capacity);
    let mut sizes = Vec::new();
    let mut remaining = total;
    loop {
        if remaining == 0 {
            break;
        }
        if remaining <= capacity {
            // Final chunk; a single root chunk may be arbitrarily small.
            sizes.push(remaining);
            break;
        }
        if remaining >= target + min {
            sizes.push(target);
            remaining -= target;
        } else {
            // capacity < remaining < target + min: split the tail evenly —
            // both halves satisfy min because remaining > capacity >= 2·min.
            let a = remaining.div_ceil(2);
            sizes.push(a);
            sizes.push(remaining - a);
            break;
        }
    }
    sizes
}

#[derive(Debug, Clone)]
enum Node<K, V> {
    Inner {
        /// Separator keys; `keys.len() + 1 == children.len()`.
        /// `children[i]` holds keys `< keys[i]`; `children[i+1]` keys `>= keys[i]`.
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<(K, V)>,
        next: usize,
    },
    /// Slab tombstone available for reuse.
    Free,
}

/// A B+ tree with page-access accounting.
///
/// Keys must be unique; composite keys give multi-map behaviour.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    root: usize,
    /// Levels including the leaf level (empty tree = single empty leaf,
    /// height 1).
    height: usize,
    leaf_capacity: usize,
    inner_capacity: usize,
    len: usize,
    stats: StatsHandle,
    buffer: RefCell<BufferPool>,
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// Create a tree whose leaf entries occupy `entry_size` bytes and whose
    /// inner-node keys occupy `key_size` bytes.
    ///
    /// Capacities are floored at 2 entries / 3 children so degenerate sizes
    /// (entries larger than half a page) still yield a working tree.
    pub fn new(entry_size: usize, key_size: usize, stats: StatsHandle) -> Self {
        let leaf_capacity = (PAGE_SIZE / entry_size.max(1)).max(2);
        let inner_capacity = (PAGE_SIZE / (key_size.max(1) + PP_SIZE)).max(3);
        Self::with_capacities(leaf_capacity, inner_capacity, stats)
    }

    /// Create a tree with explicit node capacities (used by tests to force
    /// deep trees with few keys).
    pub fn with_capacities(
        leaf_capacity: usize,
        inner_capacity: usize,
        stats: StatsHandle,
    ) -> Self {
        assert!(leaf_capacity >= 2, "leaf capacity must be >= 2");
        assert!(inner_capacity >= 3, "inner capacity must be >= 3");
        let root_leaf = Node::Leaf {
            entries: Vec::new(),
            next: NO_NODE,
        };
        BPlusTree {
            nodes: vec![root_leaf],
            free: Vec::new(),
            root: 0,
            height: 1,
            leaf_capacity,
            inner_capacity,
            len: 0,
            stats,
            buffer: RefCell::new(BufferPool::unbuffered()),
        }
    }

    /// Replace the (default pass-through) buffer pool. The tree's
    /// structure tag (if any) carries over to the new pool.
    pub fn set_buffer(&mut self, mut pool: BufferPool) {
        pool.set_structure(self.buffer.borrow().structure());
        self.buffer = RefCell::new(pool);
    }

    /// Register this tree under `label` in the stats registry so its page
    /// traffic is attributable (see [`IoStats::register_structure`]).
    ///
    /// [`IoStats::register_structure`]: crate::stats::IoStats::register_structure
    pub fn tag(&mut self, label: impl Into<String>) -> crate::stats::StructureId {
        let sid = self
            .stats
            .register_structure(crate::stats::StructureKind::BTree, label);
        self.buffer.borrow_mut().set_structure(sid);
        sid
    }

    /// The structure id this tree's charges are attributed to
    /// ([`StructureId::UNTRACKED`] before [`BPlusTree::tag`]).
    ///
    /// [`StructureId::UNTRACKED`]: crate::stats::StructureId::UNTRACKED
    pub fn structure_id(&self) -> crate::stats::StructureId {
        self.buffer.borrow().structure()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels, *including* the leaf level.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Height of the non-leaf part — the paper's `ht^{i,j}` (formula 19
    /// counts the tree "not considering the leaves").
    pub fn inner_height(&self) -> usize {
        self.height - 1
    }

    /// Maximum entries per leaf page (the paper's `atpp`).
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Maximum children per inner page (the paper's `B⁺fan`).
    pub fn inner_capacity(&self) -> usize {
        self.inner_capacity
    }

    /// Number of leaf pages (the paper's `ap^{i,j}`).
    pub fn leaf_page_count(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count() as u64
    }

    /// Number of inner pages (the paper's `pg^{i,j}` without leaves).
    pub fn inner_page_count(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Inner { .. }))
            .count() as u64
    }

    /// Total pages occupied by the tree.
    pub fn page_count(&self) -> u64 {
        self.leaf_page_count() + self.inner_page_count()
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Page accounting helpers
    // ------------------------------------------------------------------

    fn charge_read(&self, node: usize) {
        self.buffer.borrow_mut().read(node as u64, &self.stats);
    }

    fn charge_write(&self, node: usize) {
        self.buffer.borrow_mut().write(node as u64, &self.stats);
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, id: usize) {
        self.nodes[id] = Node::Free;
        self.free.push(id);
    }

    // ------------------------------------------------------------------
    // Descent
    // ------------------------------------------------------------------

    /// Walk from the root to the leaf responsible for `key`, charging one
    /// read per level and recording `(node, child index)` for each inner
    /// node on the way.
    fn descend(&self, key: &K) -> (usize, Vec<(usize, usize)>) {
        let mut path = Vec::with_capacity(self.height);
        let mut node = self.root;
        loop {
            self.charge_read(node);
            match &self.nodes[node] {
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    path.push((node, idx));
                    node = children[idx];
                }
                Node::Leaf { .. } => return (node, path),
                Node::Free => unreachable!("descended into freed node"),
            }
        }
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Point lookup.  Charges `height` page reads.
    pub fn get(&self, key: &K) -> Option<V> {
        let (leaf, _) = self.descend(key);
        let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
            unreachable!()
        };
        entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| entries[i].1.clone())
    }

    /// Does the tree contain `key`?
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Visit all entries with `lo <= key < hi` (half-open), in key order.
    /// Charges the initial descent plus one read per additional leaf.
    pub fn scan_range(&self, lo: Bound<&K>, hi: Bound<&K>, mut visit: impl FnMut(&K, &V)) {
        let mut leaf;
        let mut start_idx;
        match lo {
            Bound::Included(key) | Bound::Excluded(key) => {
                let (l, _) = self.descend(key);
                leaf = l;
                let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
                    unreachable!()
                };
                start_idx = entries.partition_point(|(k, _)| match lo {
                    Bound::Included(key) => k < key,
                    Bound::Excluded(key) => k <= key,
                    Bound::Unbounded => false,
                });
            }
            Bound::Unbounded => {
                // Walk down the left spine.
                let mut node = self.root;
                loop {
                    self.charge_read(node);
                    match &self.nodes[node] {
                        Node::Inner { children, .. } => node = children[0],
                        Node::Leaf { .. } => break,
                        Node::Free => unreachable!(),
                    }
                }
                leaf = node;
                start_idx = 0;
            }
        }
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                unreachable!()
            };
            for (k, v) in &entries[start_idx..] {
                let in_range = match hi {
                    Bound::Included(h) => k <= h,
                    Bound::Excluded(h) => k < h,
                    Bound::Unbounded => true,
                };
                if !in_range {
                    return;
                }
                visit(k, v);
            }
            if *next == NO_NODE {
                return;
            }
            leaf = *next;
            start_idx = 0;
            self.charge_read(leaf);
        }
    }

    /// Collect a half-open range `[lo, hi)` into a vector.
    pub fn range_collect(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.scan_range(Bound::Included(lo), Bound::Excluded(hi), |k, v| {
            out.push((k.clone(), v.clone()))
        });
        out
    }

    /// Visit every entry in key order (full leaf-level scan).
    pub fn scan_all(&self, visit: impl FnMut(&K, &V)) {
        self.scan_range(Bound::Unbounded, Bound::Unbounded, visit)
    }

    /// The smallest key, if any.  Charges a left-spine descent.
    pub fn first_key(&self) -> Option<K> {
        let mut out = None;
        self.scan_range(Bound::Unbounded, Bound::Unbounded, |k, _| {
            if out.is_none() {
                out = Some(k.clone());
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a unique key.  Charges the descent reads plus one write per
    /// modified node (leaf, split siblings, updated ancestors).
    pub fn insert(&mut self, key: K, value: V) -> Result<()> {
        let (leaf, path) = self.descend(&key);
        {
            let Node::Leaf { entries, .. } = &mut self.nodes[leaf] else {
                unreachable!()
            };
            match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(_) => return Err(PageSimError::DuplicateKey(format!("{key:?}"))),
                Err(pos) => entries.insert(pos, (key, value)),
            }
        }
        self.len += 1;
        self.charge_write(leaf);

        // Split propagation.
        let mut child = leaf;
        let mut path = path;
        loop {
            let (split_key, new_node) = match self.split_if_overfull(child) {
                Some(split) => split,
                None => break,
            };
            match path.pop() {
                Some((parent, child_idx)) => {
                    let Node::Inner { keys, children } = &mut self.nodes[parent] else {
                        unreachable!()
                    };
                    keys.insert(child_idx, split_key);
                    children.insert(child_idx + 1, new_node);
                    self.charge_write(parent);
                    child = parent;
                }
                None => {
                    // Root split: grow the tree by one level.
                    let old_root = self.root;
                    let new_root = self.alloc(Node::Inner {
                        keys: vec![split_key],
                        children: vec![old_root, new_node],
                    });
                    self.root = new_root;
                    self.height += 1;
                    self.charge_write(new_root);
                    break;
                }
            }
        }
        Ok(())
    }

    /// If `node` exceeds its capacity, split it and return the separator
    /// key plus the new right sibling.
    fn split_if_overfull(&mut self, node: usize) -> Option<(K, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf { entries, next } => {
                if entries.len() <= self.leaf_capacity {
                    return None;
                }
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let right_next = *next;
                let separator = right_entries[0].0.clone();
                let right = self.alloc(Node::Leaf {
                    entries: right_entries,
                    next: right_next,
                });
                let Node::Leaf { next, .. } = &mut self.nodes[node] else {
                    unreachable!()
                };
                *next = right;
                self.charge_write(node);
                self.charge_write(right);
                Some((separator, right))
            }
            Node::Inner { keys, children } => {
                if children.len() <= self.inner_capacity {
                    return None;
                }
                let mid = keys.len() / 2;
                // keys[mid] moves up; right gets keys[mid+1..] and
                // children[mid+1..].
                let right_keys = keys.split_off(mid + 1);
                let separator = keys.pop().expect("mid key exists");
                let right_children = children.split_off(mid + 1);
                let right = self.alloc(Node::Inner {
                    keys: right_keys,
                    children: right_children,
                });
                self.charge_write(node);
                self.charge_write(right);
                Some((separator, right))
            }
            Node::Free => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Build a tree bottom-up from **strictly ascending** `(key, value)`
    /// pairs — the classic bulk-load used when an access relation is
    /// (re)built from a computed extension.  Charges one page write per
    /// created node, which is far cheaper than the read-modify-write
    /// churn of repeated [`BPlusTree::insert`]s.
    ///
    /// Returns an error if the keys are not strictly ascending.
    pub fn bulk_load(
        entries: impl IntoIterator<Item = (K, V)>,
        entry_size: usize,
        key_size: usize,
        stats: StatsHandle,
    ) -> Result<Self> {
        let mut tree = Self::new(entry_size, key_size, stats);
        tree.fill(entries)?;
        Ok(tree)
    }

    /// Bulk-load into an (empty) tree with already-configured capacities.
    pub fn fill(&mut self, entries: impl IntoIterator<Item = (K, V)>) -> Result<()> {
        assert!(self.is_empty(), "fill() requires an empty tree");
        // Validate ordering while collecting.
        let mut all: Vec<(K, V)> = Vec::new();
        for (k, v) in entries {
            if let Some((prev, _)) = all.last() {
                if prev >= &k {
                    return Err(PageSimError::CorruptStructure(
                        "bulk_load keys must be strictly ascending".into(),
                    ));
                }
            }
            all.push((k, v));
        }
        if all.is_empty() {
            return Ok(()); // stays the empty root leaf
        }
        let count = all.len();

        // Leaves at ~90% occupancy, with the final chunk(s) adjusted so no
        // non-root node violates the minimum-fill invariant.
        let target = ((self.leaf_capacity * 9) / 10).max(2);
        let plan = chunk_plan(count, target, self.min_leaf(), self.leaf_capacity);
        let mut leaves: Vec<usize> = Vec::with_capacity(plan.len());
        let mut iter = all.into_iter();
        for size in plan {
            let chunk: Vec<(K, V)> = iter.by_ref().take(size).collect();
            let node = self.alloc(Node::Leaf {
                entries: chunk,
                next: NO_NODE,
            });
            self.charge_write(node);
            leaves.push(node);
        }
        for pair in leaves.windows(2) {
            let (left, right) = (pair[0], pair[1]);
            let Node::Leaf { next, .. } = &mut self.nodes[left] else {
                unreachable!()
            };
            *next = right;
        }
        // The old empty root leaf is replaced by the loaded tree.
        let old_root = self.root;
        self.release(old_root);

        // Inner levels bottom-up, with the same chunk planning over
        // children counts.
        let inner_target = ((self.inner_capacity * 9) / 10).max(2);
        let mut level: Vec<usize> = leaves;
        let mut height = 1usize;
        while level.len() > 1 {
            let plan = chunk_plan(
                level.len(),
                inner_target,
                self.min_children(),
                self.inner_capacity,
            );
            let mut parents: Vec<usize> = Vec::with_capacity(plan.len());
            let mut iter = level.into_iter();
            for size in plan {
                let children: Vec<usize> = iter.by_ref().take(size).collect();
                let keys: Vec<K> = children[1..].iter().map(|&c| self.min_key_of(c)).collect();
                let node = self.alloc(Node::Inner { keys, children });
                self.charge_write(node);
                parents.push(node);
            }
            level = parents;
            height += 1;
        }
        self.root = level[0];
        self.height = height;
        self.len = count;
        Ok(())
    }

    /// Smallest key in the subtree rooted at `node` (bulk-load helper; no
    /// page charges — the key is known to the builder).
    #[allow(clippy::only_used_in_recursion)]
    fn min_key_of(&self, node: usize) -> K {
        let mut n = node;
        loop {
            match &self.nodes[n] {
                Node::Inner { children, .. } => n = children[0],
                Node::Leaf { entries, .. } => {
                    return entries
                        .first()
                        .expect("bulk-loaded nodes are non-empty")
                        .0
                        .clone()
                }
                Node::Free => unreachable!(),
            }
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Remove `key`, returning its value if present.  Rebalances by
    /// borrowing from or merging with siblings.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (leaf, path) = self.descend(key);
        let removed = {
            let Node::Leaf { entries, .. } = &mut self.nodes[leaf] else {
                unreachable!()
            };
            match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(pos) => entries.remove(pos).1,
                Err(_) => return None,
            }
        };
        self.len -= 1;
        self.charge_write(leaf);
        self.rebalance_upwards(leaf, path);
        Some(removed)
    }

    fn min_leaf(&self) -> usize {
        self.leaf_capacity / 2
    }

    fn min_children(&self) -> usize {
        self.inner_capacity.div_ceil(2)
    }

    fn node_is_deficient(&self, node: usize) -> bool {
        match &self.nodes[node] {
            Node::Leaf { entries, .. } => entries.len() < self.min_leaf(),
            Node::Inner { children, .. } => children.len() < self.min_children(),
            Node::Free => unreachable!(),
        }
    }

    fn rebalance_upwards(&mut self, mut node: usize, mut path: Vec<(usize, usize)>) {
        loop {
            if node == self.root {
                self.collapse_root_if_needed();
                return;
            }
            if !self.node_is_deficient(node) {
                return;
            }
            let (parent, child_idx) = path.pop().expect("non-root node has a parent");
            self.fix_deficient_child(parent, child_idx);
            node = parent;
        }
    }

    fn collapse_root_if_needed(&mut self) {
        while let Node::Inner { children, .. } = &self.nodes[self.root] {
            if children.len() > 1 {
                return;
            }
            let only_child = children[0];
            let old_root = self.root;
            self.root = only_child;
            self.height -= 1;
            self.release(old_root);
        }
    }

    /// Repair the deficient `children[child_idx]` of `parent` by borrowing
    /// from a sibling or merging.
    fn fix_deficient_child(&mut self, parent: usize, child_idx: usize) {
        let (left_idx, right_idx) = {
            let Node::Inner { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            let left = child_idx.checked_sub(1).map(|i| children[i]);
            let right = children.get(child_idx + 1).copied();
            (left, right)
        };
        // Prefer borrowing from the sibling with surplus.
        if let Some(left) = left_idx {
            self.charge_read(left);
            if self.has_surplus(left) {
                self.borrow_from_left(parent, child_idx, left);
                return;
            }
        }
        if let Some(right) = right_idx {
            self.charge_read(right);
            if self.has_surplus(right) {
                self.borrow_from_right(parent, child_idx, right);
                return;
            }
        }
        // Merge with a sibling (left preferred).
        if left_idx.is_some() {
            self.merge_children(parent, child_idx - 1);
        } else {
            self.merge_children(parent, child_idx);
        }
    }

    fn has_surplus(&self, node: usize) -> bool {
        match &self.nodes[node] {
            Node::Leaf { entries, .. } => entries.len() > self.min_leaf(),
            Node::Inner { children, .. } => children.len() > self.min_children(),
            Node::Free => unreachable!(),
        }
    }

    fn borrow_from_left(&mut self, parent: usize, child_idx: usize, left: usize) {
        let sep_idx = child_idx - 1;
        let child = {
            let Node::Inner { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            children[child_idx]
        };
        if matches!(self.nodes[child], Node::Leaf { .. }) {
            // Move the left sibling's last entry over; separator becomes
            // the moved key.
            let (k, v) = {
                let Node::Leaf { entries, .. } = &mut self.nodes[left] else {
                    unreachable!()
                };
                entries.pop().expect("surplus sibling is non-empty")
            };
            let new_sep = k.clone();
            let Node::Leaf { entries, .. } = &mut self.nodes[child] else {
                unreachable!()
            };
            entries.insert(0, (k, v));
            let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                unreachable!()
            };
            keys[sep_idx] = new_sep;
        } else {
            // Rotate through the parent separator.
            let (moved_key, moved_child) = {
                let Node::Inner { keys, children } = &mut self.nodes[left] else {
                    unreachable!()
                };
                (
                    keys.pop().expect("surplus"),
                    children.pop().expect("surplus"),
                )
            };
            let old_sep = {
                let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                std::mem::replace(&mut keys[sep_idx], moved_key)
            };
            let Node::Inner { keys, children } = &mut self.nodes[child] else {
                unreachable!()
            };
            keys.insert(0, old_sep);
            children.insert(0, moved_child);
        }
        self.charge_write(left);
        self.charge_write(child);
        self.charge_write(parent);
    }

    fn borrow_from_right(&mut self, parent: usize, child_idx: usize, right: usize) {
        let sep_idx = child_idx;
        let child = {
            let Node::Inner { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            children[child_idx]
        };
        if matches!(self.nodes[child], Node::Leaf { .. }) {
            let (k, v) = {
                let Node::Leaf { entries, .. } = &mut self.nodes[right] else {
                    unreachable!()
                };
                entries.remove(0)
            };
            let new_sep = {
                let Node::Leaf { entries, .. } = &self.nodes[right] else {
                    unreachable!()
                };
                entries[0].0.clone()
            };
            let Node::Leaf { entries, .. } = &mut self.nodes[child] else {
                unreachable!()
            };
            entries.push((k, v));
            let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                unreachable!()
            };
            keys[sep_idx] = new_sep;
        } else {
            let (moved_key, moved_child) = {
                let Node::Inner { keys, children } = &mut self.nodes[right] else {
                    unreachable!()
                };
                (keys.remove(0), children.remove(0))
            };
            let old_sep = {
                let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                std::mem::replace(&mut keys[sep_idx], moved_key)
            };
            let Node::Inner { keys, children } = &mut self.nodes[child] else {
                unreachable!()
            };
            keys.push(old_sep);
            children.push(moved_child);
        }
        self.charge_write(right);
        self.charge_write(child);
        self.charge_write(parent);
    }

    /// Merge `children[idx+1]` of `parent` into `children[idx]`.
    fn merge_children(&mut self, parent: usize, idx: usize) {
        let (left, right, separator) = {
            let Node::Inner { keys, children } = &mut self.nodes[parent] else {
                unreachable!()
            };
            let left = children[idx];
            let right = children.remove(idx + 1);
            let separator = keys.remove(idx);
            (left, right, separator)
        };
        let right_node = std::mem::replace(&mut self.nodes[right], Node::Free);
        match right_node {
            Node::Leaf { mut entries, next } => {
                let Node::Leaf {
                    entries: left_entries,
                    next: left_next,
                } = &mut self.nodes[left]
                else {
                    unreachable!()
                };
                left_entries.append(&mut entries);
                *left_next = next;
            }
            Node::Inner {
                mut keys,
                mut children,
            } => {
                let Node::Inner {
                    keys: left_keys,
                    children: left_children,
                } = &mut self.nodes[left]
                else {
                    unreachable!()
                };
                left_keys.push(separator);
                left_keys.append(&mut keys);
                left_children.append(&mut children);
            }
            Node::Free => unreachable!(),
        }
        self.free.push(right);
        self.charge_write(left);
        self.charge_write(parent);
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / debugging)
    // ------------------------------------------------------------------

    /// Verify all structural invariants; returns a descriptive error on the
    /// first violation.  Charges no page accesses.
    pub fn check_invariants(&self) -> Result<()> {
        let mut leaf_depths = Vec::new();
        let mut count = 0usize;
        self.check_node(self.root, 1, None, None, &mut leaf_depths, &mut count)?;
        if let Some(&d) = leaf_depths.first() {
            if leaf_depths.iter().any(|&x| x != d) {
                return Err(PageSimError::CorruptStructure(
                    "leaves at differing depths".into(),
                ));
            }
            if d != self.height {
                return Err(PageSimError::CorruptStructure(format!(
                    "height field {} != actual depth {d}",
                    self.height
                )));
            }
        }
        if count != self.len {
            return Err(PageSimError::CorruptStructure(format!(
                "len field {} != actual entry count {count}",
                self.len
            )));
        }
        // Leaf chain must enumerate all entries in ascending order.
        let mut chained = 0usize;
        let mut prev: Option<K> = None;
        let mut leaf = self.leftmost_leaf();
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                return Err(PageSimError::CorruptStructure(
                    "leaf chain hit non-leaf".into(),
                ));
            };
            for (k, _) in entries {
                if let Some(p) = &prev {
                    if p >= k {
                        return Err(PageSimError::CorruptStructure(
                            "leaf chain out of order".into(),
                        ));
                    }
                }
                prev = Some(k.clone());
                chained += 1;
            }
            if *next == NO_NODE {
                break;
            }
            leaf = *next;
        }
        if chained != self.len {
            return Err(PageSimError::CorruptStructure(format!(
                "leaf chain enumerates {chained} entries, len is {}",
                self.len
            )));
        }
        Ok(())
    }

    fn leftmost_leaf(&self) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Inner { children, .. } => node = children[0],
                Node::Leaf { .. } => return node,
                Node::Free => unreachable!(),
            }
        }
    }

    fn check_node(
        &self,
        node: usize,
        depth: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        leaf_depths: &mut Vec<usize>,
        count: &mut usize,
    ) -> Result<()> {
        let corrupt = |msg: String| Err(PageSimError::CorruptStructure(msg));
        match &self.nodes[node] {
            Node::Free => corrupt(format!("reachable node {node} is free")),
            Node::Leaf { entries, .. } => {
                if node != self.root && entries.len() < self.min_leaf() {
                    return corrupt(format!("leaf {node} underfull: {}", entries.len()));
                }
                if entries.len() > self.leaf_capacity {
                    return corrupt(format!("leaf {node} overfull: {}", entries.len()));
                }
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return corrupt(format!("leaf {node} keys unsorted"));
                    }
                }
                for (k, _) in entries {
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                        return corrupt(format!("leaf {node} key outside separator bounds"));
                    }
                }
                *count += entries.len();
                leaf_depths.push(depth);
                Ok(())
            }
            Node::Inner { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return corrupt(format!("inner {node} arity mismatch"));
                }
                if node != self.root && children.len() < self.min_children() {
                    return corrupt(format!("inner {node} underfull"));
                }
                if children.len() > self.inner_capacity {
                    return corrupt(format!("inner {node} overfull"));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return corrupt(format!("inner {node} keys unsorted"));
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(child, depth + 1, child_lo, child_hi, leaf_depths, count)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use std::rc::Rc;

    fn tiny_tree() -> BPlusTree<u32, u32> {
        // Capacity 4/4 forces frequent splits.
        BPlusTree::with_capacities(4, 4, IoStats::new_handle())
    }

    #[test]
    fn capacities_derive_from_page_geometry() {
        let t: BPlusTree<u64, u64> = BPlusTree::new(16, 8, IoStats::new_handle());
        assert_eq!(t.leaf_capacity(), 4056 / 16);
        assert_eq!(t.inner_capacity(), 338);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = tiny_tree();
        for k in 0..100u32 {
            t.insert(k, k * 10).unwrap();
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 100);
        for k in 0..100u32 {
            assert_eq!(t.get(&k), Some(k * 10));
        }
        assert_eq!(t.get(&100), None);
        assert!(t.height() > 2, "100 entries at capacity 4 must be deep");
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = tiny_tree();
        t.insert(1, 1).unwrap();
        assert!(matches!(t.insert(1, 2), Err(PageSimError::DuplicateKey(_))));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reverse_and_shuffled_insertion_orders() {
        for order in [
            (0..200u32).rev().collect::<Vec<_>>(),
            (0..200u32).map(|i| (i * 73) % 200).collect::<Vec<_>>(),
        ] {
            let mut t = tiny_tree();
            for &k in &order {
                t.insert(k, k).unwrap();
            }
            t.check_invariants().unwrap();
            let mut all = Vec::new();
            t.scan_all(|k, _| all.push(*k));
            assert_eq!(all, (0..200).collect::<Vec<_>>());
        }
    }

    #[test]
    fn range_scans_are_half_open_and_ordered() {
        let mut t = tiny_tree();
        for k in (0..100u32).step_by(2) {
            t.insert(k, k).unwrap();
        }
        let r = t.range_collect(&10, &20);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14, 16, 18]
        );
        // Bounds not present in the tree.
        let r = t.range_collect(&9, &15);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14]
        );
        // Empty range.
        assert!(t.range_collect(&15, &15).is_empty());
        assert_eq!(t.first_key(), Some(0));
    }

    #[test]
    fn removal_with_rebalancing() {
        let mut t = tiny_tree();
        for k in 0..300u32 {
            t.insert(k, k).unwrap();
        }
        // Remove every other key, then everything.
        for k in (0..300).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 150);
        for k in (1..300).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
        }
        t.check_invariants().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree collapses back to a single leaf");
        assert_eq!(t.remove(&5), None);
    }

    #[test]
    fn point_lookup_costs_height_reads() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        let stats = Rc::clone(t.stats());
        stats.reset();
        t.get(&250);
        assert_eq!(stats.reads(), t.height() as u64);
        assert_eq!(stats.writes(), 0);
    }

    #[test]
    fn range_scan_charges_extra_leaves_only() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        let stats = Rc::clone(t.stats());
        stats.reset();
        let r = t.range_collect(&0, &500);
        assert_eq!(r.len(), 500);
        let expected = t.height() as u64 + (t.leaf_page_count() - 1);
        assert_eq!(stats.reads(), expected);
    }

    #[test]
    fn page_counts_track_structure() {
        let mut t = tiny_tree();
        assert_eq!(t.page_count(), 1);
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        assert!(t.leaf_page_count() >= (100 / 4) as u64);
        assert!(t.inner_page_count() >= 1);
        // Pages are reclaimed on mass deletion.
        for k in 0..100u32 {
            t.remove(&k);
        }
        assert_eq!(t.page_count(), 1);
    }

    #[test]
    fn composite_keys_support_prefix_scans() {
        let mut t: BPlusTree<(u64, u64), ()> =
            BPlusTree::with_capacities(4, 4, IoStats::new_handle());
        for a in 0..10u64 {
            for b in 0..5u64 {
                t.insert((a, b), ()).unwrap();
            }
        }
        let r = t.range_collect(&(3, 0), &(4, 0));
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|((a, _), _)| *a == 3));
    }

    #[test]
    fn buffered_tree_amortizes_root_reads() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        t.set_buffer(BufferPool::with_capacity(1024));
        let stats = Rc::clone(t.stats());
        stats.reset();
        t.get(&1);
        let cold = stats.reads();
        t.get(&1);
        assert_eq!(stats.reads(), cold, "warm lookup served from buffer");
        assert!(stats.buffer_hits() >= t.height() as u64);
    }

    #[test]
    fn bulk_load_round_trips_and_is_valid() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 4097] {
            let entries = (0..n as u32).map(|k| (k, k * 2));
            let t: BPlusTree<u32, u32> =
                BPlusTree::bulk_load(entries, 16, 8, IoStats::new_handle()).unwrap();
            assert_eq!(t.len(), n, "n={n}");
            t.check_invariants().unwrap();
            if n > 0 {
                assert_eq!(t.get(&0), Some(0));
                assert_eq!(t.get(&(n as u32 - 1)), Some((n as u32 - 1) * 2));
            }
            let mut scanned = 0;
            t.scan_all(|_, _| scanned += 1);
            assert_eq!(scanned, n);
        }
    }

    #[test]
    fn bulk_load_with_tiny_capacities() {
        for (leaf, inner) in [(2, 3), (3, 3), (4, 5), (5, 4)] {
            for n in 0usize..60 {
                let mut t: BPlusTree<u32, ()> =
                    BPlusTree::with_capacities(leaf, inner, IoStats::new_handle());
                t.fill((0..n as u32).map(|k| (k, ()))).unwrap();
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("leaf={leaf} inner={inner} n={n}: {e}"));
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_supports_updates() {
        let mut t: BPlusTree<u32, u32> = BPlusTree::with_capacities(4, 4, IoStats::new_handle());
        t.fill((0..100).map(|k| (k * 2, k))).unwrap();
        // Insert odds, remove some evens.
        for k in 0..100u32 {
            t.insert(k * 2 + 1, k).unwrap();
        }
        for k in (0..100u32).step_by(3) {
            t.remove(&(k * 2));
        }
        t.check_invariants().unwrap();
        assert!(matches!(t.insert(3, 9), Err(PageSimError::DuplicateKey(_))));
    }

    #[test]
    fn bulk_load_rejects_disorder() {
        let r: Result<BPlusTree<u32, ()>> =
            BPlusTree::bulk_load([(2, ()), (1, ())], 16, 8, IoStats::new_handle());
        assert!(matches!(r, Err(PageSimError::CorruptStructure(_))));
        let r: Result<BPlusTree<u32, ()>> =
            BPlusTree::bulk_load([(1, ()), (1, ())], 16, 8, IoStats::new_handle());
        assert!(r.is_err(), "duplicates rejected");
    }

    #[test]
    fn bulk_load_charges_one_write_per_node() {
        let stats = IoStats::new_handle();
        let t: BPlusTree<u32, u32> =
            BPlusTree::bulk_load((0..10_000u32).map(|k| (k, k)), 16, 8, Rc::clone(&stats)).unwrap();
        assert_eq!(stats.writes(), t.page_count());
        assert_eq!(stats.reads(), 0);
        // Far cheaper than item-at-a-time insertion.
        let stats2 = IoStats::new_handle();
        let mut t2: BPlusTree<u32, u32> = BPlusTree::new(16, 8, Rc::clone(&stats2));
        for k in 0..10_000u32 {
            t2.insert(k, k).unwrap();
        }
        assert!(stats.accesses() * 3 < stats2.accesses());
    }

    #[test]
    fn chunk_plan_respects_bounds() {
        for total in 0..200usize {
            for (target, min, cap) in [(9, 5, 10), (2, 1, 2), (4, 3, 5), (304, 169, 338)] {
                let plan = super::chunk_plan(total, target, min, cap);
                assert_eq!(plan.iter().sum::<usize>(), total);
                if plan.len() > 1 {
                    assert!(
                        plan.iter().all(|&s| s >= min && s <= cap),
                        "total={total} target={target} min={min} cap={cap}: {plan:?}"
                    );
                } else if let Some(&only) = plan.first() {
                    assert!(only <= cap);
                }
            }
        }
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut t = tiny_tree();
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        let peak = t.nodes.len();
        for k in 0..100u32 {
            t.remove(&k);
        }
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        assert!(t.nodes.len() <= peak + 1, "slab reuses freed pages");
        t.check_invariants().unwrap();
    }
}
