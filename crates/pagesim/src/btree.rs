//! A page-granular B+ tree.
//!
//! Section 5.2 of the paper stores every access-support-relation partition
//! in **two redundant B+ trees**, clustered on the first resp. the last
//! attribute.  This module provides that tree: a classic B+ tree whose node
//! capacities derive from the paper's page geometry —
//!
//! * leaf pages hold `⌊PageSize / entry_size⌋` entries (the paper's
//!   `atpp^{i,j}`, formula 14),
//! * inner pages hold `⌊PageSize / (key_size + PPsize)⌋` children (the
//!   paper's `B⁺fan`, Figure 3) —
//!
//! and whose every node visit is charged to the shared [`IoStats`](crate::IoStats) counter
//! (one node = one page).  The tree supports unique-key insertion, point
//! lookup, deletion with borrow/merge rebalancing, and ordered range scans
//! over the linked leaf level.
//!
//! Composite keys (e.g. `(column value, row id)`) are expressed through the
//! ordinary `Ord` bound; prefix scans become half-open ranges.

use std::cell::{Cell, RefCell};
use std::fmt::Debug;
use std::ops::Bound;

use crate::buffer::BufferPool;
use crate::constants::{PAGE_SIZE, PP_SIZE};
use crate::error::{PageSimError, Result};
use crate::stats::StatsHandle;

const NO_NODE: usize = usize::MAX;

/// Plan chunk sizes for bulk loading: greedy chunks of `target`, with the
/// tail adjusted so every chunk (except a lone root chunk) holds at least
/// `min` and at most `capacity` items.
fn chunk_plan(total: usize, target: usize, min: usize, capacity: usize) -> Vec<usize> {
    debug_assert!(min <= target && target <= capacity);
    let mut sizes = Vec::new();
    let mut remaining = total;
    loop {
        if remaining == 0 {
            break;
        }
        if remaining <= capacity {
            // Final chunk; a single root chunk may be arbitrarily small.
            sizes.push(remaining);
            break;
        }
        if remaining >= target + min {
            sizes.push(target);
            remaining -= target;
        } else {
            // capacity < remaining < target + min: split the tail evenly —
            // both halves satisfy min because remaining > capacity >= 2·min.
            let a = remaining.div_ceil(2);
            sizes.push(a);
            sizes.push(remaining - a);
            break;
        }
    }
    sizes
}

/// Outcome of one batched probe run ([`BPlusTree::scan_ranges_sorted`] /
/// [`BPlusTree::get_many`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Probes (keys or ranges) answered by the batch.
    pub probes: u64,
    /// Pages the batch actually charged.
    pub pages_read: u64,
    /// Pages the equivalent per-probe calls would have charged.
    pub naive_pages: u64,
}

impl BatchReport {
    /// Page reads avoided by batching (`naive_pages − pages_read`).
    pub fn pages_saved(&self) -> u64 {
        self.naive_pages.saturating_sub(self.pages_read)
    }

    /// Fold another batch's tallies into this one.
    pub fn absorb(&mut self, other: BatchReport) {
        self.probes += other.probes;
        self.pages_read += other.pages_read;
        self.naive_pages += other.naive_pages;
    }
}

/// Shared descent state of one batched probe run: the pinned root-to-leaf
/// path and the set of pages already charged this batch.
struct BatchState<K> {
    /// Inner nodes of the current descent path, root first, each with the
    /// exclusive upper separator bound of its subtree (`None` =
    /// unbounded).  The bound decides how far the next, larger probe key
    /// must pop before re-descending.
    path: Vec<(usize, Option<K>)>,
    /// Pages charged so far this batch (`charged[node id]`).
    charged: Vec<bool>,
    pages_read: u64,
}

/// One page of a [`TreeImage`]: the physical content of a single slab
/// slot, with sibling links expressed as `Option` instead of the private
/// `NO_NODE` sentinel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeImage<K, V> {
    /// An inner page: `keys.len() + 1` child page ids.
    Inner {
        /// Separator keys.
        keys: Vec<K>,
        /// Child slab slots, one more than `keys`.
        children: Vec<usize>,
    },
    /// A leaf page with its right-sibling link.
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<(K, V)>,
        /// Slab slot of the right sibling leaf, if any.
        next: Option<usize>,
    },
    /// A free slab slot (must appear on the image's free list).
    Free,
}

/// A page-faithful physical image of a B+ tree: the complete slab layout
/// (including free slots), free list and geometry.  Produced by
/// [`BPlusTree::dump_image`] and re-installed by
/// [`BPlusTree::adopt_image`]; `dump ∘ adopt` is the identity, so a tree
/// restored from its image is physically indistinguishable from the
/// original — same pages, same sibling links, same future slot reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeImage<K, V> {
    /// Slab slot of the root page.
    pub root: usize,
    /// Tree height in levels, including the leaf level.
    pub height: usize,
    /// Number of stored entries.
    pub len: usize,
    /// Free slab slots in pop order (the last element is reused first).
    pub free: Vec<usize>,
    /// Every slab slot, free ones included.
    pub nodes: Vec<NodeImage<K, V>>,
}

impl<K, V> TreeImage<K, V> {
    /// Number of live (non-free) pages.
    pub fn live_pages(&self) -> usize {
        self.nodes.len() - self.free.len()
    }
}

/// A copy-on-write delta image: the pages of a tree written at or after a
/// dirty-epoch fence, plus the full (cheap) geometry needed to patch a
/// base [`TreeImage`] into the current physical state.  Produced by
/// [`BPlusTree::dump_image_since`]; applying `pages` over a base image of
/// the fence epoch — after growing its slab to `total_nodes` slots — and
/// installing `root`/`height`/`len`/`free` reproduces
/// [`BPlusTree::dump_image`] exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDelta<K, V> {
    /// Slab slot of the root page.
    pub root: usize,
    /// Tree height in levels, including the leaf level.
    pub height: usize,
    /// Number of stored entries.
    pub len: usize,
    /// Free slab slots in pop order (complete list, not a delta).
    pub free: Vec<usize>,
    /// Total slab slots the tree currently occupies (the slab never
    /// shrinks, so this is ≥ the base image's slot count).
    pub total_nodes: usize,
    /// `(slot, page content)` for every page stamped at or after the
    /// fence, ascending by slot.  Includes pages that became [`NodeImage::Free`]
    /// since the fence.
    pub pages: Vec<(usize, NodeImage<K, V>)>,
}

impl<K, V> TreeDelta<K, V> {
    /// Pages carried by the delta.
    pub fn changed_pages(&self) -> usize {
        self.pages.len()
    }
}

/// A node slab produced by [`build_bulk`]: the pure, stats-free output of
/// a bottom-up bulk load.  Because it holds no
/// [`StatsHandle`](crate::stats::StatsHandle), it can be built on a worker
/// thread (for `Send` keys and values) while a sibling tree builds
/// concurrently — e.g. the two redundant clustering trees of an
/// access-support-relation partition — and then adopted on the owning
/// thread via [`BPlusTree::adopt_bulk`], which charges the page writes.
#[derive(Debug)]
pub struct BulkNodes<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    height: usize,
    len: usize,
    leaf_capacity: usize,
    inner_capacity: usize,
}

impl<K, V> BulkNodes<K, V> {
    /// Number of entries in the built slab.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages (nodes) occupied by the slab.
    pub fn page_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Build a B+ tree node slab bottom-up from **strictly ascending**
/// `(key, value)` pairs without charging any page accesses (see
/// [`BulkNodes`]).  Leaves are packed to ~90% occupancy with the tail
/// adjusted to respect minimum fill — the same plan as [`BPlusTree::fill`],
/// which is a thin wrapper over this function.
pub fn build_bulk<K: Ord + Clone + Debug, V: Clone>(
    entries: Vec<(K, V)>,
    leaf_capacity: usize,
    inner_capacity: usize,
) -> Result<BulkNodes<K, V>> {
    assert!(leaf_capacity >= 2, "leaf capacity must be >= 2");
    assert!(inner_capacity >= 3, "inner capacity must be >= 3");
    for pair in entries.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(PageSimError::CorruptStructure(
                "bulk_load keys must be strictly ascending".into(),
            ));
        }
    }
    let count = entries.len();
    let mut nodes: Vec<Node<K, V>> = Vec::new();
    if count == 0 {
        nodes.push(Node::Leaf {
            entries: Vec::new(),
            next: NO_NODE,
        });
        return Ok(BulkNodes {
            nodes,
            root: 0,
            height: 1,
            len: 0,
            leaf_capacity,
            inner_capacity,
        });
    }
    let target = ((leaf_capacity * 9) / 10).max(2);
    let plan = chunk_plan(count, target, leaf_capacity / 2, leaf_capacity);
    // `level` carries (node id, min key of its subtree) so separator keys
    // are known without re-walking the slab.
    let mut level: Vec<(usize, K)> = Vec::with_capacity(plan.len());
    let mut iter = entries.into_iter();
    for size in plan {
        let chunk: Vec<(K, V)> = iter.by_ref().take(size).collect();
        let min = chunk[0].0.clone();
        let id = nodes.len();
        nodes.push(Node::Leaf {
            entries: chunk,
            next: NO_NODE,
        });
        if let Some(&(prev, _)) = level.last() {
            let Node::Leaf { next, .. } = &mut nodes[prev] else {
                unreachable!()
            };
            *next = id;
        }
        level.push((id, min));
    }
    let inner_target = ((inner_capacity * 9) / 10).max(2);
    let min_children = inner_capacity.div_ceil(2);
    let mut height = 1usize;
    while level.len() > 1 {
        let plan = chunk_plan(level.len(), inner_target, min_children, inner_capacity);
        let mut parents: Vec<(usize, K)> = Vec::with_capacity(plan.len());
        let mut iter = level.into_iter();
        for size in plan {
            let group: Vec<(usize, K)> = iter.by_ref().take(size).collect();
            let min = group[0].1.clone();
            let keys: Vec<K> = group[1..].iter().map(|(_, k)| k.clone()).collect();
            let children: Vec<usize> = group.iter().map(|(id, _)| *id).collect();
            let id = nodes.len();
            nodes.push(Node::Inner { keys, children });
            parents.push((id, min));
        }
        level = parents;
        height += 1;
    }
    let root = level[0].0;
    Ok(BulkNodes {
        nodes,
        root,
        height,
        len: count,
        leaf_capacity,
        inner_capacity,
    })
}

#[derive(Debug, Clone)]
enum Node<K, V> {
    Inner {
        /// Separator keys; `keys.len() + 1 == children.len()`.
        /// `children[i]` holds keys `< keys[i]`; `children[i+1]` keys `>= keys[i]`.
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<(K, V)>,
        next: usize,
    },
    /// Slab tombstone available for reuse.
    Free,
}

/// A B+ tree with page-access accounting.
///
/// Keys must be unique; composite keys give multi-map behaviour.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    root: usize,
    /// Levels including the leaf level (empty tree = single empty leaf,
    /// height 1).
    height: usize,
    leaf_capacity: usize,
    inner_capacity: usize,
    len: usize,
    stats: StatsHandle,
    buffer: RefCell<BufferPool>,
    /// Current dirty epoch; every page modification stamps the page with
    /// this value.  Interior-mutable because write charging happens behind
    /// `&self` (see [`BPlusTree::charge_write`]).
    epoch: Cell<u64>,
    /// Per-slot epoch stamps, parallel to `nodes` (`epochs[slot]` = epoch
    /// of the slot's last modification).
    epochs: RefCell<Vec<u64>>,
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// Create a tree whose leaf entries occupy `entry_size` bytes and whose
    /// inner-node keys occupy `key_size` bytes.
    ///
    /// Capacities are floored at 2 entries / 3 children so degenerate sizes
    /// (entries larger than half a page) still yield a working tree.
    pub fn new(entry_size: usize, key_size: usize, stats: StatsHandle) -> Self {
        let leaf_capacity = (PAGE_SIZE / entry_size.max(1)).max(2);
        let inner_capacity = (PAGE_SIZE / (key_size.max(1) + PP_SIZE)).max(3);
        Self::with_capacities(leaf_capacity, inner_capacity, stats)
    }

    /// Create a tree with explicit node capacities (used by tests to force
    /// deep trees with few keys).
    pub fn with_capacities(
        leaf_capacity: usize,
        inner_capacity: usize,
        stats: StatsHandle,
    ) -> Self {
        assert!(leaf_capacity >= 2, "leaf capacity must be >= 2");
        assert!(inner_capacity >= 3, "inner capacity must be >= 3");
        let root_leaf = Node::Leaf {
            entries: Vec::new(),
            next: NO_NODE,
        };
        BPlusTree {
            nodes: vec![root_leaf],
            free: Vec::new(),
            root: 0,
            height: 1,
            leaf_capacity,
            inner_capacity,
            len: 0,
            stats,
            buffer: RefCell::new(BufferPool::unbuffered()),
            epoch: Cell::new(0),
            epochs: RefCell::new(vec![0]),
        }
    }

    /// Replace the (default pass-through) buffer pool. The tree's
    /// structure tag (if any) carries over to the new pool.
    pub fn set_buffer(&mut self, mut pool: BufferPool) {
        pool.set_structure(self.buffer.borrow().structure());
        self.buffer = RefCell::new(pool);
    }

    /// Register this tree under `label` in the stats registry so its page
    /// traffic is attributable (see [`IoStats::register_structure`]).
    ///
    /// [`IoStats::register_structure`]: crate::stats::IoStats::register_structure
    pub fn tag(&mut self, label: impl Into<String>) -> crate::stats::StructureId {
        let sid = self
            .stats
            .register_structure(crate::stats::StructureKind::BTree, label);
        self.buffer.borrow_mut().set_structure(sid);
        sid
    }

    /// The structure id this tree's charges are attributed to
    /// ([`StructureId::UNTRACKED`] before [`BPlusTree::tag`]).
    ///
    /// [`StructureId::UNTRACKED`]: crate::stats::StructureId::UNTRACKED
    pub fn structure_id(&self) -> crate::stats::StructureId {
        self.buffer.borrow().structure()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels, *including* the leaf level.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Height of the non-leaf part — the paper's `ht^{i,j}` (formula 19
    /// counts the tree "not considering the leaves").
    pub fn inner_height(&self) -> usize {
        self.height - 1
    }

    /// Maximum entries per leaf page (the paper's `atpp`).
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Maximum children per inner page (the paper's `B⁺fan`).
    pub fn inner_capacity(&self) -> usize {
        self.inner_capacity
    }

    /// Number of leaf pages (the paper's `ap^{i,j}`).
    pub fn leaf_page_count(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count() as u64
    }

    /// Number of inner pages (the paper's `pg^{i,j}` without leaves).
    pub fn inner_page_count(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Inner { .. }))
            .count() as u64
    }

    /// Total pages occupied by the tree.
    pub fn page_count(&self) -> u64 {
        self.leaf_page_count() + self.inner_page_count()
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Page accounting helpers
    // ------------------------------------------------------------------

    fn charge_read(&self, node: usize) {
        self.buffer.borrow_mut().read(node as u64, &self.stats);
    }

    fn charge_write(&self, node: usize) {
        self.stamp(node);
        self.buffer.borrow_mut().write(node as u64, &self.stats);
    }

    /// Record that `node` was modified in the current dirty epoch.  Buffer
    /// hits may absorb the I/O charge, but the page content still changed,
    /// so stamping is unconditional.
    fn stamp(&self, node: usize) {
        let mut epochs = self.epochs.borrow_mut();
        let e = self.epoch.get();
        if epochs.len() <= node {
            epochs.resize(node + 1, e);
        }
        epochs[node] = e;
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            self.stamp(id);
            id
        } else {
            self.nodes.push(node);
            let id = self.nodes.len() - 1;
            self.stamp(id);
            id
        }
    }

    fn release(&mut self, id: usize) {
        self.nodes[id] = Node::Free;
        self.free.push(id);
        self.stamp(id);
    }

    // ------------------------------------------------------------------
    // Descent
    // ------------------------------------------------------------------

    /// Walk from the root to the leaf responsible for `key`, charging one
    /// read per level and recording `(node, child index)` for each inner
    /// node on the way.
    fn descend(&self, key: &K) -> (usize, Vec<(usize, usize)>) {
        let mut path = Vec::with_capacity(self.height);
        let mut node = self.root;
        loop {
            self.charge_read(node);
            match &self.nodes[node] {
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    path.push((node, idx));
                    node = children[idx];
                }
                Node::Leaf { .. } => return (node, path),
                Node::Free => unreachable!("descended into freed node"),
            }
        }
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Point lookup.  Charges `height` page reads.
    pub fn get(&self, key: &K) -> Option<V> {
        let (leaf, _) = self.descend(key);
        let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
            unreachable!()
        };
        entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| entries[i].1.clone())
    }

    /// Does the tree contain `key`?
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Visit all entries with `lo <= key < hi` (half-open), in key order.
    /// Charges the initial descent plus one read per additional leaf.
    pub fn scan_range(&self, lo: Bound<&K>, hi: Bound<&K>, mut visit: impl FnMut(&K, &V)) {
        let mut leaf;
        let mut start_idx;
        match lo {
            Bound::Included(key) | Bound::Excluded(key) => {
                let (l, _) = self.descend(key);
                leaf = l;
                let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
                    unreachable!()
                };
                start_idx = entries.partition_point(|(k, _)| match lo {
                    Bound::Included(key) => k < key,
                    Bound::Excluded(key) => k <= key,
                    Bound::Unbounded => false,
                });
            }
            Bound::Unbounded => {
                // Walk down the left spine.
                let mut node = self.root;
                loop {
                    self.charge_read(node);
                    match &self.nodes[node] {
                        Node::Inner { children, .. } => node = children[0],
                        Node::Leaf { .. } => break,
                        Node::Free => unreachable!(),
                    }
                }
                leaf = node;
                start_idx = 0;
            }
        }
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                unreachable!()
            };
            for (k, v) in &entries[start_idx..] {
                let in_range = match hi {
                    Bound::Included(h) => k <= h,
                    Bound::Excluded(h) => k < h,
                    Bound::Unbounded => true,
                };
                if !in_range {
                    return;
                }
                visit(k, v);
            }
            if *next == NO_NODE {
                return;
            }
            leaf = *next;
            start_idx = 0;
            self.charge_read(leaf);
        }
    }

    /// Collect a half-open range `[lo, hi)` into a vector.
    pub fn range_collect(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.scan_range(Bound::Included(lo), Bound::Excluded(hi), |k, v| {
            out.push((k.clone(), v.clone()))
        });
        out
    }

    /// Visit every entry in key order (full leaf-level scan).
    pub fn scan_all(&self, visit: impl FnMut(&K, &V)) {
        self.scan_range(Bound::Unbounded, Bound::Unbounded, visit)
    }

    /// The smallest key, if any.  Charges a left-spine descent.
    pub fn first_key(&self) -> Option<K> {
        let mut out = None;
        self.scan_range(Bound::Unbounded, Bound::Unbounded, |k, _| {
            if out.is_none() {
                out = Some(k.clone());
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Batched sorted probes
    // ------------------------------------------------------------------

    fn batch_charge(&self, st: &mut BatchState<K>, node: usize) {
        if !st.charged[node] {
            st.charged[node] = true;
            st.pages_read += 1;
            self.charge_read(node);
        }
    }

    /// Descend to the leaf responsible for `key` (`None` = leftmost
    /// leaf), reusing the surviving prefix of the previous probe's path
    /// and charging only pages not yet touched this batch.
    fn batch_descend(&self, st: &mut BatchState<K>, key: Option<&K>) -> usize {
        match key {
            Some(key) => {
                // Pop frames whose subtree upper bound the key has passed.
                while st
                    .path
                    .last()
                    .is_some_and(|(_, hi)| hi.as_ref().is_some_and(|h| key >= h))
                {
                    st.path.pop();
                }
            }
            None => st.path.clear(),
        }
        let (mut node, mut hi, mut on_path) = match st.path.last() {
            Some((n, h)) => (*n, h.clone(), true),
            None => (self.root, None, false),
        };
        loop {
            self.batch_charge(st, node);
            match &self.nodes[node] {
                Node::Inner { keys, children } => {
                    if !on_path {
                        st.path.push((node, hi.clone()));
                    }
                    on_path = false;
                    let idx = match key {
                        Some(key) => keys.partition_point(|k| k <= key),
                        None => 0,
                    };
                    if idx < keys.len() {
                        hi = Some(keys[idx].clone());
                    }
                    node = children[idx];
                }
                Node::Leaf { .. } => return node,
                Node::Free => unreachable!("descended into freed node"),
            }
        }
    }

    fn fresh_batch(&self) -> BatchState<K> {
        BatchState {
            path: Vec::with_capacity(self.height),
            charged: vec![false; self.nodes.len()],
            pages_read: 0,
        }
    }

    /// Visit, in key order, the entries of each of `ranges` — a batch of
    /// probes whose lower bounds must be **ascending** (`BTreeSet`
    /// iteration order qualifies).  One logical root-to-leaf descent is
    /// performed per run of adjacent probes, leaves are walked via sibling
    /// links, and every internal/leaf page is charged **at most once for
    /// the whole batch** — adjacent probes stop re-reading the same root,
    /// inner, and leaf pages.
    ///
    /// `visit` receives the index of the originating range along with each
    /// entry.  The returned [`BatchReport`] compares the pages actually
    /// charged against what per-range [`BPlusTree::scan_range`] calls
    /// would have cost; the tallies also accumulate on the shared
    /// [`IoStats`](crate::IoStats) batch counters.
    ///
    /// An `Unbounded` lower bound restarts the descent at the leftmost
    /// leaf and is only meaningful as the first range of a batch.
    pub fn scan_ranges_sorted<'q>(
        &self,
        ranges: impl IntoIterator<Item = (Bound<&'q K>, Bound<&'q K>)>,
        mut visit: impl FnMut(usize, &K, &V),
    ) -> BatchReport
    where
        K: 'q,
    {
        let mut st = self.fresh_batch();
        let mut report = BatchReport::default();
        let mut prev_lo: Option<&K> = None;
        for (range_idx, (lo, hi)) in ranges.into_iter().enumerate() {
            report.probes += 1;
            let key = match lo {
                Bound::Included(k) | Bound::Excluded(k) => Some(k),
                Bound::Unbounded => None,
            };
            if let (Some(prev), Some(k)) = (prev_lo, key) {
                debug_assert!(prev <= k, "scan_ranges_sorted: lower bounds must ascend");
            }
            prev_lo = key.or(prev_lo);
            let mut leaf = self.batch_descend(&mut st, key);
            let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
                unreachable!()
            };
            let mut start_idx = entries.partition_point(|(k, _)| match lo {
                Bound::Included(key) => k < key,
                Bound::Excluded(key) => k <= key,
                Bound::Unbounded => false,
            });
            let mut leaves_visited = 1u64;
            'walk: loop {
                let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                    unreachable!()
                };
                for (k, v) in &entries[start_idx..] {
                    let in_range = match hi {
                        Bound::Included(h) => k <= h,
                        Bound::Excluded(h) => k < h,
                        Bound::Unbounded => true,
                    };
                    if !in_range {
                        break 'walk;
                    }
                    visit(range_idx, k, v);
                }
                if *next == NO_NODE {
                    break;
                }
                leaf = *next;
                start_idx = 0;
                self.batch_charge(&mut st, leaf);
                leaves_visited += 1;
            }
            // A standalone scan of this range descends the full height and
            // then charges each additional leaf it walks.
            report.naive_pages += self.height as u64 + (leaves_visited - 1);
        }
        report.pages_read = st.pages_read;
        self.stats.count_batch(report.probes, report.pages_saved());
        report
    }

    /// Batched point lookups over **ascending** `keys`: one shared
    /// descent path, each page charged at most once per batch.  Returns
    /// the values in input order (`None` for absent keys) plus a report
    /// comparing against per-key [`BPlusTree::get`] descents (`height`
    /// reads each).
    pub fn get_many(&self, keys: &[&K]) -> (Vec<Option<V>>, BatchReport) {
        for pair in keys.windows(2) {
            debug_assert!(pair[0] <= pair[1], "get_many keys must ascend");
        }
        let mut st = self.fresh_batch();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let leaf = self.batch_descend(&mut st, Some(key));
            let Node::Leaf { entries, .. } = &self.nodes[leaf] else {
                unreachable!()
            };
            out.push(
                entries
                    .binary_search_by(|(k, _)| k.cmp(key))
                    .ok()
                    .map(|i| entries[i].1.clone()),
            );
        }
        let report = BatchReport {
            probes: keys.len() as u64,
            pages_read: st.pages_read,
            naive_pages: keys.len() as u64 * self.height as u64,
        };
        self.stats.count_batch(report.probes, report.pages_saved());
        (out, report)
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a unique key.  Charges the descent reads plus one write per
    /// modified node (leaf, split siblings, updated ancestors).
    pub fn insert(&mut self, key: K, value: V) -> Result<()> {
        let (leaf, path) = self.descend(&key);
        {
            let Node::Leaf { entries, .. } = &mut self.nodes[leaf] else {
                unreachable!()
            };
            match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(_) => return Err(PageSimError::DuplicateKey(format!("{key:?}"))),
                Err(pos) => entries.insert(pos, (key, value)),
            }
        }
        self.len += 1;
        self.charge_write(leaf);

        // Split propagation.
        let mut child = leaf;
        let mut path = path;
        loop {
            let (split_key, new_node) = match self.split_if_overfull(child) {
                Some(split) => split,
                None => break,
            };
            match path.pop() {
                Some((parent, child_idx)) => {
                    let Node::Inner { keys, children } = &mut self.nodes[parent] else {
                        unreachable!()
                    };
                    keys.insert(child_idx, split_key);
                    children.insert(child_idx + 1, new_node);
                    self.charge_write(parent);
                    child = parent;
                }
                None => {
                    // Root split: grow the tree by one level.
                    let old_root = self.root;
                    let new_root = self.alloc(Node::Inner {
                        keys: vec![split_key],
                        children: vec![old_root, new_node],
                    });
                    self.root = new_root;
                    self.height += 1;
                    self.charge_write(new_root);
                    break;
                }
            }
        }
        Ok(())
    }

    /// If `node` exceeds its capacity, split it and return the separator
    /// key plus the new right sibling.
    fn split_if_overfull(&mut self, node: usize) -> Option<(K, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf { entries, next } => {
                if entries.len() <= self.leaf_capacity {
                    return None;
                }
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let right_next = *next;
                let separator = right_entries[0].0.clone();
                let right = self.alloc(Node::Leaf {
                    entries: right_entries,
                    next: right_next,
                });
                let Node::Leaf { next, .. } = &mut self.nodes[node] else {
                    unreachable!()
                };
                *next = right;
                self.charge_write(node);
                self.charge_write(right);
                Some((separator, right))
            }
            Node::Inner { keys, children } => {
                if children.len() <= self.inner_capacity {
                    return None;
                }
                let mid = keys.len() / 2;
                // keys[mid] moves up; right gets keys[mid+1..] and
                // children[mid+1..].
                let right_keys = keys.split_off(mid + 1);
                let separator = keys.pop().expect("mid key exists");
                let right_children = children.split_off(mid + 1);
                let right = self.alloc(Node::Inner {
                    keys: right_keys,
                    children: right_children,
                });
                self.charge_write(node);
                self.charge_write(right);
                Some((separator, right))
            }
            Node::Free => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Build a tree bottom-up from **strictly ascending** `(key, value)`
    /// pairs — the classic bulk-load used when an access relation is
    /// (re)built from a computed extension.  Charges one page write per
    /// created node, which is far cheaper than the read-modify-write
    /// churn of repeated [`BPlusTree::insert`]s.
    ///
    /// Returns an error if the keys are not strictly ascending.
    pub fn bulk_load(
        entries: impl IntoIterator<Item = (K, V)>,
        entry_size: usize,
        key_size: usize,
        stats: StatsHandle,
    ) -> Result<Self> {
        let mut tree = Self::new(entry_size, key_size, stats);
        tree.fill(entries)?;
        Ok(tree)
    }

    /// Bulk-load into an (empty) tree with already-configured capacities.
    pub fn fill(&mut self, entries: impl IntoIterator<Item = (K, V)>) -> Result<()> {
        assert!(self.is_empty(), "fill() requires an empty tree");
        let built = build_bulk(
            entries.into_iter().collect(),
            self.leaf_capacity,
            self.inner_capacity,
        )?;
        self.adopt_bulk(built)
    }

    /// Adopt a slab built by [`build_bulk`] into this empty tree, charging
    /// one page write per node — the same accounting as
    /// [`BPlusTree::fill`].  The slab must have been built with this
    /// tree's capacities.
    pub fn adopt_bulk(&mut self, built: BulkNodes<K, V>) -> Result<()> {
        assert!(self.is_empty(), "adopt_bulk() requires an empty tree");
        if built.leaf_capacity != self.leaf_capacity || built.inner_capacity != self.inner_capacity
        {
            return Err(PageSimError::CorruptStructure(
                "bulk-built slab capacities do not match the adopting tree".into(),
            ));
        }
        if built.len == 0 {
            return Ok(()); // stays the empty root leaf
        }
        self.buffer.borrow_mut().invalidate();
        self.nodes = built.nodes;
        self.free.clear();
        self.root = built.root;
        self.height = built.height;
        self.len = built.len;
        self.epochs.borrow_mut().clear();
        for node in 0..self.nodes.len() {
            self.charge_write(node);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Physical images (checkpoint dump / restore)
    // ------------------------------------------------------------------

    /// Capture the tree's complete physical state — slab layout, free
    /// list, geometry — as a [`TreeImage`].  Charges nothing: dumping is
    /// the serializer's concern; the writer layer prices the snapshot
    /// bytes it emits.
    pub fn dump_image(&self) -> TreeImage<K, V> {
        TreeImage {
            root: self.root,
            height: self.height,
            len: self.len,
            free: self.free.clone(),
            nodes: self
                .nodes
                .iter()
                .map(|n| match n {
                    Node::Inner { keys, children } => NodeImage::Inner {
                        keys: keys.clone(),
                        children: children.clone(),
                    },
                    Node::Leaf { entries, next } => NodeImage::Leaf {
                        entries: entries.clone(),
                        next: (*next != NO_NODE).then_some(*next),
                    },
                    Node::Free => NodeImage::Free,
                })
                .collect(),
        }
    }

    /// The current dirty epoch.  Pages modified from now on are stamped
    /// with this value (until [`BPlusTree::advance_epoch`] bumps it).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Start a new dirty epoch and return it.  The typical checkpoint
    /// protocol: serialize [`BPlusTree::dump_image_since`]`(fence)`, then
    /// record `advance_epoch()` as the fence of the *next* checkpoint —
    /// pages written afterwards carry the new epoch and fall inside it.
    pub fn advance_epoch(&self) -> u64 {
        let next = self.epoch.get() + 1;
        self.epoch.set(next);
        next
    }

    /// Epoch of `slot`'s last modification.  Slots the stamp vector has
    /// not caught up with (freshly grown slab) count as modified in the
    /// current epoch.
    pub fn page_epoch(&self, slot: usize) -> u64 {
        self.epochs
            .borrow()
            .get(slot)
            .copied()
            .unwrap_or_else(|| self.epoch.get())
    }

    /// Capture only the pages stamped at or after `fence`, plus the full
    /// geometry — the copy-on-write counterpart of
    /// [`BPlusTree::dump_image`].  Charges nothing, like `dump_image`:
    /// the writer layer prices the (delta) bytes it emits.
    pub fn dump_image_since(&self, fence: u64) -> TreeDelta<K, V> {
        let pages = (0..self.nodes.len())
            .filter(|&id| self.page_epoch(id) >= fence)
            .map(|id| {
                let img = match &self.nodes[id] {
                    Node::Inner { keys, children } => NodeImage::Inner {
                        keys: keys.clone(),
                        children: children.clone(),
                    },
                    Node::Leaf { entries, next } => NodeImage::Leaf {
                        entries: entries.clone(),
                        next: (*next != NO_NODE).then_some(*next),
                    },
                    Node::Free => NodeImage::Free,
                };
                (id, img)
            })
            .collect();
        TreeDelta {
            root: self.root,
            height: self.height,
            len: self.len,
            free: self.free.clone(),
            total_nodes: self.nodes.len(),
            pages,
        }
    }

    /// Adopt a physical image into this empty tree.  Adoption itself
    /// charges nothing: the image's bytes came off whatever medium the
    /// caller read them from, and that read is the caller's to price —
    /// typically via [`BPlusTree::charge_restore_reads`] so the cost
    /// attributes to this tree's structure id (tag first).
    ///
    /// The image is validated with bounded, panic-proof checks before
    /// anything is installed: out-of-range page references, reference
    /// cycles, free-list inconsistencies, depth or capacity violations
    /// and broken leaf chains all yield a descriptive
    /// [`PageSimError::CorruptStructure`].  Semantic invariants (key
    /// order, separator bounds, fill factors) are then verified via
    /// [`BPlusTree::check_invariants`]; on failure the tree is rolled
    /// back to pristine empty state — nothing charged — so the caller
    /// can fall back to a rebuild.
    pub fn adopt_image(&mut self, image: TreeImage<K, V>) -> Result<()> {
        assert!(self.is_empty(), "adopt_image() requires an empty tree");
        self.validate_image(&image)?;
        let TreeImage {
            root,
            height,
            len,
            free,
            nodes,
        } = image;
        self.buffer.borrow_mut().invalidate();
        self.nodes = nodes
            .into_iter()
            .map(|n| match n {
                NodeImage::Inner { keys, children } => Node::Inner { keys, children },
                NodeImage::Leaf { entries, next } => Node::Leaf {
                    entries,
                    next: next.unwrap_or(NO_NODE),
                },
                NodeImage::Free => Node::Free,
            })
            .collect();
        self.free = free;
        self.root = root;
        self.height = height;
        self.len = len;
        // Adoption rewrites the whole slab: every slot is dirty relative
        // to any pre-adoption fence.
        *self.epochs.borrow_mut() = vec![self.epoch.get(); self.nodes.len()];
        if let Err(e) = self.check_invariants() {
            self.reset_to_empty();
            return Err(e);
        }
        Ok(())
    }

    /// Charge `pages` reads attributed to this tree's structure id —
    /// how a snapshot loader prices pulling this tree's serialized image
    /// in from the snapshot medium after [`BPlusTree::adopt_image`].
    /// Bypasses the buffer pool: these are reads of the snapshot file,
    /// not of the tree's own resident pages.
    pub fn charge_restore_reads(&self, pages: u64) {
        let sid = self.structure_id();
        for _ in 0..pages {
            self.stats.count_read_for(sid);
        }
    }

    /// Roll back to the pristine empty state (single empty root leaf),
    /// keeping stats handle, capacities and structure tag.
    fn reset_to_empty(&mut self) {
        self.nodes = vec![Node::Leaf {
            entries: Vec::new(),
            next: NO_NODE,
        }];
        self.free.clear();
        self.root = 0;
        self.height = 1;
        self.len = 0;
        *self.epochs.borrow_mut() = vec![self.epoch.get()];
        self.buffer.borrow_mut().invalidate();
    }

    /// Structural safety checks on an untrusted image.  Every walk here is
    /// bounded by the slab size, so adversarial images (cycles, shared
    /// pages, runaway chains) terminate with an error instead of looping
    /// or overflowing the stack.
    fn validate_image(&self, image: &TreeImage<K, V>) -> Result<()> {
        let corrupt =
            |msg: String| Err(PageSimError::CorruptStructure(format!("tree image: {msg}")));
        let n = image.nodes.len();
        if n == 0 {
            return corrupt("no pages".into());
        }
        if image.root >= n {
            return corrupt(format!("root {} out of bounds ({n} pages)", image.root));
        }
        if image.height == 0 {
            return corrupt("height 0".into());
        }
        // The free list and the slab must agree on which slots are free.
        let mut is_free = vec![false; n];
        for &f in &image.free {
            if f >= n {
                return corrupt(format!("free slot {f} out of bounds"));
            }
            if is_free[f] {
                return corrupt(format!("free slot {f} listed twice"));
            }
            is_free[f] = true;
        }
        for (id, node) in image.nodes.iter().enumerate() {
            if is_free[id] != matches!(node, NodeImage::Free) {
                return corrupt(format!("slot {id}: free list and page kind disagree"));
            }
        }
        // Bounded BFS from the root: every live page reachable exactly
        // once, children in bounds, uniform leaf depth, page capacities
        // respected, inner fan-out >= 2 (bounds the height of the later
        // recursive invariant check).
        let live = n - image.free.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((image.root, 1usize));
        seen[image.root] = true;
        let mut visited = 0usize;
        let mut entry_count = 0usize;
        let mut leaves = 0usize;
        while let Some((id, depth)) = queue.pop_front() {
            visited += 1;
            match &image.nodes[id] {
                NodeImage::Free => return corrupt(format!("page {id} reachable but free")),
                NodeImage::Inner { keys, children } => {
                    if depth >= image.height {
                        return corrupt(format!("inner page {id} at or below leaf depth"));
                    }
                    if children.len() < 2 {
                        return corrupt(format!("inner page {id} has {} children", children.len()));
                    }
                    if children.len() != keys.len() + 1 {
                        return corrupt(format!(
                            "inner page {id}: {} keys for {} children",
                            keys.len(),
                            children.len()
                        ));
                    }
                    if children.len() > self.inner_capacity {
                        return corrupt(format!("inner page {id} exceeds fan-out"));
                    }
                    for &c in children {
                        if c >= n {
                            return corrupt(format!("child {c} of page {id} out of bounds"));
                        }
                        if seen[c] {
                            return corrupt(format!("page {c} referenced twice"));
                        }
                        seen[c] = true;
                        queue.push_back((c, depth + 1));
                    }
                }
                NodeImage::Leaf { entries, next } => {
                    if depth != image.height {
                        return corrupt(format!("leaf page {id} at depth {depth}"));
                    }
                    if entries.len() > self.leaf_capacity {
                        return corrupt(format!("leaf page {id} overfull"));
                    }
                    entry_count += entries.len();
                    leaves += 1;
                    if let Some(nx) = next {
                        if *nx >= n {
                            return corrupt(format!("leaf {id} sibling link out of bounds"));
                        }
                    }
                }
            }
        }
        if visited != live {
            return corrupt(format!("{live} live pages but {visited} reachable"));
        }
        if entry_count != image.len {
            return corrupt(format!(
                "len field {} != {entry_count} stored entries",
                image.len
            ));
        }
        // The sibling chain must walk every leaf exactly once, then end.
        let mut node = image.root;
        for _ in 0..image.height {
            match &image.nodes[node] {
                NodeImage::Inner { children, .. } => node = children[0],
                NodeImage::Leaf { .. } => break,
                NodeImage::Free => unreachable!("reachability validated above"),
            }
        }
        let mut on_chain = vec![false; n];
        let mut walked = 0usize;
        let mut cur = Some(node);
        while let Some(id) = cur {
            match &image.nodes[id] {
                NodeImage::Leaf { next, .. } => {
                    if on_chain[id] {
                        return corrupt("leaf sibling chain cycles".into());
                    }
                    on_chain[id] = true;
                    walked += 1;
                    cur = *next;
                }
                _ => return corrupt("leaf sibling chain hits a non-leaf page".into()),
            }
        }
        if walked != leaves {
            return corrupt(format!("sibling chain covers {walked} of {leaves} leaves"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Remove `key`, returning its value if present.  Rebalances by
    /// borrowing from or merging with siblings.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (leaf, path) = self.descend(key);
        let removed = {
            let Node::Leaf { entries, .. } = &mut self.nodes[leaf] else {
                unreachable!()
            };
            match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(pos) => entries.remove(pos).1,
                Err(_) => return None,
            }
        };
        self.len -= 1;
        self.charge_write(leaf);
        self.rebalance_upwards(leaf, path);
        Some(removed)
    }

    fn min_leaf(&self) -> usize {
        self.leaf_capacity / 2
    }

    fn min_children(&self) -> usize {
        self.inner_capacity.div_ceil(2)
    }

    fn node_is_deficient(&self, node: usize) -> bool {
        match &self.nodes[node] {
            Node::Leaf { entries, .. } => entries.len() < self.min_leaf(),
            Node::Inner { children, .. } => children.len() < self.min_children(),
            Node::Free => unreachable!(),
        }
    }

    fn rebalance_upwards(&mut self, mut node: usize, mut path: Vec<(usize, usize)>) {
        loop {
            if node == self.root {
                self.collapse_root_if_needed();
                return;
            }
            if !self.node_is_deficient(node) {
                return;
            }
            let (parent, child_idx) = path.pop().expect("non-root node has a parent");
            self.fix_deficient_child(parent, child_idx);
            node = parent;
        }
    }

    fn collapse_root_if_needed(&mut self) {
        while let Node::Inner { children, .. } = &self.nodes[self.root] {
            if children.len() > 1 {
                return;
            }
            let only_child = children[0];
            let old_root = self.root;
            self.root = only_child;
            self.height -= 1;
            self.release(old_root);
        }
    }

    /// Repair the deficient `children[child_idx]` of `parent` by borrowing
    /// from a sibling or merging.
    fn fix_deficient_child(&mut self, parent: usize, child_idx: usize) {
        let (left_idx, right_idx) = {
            let Node::Inner { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            let left = child_idx.checked_sub(1).map(|i| children[i]);
            let right = children.get(child_idx + 1).copied();
            (left, right)
        };
        // Prefer borrowing from the sibling with surplus.
        if let Some(left) = left_idx {
            self.charge_read(left);
            if self.has_surplus(left) {
                self.borrow_from_left(parent, child_idx, left);
                return;
            }
        }
        if let Some(right) = right_idx {
            self.charge_read(right);
            if self.has_surplus(right) {
                self.borrow_from_right(parent, child_idx, right);
                return;
            }
        }
        // Merge with a sibling (left preferred).
        if left_idx.is_some() {
            self.merge_children(parent, child_idx - 1);
        } else {
            self.merge_children(parent, child_idx);
        }
    }

    fn has_surplus(&self, node: usize) -> bool {
        match &self.nodes[node] {
            Node::Leaf { entries, .. } => entries.len() > self.min_leaf(),
            Node::Inner { children, .. } => children.len() > self.min_children(),
            Node::Free => unreachable!(),
        }
    }

    fn borrow_from_left(&mut self, parent: usize, child_idx: usize, left: usize) {
        let sep_idx = child_idx - 1;
        let child = {
            let Node::Inner { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            children[child_idx]
        };
        if matches!(self.nodes[child], Node::Leaf { .. }) {
            // Move the left sibling's last entry over; separator becomes
            // the moved key.
            let (k, v) = {
                let Node::Leaf { entries, .. } = &mut self.nodes[left] else {
                    unreachable!()
                };
                entries.pop().expect("surplus sibling is non-empty")
            };
            let new_sep = k.clone();
            let Node::Leaf { entries, .. } = &mut self.nodes[child] else {
                unreachable!()
            };
            entries.insert(0, (k, v));
            let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                unreachable!()
            };
            keys[sep_idx] = new_sep;
        } else {
            // Rotate through the parent separator.
            let (moved_key, moved_child) = {
                let Node::Inner { keys, children } = &mut self.nodes[left] else {
                    unreachable!()
                };
                (
                    keys.pop().expect("surplus"),
                    children.pop().expect("surplus"),
                )
            };
            let old_sep = {
                let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                std::mem::replace(&mut keys[sep_idx], moved_key)
            };
            let Node::Inner { keys, children } = &mut self.nodes[child] else {
                unreachable!()
            };
            keys.insert(0, old_sep);
            children.insert(0, moved_child);
        }
        self.charge_write(left);
        self.charge_write(child);
        self.charge_write(parent);
    }

    fn borrow_from_right(&mut self, parent: usize, child_idx: usize, right: usize) {
        let sep_idx = child_idx;
        let child = {
            let Node::Inner { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            children[child_idx]
        };
        if matches!(self.nodes[child], Node::Leaf { .. }) {
            let (k, v) = {
                let Node::Leaf { entries, .. } = &mut self.nodes[right] else {
                    unreachable!()
                };
                entries.remove(0)
            };
            let new_sep = {
                let Node::Leaf { entries, .. } = &self.nodes[right] else {
                    unreachable!()
                };
                entries[0].0.clone()
            };
            let Node::Leaf { entries, .. } = &mut self.nodes[child] else {
                unreachable!()
            };
            entries.push((k, v));
            let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                unreachable!()
            };
            keys[sep_idx] = new_sep;
        } else {
            let (moved_key, moved_child) = {
                let Node::Inner { keys, children } = &mut self.nodes[right] else {
                    unreachable!()
                };
                (keys.remove(0), children.remove(0))
            };
            let old_sep = {
                let Node::Inner { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!()
                };
                std::mem::replace(&mut keys[sep_idx], moved_key)
            };
            let Node::Inner { keys, children } = &mut self.nodes[child] else {
                unreachable!()
            };
            keys.push(old_sep);
            children.push(moved_child);
        }
        self.charge_write(right);
        self.charge_write(child);
        self.charge_write(parent);
    }

    /// Merge `children[idx+1]` of `parent` into `children[idx]`.
    fn merge_children(&mut self, parent: usize, idx: usize) {
        let (left, right, separator) = {
            let Node::Inner { keys, children } = &mut self.nodes[parent] else {
                unreachable!()
            };
            let left = children[idx];
            let right = children.remove(idx + 1);
            let separator = keys.remove(idx);
            (left, right, separator)
        };
        let right_node = std::mem::replace(&mut self.nodes[right], Node::Free);
        match right_node {
            Node::Leaf { mut entries, next } => {
                let Node::Leaf {
                    entries: left_entries,
                    next: left_next,
                } = &mut self.nodes[left]
                else {
                    unreachable!()
                };
                left_entries.append(&mut entries);
                *left_next = next;
            }
            Node::Inner {
                mut keys,
                mut children,
            } => {
                let Node::Inner {
                    keys: left_keys,
                    children: left_children,
                } = &mut self.nodes[left]
                else {
                    unreachable!()
                };
                left_keys.push(separator);
                left_keys.append(&mut keys);
                left_children.append(&mut children);
            }
            Node::Free => unreachable!(),
        }
        self.free.push(right);
        self.stamp(right);
        self.charge_write(left);
        self.charge_write(parent);
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / debugging)
    // ------------------------------------------------------------------

    /// Verify all structural invariants; returns a descriptive error on the
    /// first violation.  Charges no page accesses.
    pub fn check_invariants(&self) -> Result<()> {
        let mut leaf_depths = Vec::new();
        let mut count = 0usize;
        self.check_node(self.root, 1, None, None, &mut leaf_depths, &mut count)?;
        if let Some(&d) = leaf_depths.first() {
            if leaf_depths.iter().any(|&x| x != d) {
                return Err(PageSimError::CorruptStructure(
                    "leaves at differing depths".into(),
                ));
            }
            if d != self.height {
                return Err(PageSimError::CorruptStructure(format!(
                    "height field {} != actual depth {d}",
                    self.height
                )));
            }
        }
        if count != self.len {
            return Err(PageSimError::CorruptStructure(format!(
                "len field {} != actual entry count {count}",
                self.len
            )));
        }
        // Leaf chain must enumerate all entries in ascending order.
        let mut chained = 0usize;
        let mut prev: Option<K> = None;
        let mut leaf = self.leftmost_leaf();
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                return Err(PageSimError::CorruptStructure(
                    "leaf chain hit non-leaf".into(),
                ));
            };
            for (k, _) in entries {
                if let Some(p) = &prev {
                    if p >= k {
                        return Err(PageSimError::CorruptStructure(
                            "leaf chain out of order".into(),
                        ));
                    }
                }
                prev = Some(k.clone());
                chained += 1;
            }
            if *next == NO_NODE {
                break;
            }
            leaf = *next;
        }
        if chained != self.len {
            return Err(PageSimError::CorruptStructure(format!(
                "leaf chain enumerates {chained} entries, len is {}",
                self.len
            )));
        }
        Ok(())
    }

    fn leftmost_leaf(&self) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Inner { children, .. } => node = children[0],
                Node::Leaf { .. } => return node,
                Node::Free => unreachable!(),
            }
        }
    }

    fn check_node(
        &self,
        node: usize,
        depth: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        leaf_depths: &mut Vec<usize>,
        count: &mut usize,
    ) -> Result<()> {
        let corrupt = |msg: String| Err(PageSimError::CorruptStructure(msg));
        match &self.nodes[node] {
            Node::Free => corrupt(format!("reachable node {node} is free")),
            Node::Leaf { entries, .. } => {
                if node != self.root && entries.len() < self.min_leaf() {
                    return corrupt(format!("leaf {node} underfull: {}", entries.len()));
                }
                if entries.len() > self.leaf_capacity {
                    return corrupt(format!("leaf {node} overfull: {}", entries.len()));
                }
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return corrupt(format!("leaf {node} keys unsorted"));
                    }
                }
                for (k, _) in entries {
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                        return corrupt(format!("leaf {node} key outside separator bounds"));
                    }
                }
                *count += entries.len();
                leaf_depths.push(depth);
                Ok(())
            }
            Node::Inner { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return corrupt(format!("inner {node} arity mismatch"));
                }
                if node != self.root && children.len() < self.min_children() {
                    return corrupt(format!("inner {node} underfull"));
                }
                if children.len() > self.inner_capacity {
                    return corrupt(format!("inner {node} overfull"));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return corrupt(format!("inner {node} keys unsorted"));
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(child, depth + 1, child_lo, child_hi, leaf_depths, count)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use std::rc::Rc;

    fn tiny_tree() -> BPlusTree<u32, u32> {
        // Capacity 4/4 forces frequent splits.
        BPlusTree::with_capacities(4, 4, IoStats::new_handle())
    }

    #[test]
    fn capacities_derive_from_page_geometry() {
        let t: BPlusTree<u64, u64> = BPlusTree::new(16, 8, IoStats::new_handle());
        assert_eq!(t.leaf_capacity(), 4056 / 16);
        assert_eq!(t.inner_capacity(), 338);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = tiny_tree();
        for k in 0..100u32 {
            t.insert(k, k * 10).unwrap();
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 100);
        for k in 0..100u32 {
            assert_eq!(t.get(&k), Some(k * 10));
        }
        assert_eq!(t.get(&100), None);
        assert!(t.height() > 2, "100 entries at capacity 4 must be deep");
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = tiny_tree();
        t.insert(1, 1).unwrap();
        assert!(matches!(t.insert(1, 2), Err(PageSimError::DuplicateKey(_))));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reverse_and_shuffled_insertion_orders() {
        for order in [
            (0..200u32).rev().collect::<Vec<_>>(),
            (0..200u32).map(|i| (i * 73) % 200).collect::<Vec<_>>(),
        ] {
            let mut t = tiny_tree();
            for &k in &order {
                t.insert(k, k).unwrap();
            }
            t.check_invariants().unwrap();
            let mut all = Vec::new();
            t.scan_all(|k, _| all.push(*k));
            assert_eq!(all, (0..200).collect::<Vec<_>>());
        }
    }

    #[test]
    fn range_scans_are_half_open_and_ordered() {
        let mut t = tiny_tree();
        for k in (0..100u32).step_by(2) {
            t.insert(k, k).unwrap();
        }
        let r = t.range_collect(&10, &20);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14, 16, 18]
        );
        // Bounds not present in the tree.
        let r = t.range_collect(&9, &15);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14]
        );
        // Empty range.
        assert!(t.range_collect(&15, &15).is_empty());
        assert_eq!(t.first_key(), Some(0));
    }

    #[test]
    fn removal_with_rebalancing() {
        let mut t = tiny_tree();
        for k in 0..300u32 {
            t.insert(k, k).unwrap();
        }
        // Remove every other key, then everything.
        for k in (0..300).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 150);
        for k in (1..300).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
        }
        t.check_invariants().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree collapses back to a single leaf");
        assert_eq!(t.remove(&5), None);
    }

    #[test]
    fn point_lookup_costs_height_reads() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        let stats = Rc::clone(t.stats());
        stats.reset();
        t.get(&250);
        assert_eq!(stats.reads(), t.height() as u64);
        assert_eq!(stats.writes(), 0);
    }

    #[test]
    fn range_scan_charges_extra_leaves_only() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        let stats = Rc::clone(t.stats());
        stats.reset();
        let r = t.range_collect(&0, &500);
        assert_eq!(r.len(), 500);
        let expected = t.height() as u64 + (t.leaf_page_count() - 1);
        assert_eq!(stats.reads(), expected);
    }

    #[test]
    fn page_counts_track_structure() {
        let mut t = tiny_tree();
        assert_eq!(t.page_count(), 1);
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        assert!(t.leaf_page_count() >= (100 / 4) as u64);
        assert!(t.inner_page_count() >= 1);
        // Pages are reclaimed on mass deletion.
        for k in 0..100u32 {
            t.remove(&k);
        }
        assert_eq!(t.page_count(), 1);
    }

    #[test]
    fn composite_keys_support_prefix_scans() {
        let mut t: BPlusTree<(u64, u64), ()> =
            BPlusTree::with_capacities(4, 4, IoStats::new_handle());
        for a in 0..10u64 {
            for b in 0..5u64 {
                t.insert((a, b), ()).unwrap();
            }
        }
        let r = t.range_collect(&(3, 0), &(4, 0));
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|((a, _), _)| *a == 3));
    }

    #[test]
    fn buffered_tree_amortizes_root_reads() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        t.set_buffer(BufferPool::with_capacity(1024));
        let stats = Rc::clone(t.stats());
        stats.reset();
        t.get(&1);
        let cold = stats.reads();
        t.get(&1);
        assert_eq!(stats.reads(), cold, "warm lookup served from buffer");
        assert!(stats.buffer_hits() >= t.height() as u64);
    }

    #[test]
    fn bulk_load_round_trips_and_is_valid() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 4097] {
            let entries = (0..n as u32).map(|k| (k, k * 2));
            let t: BPlusTree<u32, u32> =
                BPlusTree::bulk_load(entries, 16, 8, IoStats::new_handle()).unwrap();
            assert_eq!(t.len(), n, "n={n}");
            t.check_invariants().unwrap();
            if n > 0 {
                assert_eq!(t.get(&0), Some(0));
                assert_eq!(t.get(&(n as u32 - 1)), Some((n as u32 - 1) * 2));
            }
            let mut scanned = 0;
            t.scan_all(|_, _| scanned += 1);
            assert_eq!(scanned, n);
        }
    }

    #[test]
    fn bulk_load_with_tiny_capacities() {
        for (leaf, inner) in [(2, 3), (3, 3), (4, 5), (5, 4)] {
            for n in 0usize..60 {
                let mut t: BPlusTree<u32, ()> =
                    BPlusTree::with_capacities(leaf, inner, IoStats::new_handle());
                t.fill((0..n as u32).map(|k| (k, ()))).unwrap();
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("leaf={leaf} inner={inner} n={n}: {e}"));
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_supports_updates() {
        let mut t: BPlusTree<u32, u32> = BPlusTree::with_capacities(4, 4, IoStats::new_handle());
        t.fill((0..100).map(|k| (k * 2, k))).unwrap();
        // Insert odds, remove some evens.
        for k in 0..100u32 {
            t.insert(k * 2 + 1, k).unwrap();
        }
        for k in (0..100u32).step_by(3) {
            t.remove(&(k * 2));
        }
        t.check_invariants().unwrap();
        assert!(matches!(t.insert(3, 9), Err(PageSimError::DuplicateKey(_))));
    }

    #[test]
    fn bulk_load_rejects_disorder() {
        let r: Result<BPlusTree<u32, ()>> =
            BPlusTree::bulk_load([(2, ()), (1, ())], 16, 8, IoStats::new_handle());
        assert!(matches!(r, Err(PageSimError::CorruptStructure(_))));
        let r: Result<BPlusTree<u32, ()>> =
            BPlusTree::bulk_load([(1, ()), (1, ())], 16, 8, IoStats::new_handle());
        assert!(r.is_err(), "duplicates rejected");
    }

    #[test]
    fn bulk_load_charges_one_write_per_node() {
        let stats = IoStats::new_handle();
        let t: BPlusTree<u32, u32> =
            BPlusTree::bulk_load((0..10_000u32).map(|k| (k, k)), 16, 8, Rc::clone(&stats)).unwrap();
        assert_eq!(stats.writes(), t.page_count());
        assert_eq!(stats.reads(), 0);
        // Far cheaper than item-at-a-time insertion.
        let stats2 = IoStats::new_handle();
        let mut t2: BPlusTree<u32, u32> = BPlusTree::new(16, 8, Rc::clone(&stats2));
        for k in 0..10_000u32 {
            t2.insert(k, k).unwrap();
        }
        assert!(stats.accesses() * 3 < stats2.accesses());
    }

    #[test]
    fn chunk_plan_respects_bounds() {
        for total in 0..200usize {
            for (target, min, cap) in [(9, 5, 10), (2, 1, 2), (4, 3, 5), (304, 169, 338)] {
                let plan = super::chunk_plan(total, target, min, cap);
                assert_eq!(plan.iter().sum::<usize>(), total);
                if plan.len() > 1 {
                    assert!(
                        plan.iter().all(|&s| s >= min && s <= cap),
                        "total={total} target={target} min={min} cap={cap}: {plan:?}"
                    );
                } else if let Some(&only) = plan.first() {
                    assert!(only <= cap);
                }
            }
        }
    }

    #[test]
    fn batched_range_scan_matches_per_range_scans() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k * 2, k).unwrap();
        }
        let los: Vec<u32> = (0..100).map(|i| i * 10).collect();
        let ranges: Vec<(u32, u32)> = los.iter().map(|&lo| (lo, lo + 6)).collect();

        // Reference: independent per-range scans.
        let mut naive: Vec<Vec<(u32, u32)>> = Vec::new();
        let stats = Rc::clone(t.stats());
        stats.reset();
        for (lo, hi) in &ranges {
            naive.push(t.range_collect(lo, hi));
        }
        let naive_reads = stats.reads();

        stats.reset();
        let mut batched: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ranges.len()];
        let report = t.scan_ranges_sorted(
            ranges
                .iter()
                .map(|(lo, hi)| (Bound::Included(lo), Bound::Excluded(hi))),
            |idx, k, v| batched[idx].push((*k, *v)),
        );
        assert_eq!(batched, naive, "batched results must be bit-identical");
        assert_eq!(report.probes, ranges.len() as u64);
        assert_eq!(report.pages_read, stats.reads());
        assert_eq!(report.naive_pages, naive_reads);
        assert!(
            report.pages_read < naive_reads,
            "adjacent ranges must share pages: {} vs {naive_reads}",
            report.pages_read
        );
        assert_eq!(stats.batch_probes(), ranges.len() as u64);
        assert_eq!(stats.batch_pages_saved(), naive_reads - report.pages_read);
    }

    #[test]
    fn batched_scan_never_charges_a_page_twice() {
        let mut t = tiny_tree();
        for k in 0..300u32 {
            t.insert(k, k).unwrap();
        }
        let stats = Rc::clone(t.stats());
        stats.reset();
        // A batch covering the whole key space leaf-by-leaf.
        let los: Vec<u32> = (0..300).collect();
        let report = t.scan_ranges_sorted(
            los.iter()
                .map(|lo| (Bound::Included(lo), Bound::Included(lo))),
            |_, _, _| {},
        );
        assert!(
            report.pages_read <= t.page_count(),
            "at most one charge per page: {} vs {} pages",
            report.pages_read,
            t.page_count()
        );
    }

    #[test]
    fn get_many_matches_per_key_gets_and_charges_less() {
        let mut t = tiny_tree();
        for k in 0..400u32 {
            t.insert(k * 3, k).unwrap();
        }
        let keys: Vec<u32> = (0..200).map(|i| i * 2).collect();
        let refs: Vec<&u32> = keys.iter().collect();
        let stats = Rc::clone(t.stats());
        stats.reset();
        let (got, report) = t.get_many(&refs);
        let batched_reads = stats.reads();
        stats.reset();
        let naive: Vec<Option<u32>> = keys.iter().map(|k| t.get(k)).collect();
        let naive_reads = stats.reads();
        assert_eq!(got, naive);
        assert_eq!(report.pages_read, batched_reads);
        assert_eq!(report.naive_pages, naive_reads);
        assert!(batched_reads < naive_reads, "shared descents must pay off");
    }

    #[test]
    fn single_probe_batch_costs_no_more_than_a_plain_scan() {
        let mut t = tiny_tree();
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        let stats = Rc::clone(t.stats());
        stats.reset();
        t.scan_range(Bound::Included(&40), Bound::Excluded(&60), |_, _| {});
        let plain = stats.reads();
        stats.reset();
        let report =
            t.scan_ranges_sorted([(Bound::Included(&40), Bound::Excluded(&60))], |_, _, _| {});
        assert_eq!(stats.reads(), plain);
        assert_eq!(report.naive_pages, plain);
        assert_eq!(report.pages_saved(), 0);
    }

    #[test]
    fn batched_scan_with_unbounded_start() {
        let mut t = tiny_tree();
        for k in 0..50u32 {
            t.insert(k, k).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_ranges_sorted(
            [
                (Bound::Unbounded, Bound::Excluded(&3)),
                (Bound::Included(&47), Bound::Unbounded),
            ],
            |idx, k, _| seen.push((idx, *k)),
        );
        assert_eq!(
            seen,
            vec![(0, 0), (0, 1), (0, 2), (1, 47), (1, 48), (1, 49)]
        );
    }

    #[test]
    fn adopted_bulk_build_matches_fill() {
        let entries: Vec<(u32, u32)> = (0..1000).map(|k| (k, k * 7)).collect();
        let stats_a = IoStats::new_handle();
        let mut a: BPlusTree<u32, u32> = BPlusTree::with_capacities(4, 4, Rc::clone(&stats_a));
        a.fill(entries.clone()).unwrap();

        let built = build_bulk(entries, 4, 4).unwrap();
        assert_eq!(built.len(), 1000);
        let stats_b = IoStats::new_handle();
        let mut b: BPlusTree<u32, u32> = BPlusTree::with_capacities(4, 4, Rc::clone(&stats_b));
        b.adopt_bulk(built).unwrap();
        b.check_invariants().unwrap();
        assert_eq!(b.len(), a.len());
        assert_eq!(b.height(), a.height());
        assert_eq!(b.page_count(), a.page_count());
        assert_eq!(stats_b.writes(), stats_a.writes());
        let mut va = Vec::new();
        a.scan_all(|k, v| va.push((*k, *v)));
        let mut vb = Vec::new();
        b.scan_all(|k, v| vb.push((*k, *v)));
        assert_eq!(va, vb);
    }

    #[test]
    fn adopt_bulk_rejects_capacity_mismatch() {
        let built = build_bulk((0..10u32).map(|k| (k, ())).collect(), 4, 4).unwrap();
        let mut t: BPlusTree<u32, ()> = BPlusTree::with_capacities(8, 8, IoStats::new_handle());
        assert!(t.adopt_bulk(built).is_err());
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut t = tiny_tree();
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        let peak = t.nodes.len();
        for k in 0..100u32 {
            t.remove(&k);
        }
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        assert!(t.nodes.len() <= peak + 1, "slab reuses freed pages");
        t.check_invariants().unwrap();
    }

    /// A tree with both history (splits, merges, freed slots) for image
    /// round-trip tests.
    fn weathered_tree() -> BPlusTree<u32, u32> {
        let mut t = tiny_tree();
        for k in 0..300u32 {
            t.insert(k, k * 7).unwrap();
        }
        for k in (0..300).step_by(3) {
            t.remove(&k);
        }
        t
    }

    #[test]
    fn image_round_trip_is_physical_identity() {
        let t = weathered_tree();
        let image = t.dump_image();
        assert!(
            !image.free.is_empty(),
            "weathered tree must have freed slots"
        );

        let stats = IoStats::new_handle();
        let mut r: BPlusTree<u32, u32> = BPlusTree::with_capacities(4, 4, Rc::clone(&stats));
        r.adopt_image(image.clone()).unwrap();

        // Adoption itself is free — the caller prices the medium read.
        assert_eq!(stats.reads(), 0);
        assert_eq!(stats.writes(), 0);
        r.charge_restore_reads(3);
        assert_eq!(stats.reads(), 3, "restore reads charge through the tree");
        assert_eq!(stats.writes(), 0);
        stats.reset();
        // Physical identity: re-dumping yields the same image.
        assert_eq!(r.dump_image(), image);
        // Query identity.
        let mut a = Vec::new();
        let mut b = Vec::new();
        t.scan_all(|k, v| a.push((*k, *v)));
        r.scan_all(|k, v| b.push((*k, *v)));
        assert_eq!(a, b);
        // The restored tree keeps maintaining: future slot reuse matches
        // the original tree's, operation for operation.
        let mut t2 = t;
        let mut r2 = r;
        for k in [1000u32, 1001, 1002] {
            t2.insert(k, k).unwrap();
            r2.insert(k, k).unwrap();
        }
        assert_eq!(t2.dump_image(), r2.dump_image());
    }

    #[test]
    fn empty_tree_image_round_trips() {
        let t = tiny_tree();
        let image = t.dump_image();
        let mut r: BPlusTree<u32, u32> = tiny_tree();
        r.adopt_image(image.clone()).unwrap();
        assert_eq!(r.dump_image(), image);
        assert!(r.is_empty());
    }

    #[test]
    fn corrupt_images_error_without_panicking() {
        let good = weathered_tree().dump_image();
        let adopt = |img: TreeImage<u32, u32>| {
            let mut r: BPlusTree<u32, u32> = tiny_tree();
            let err = r.adopt_image(img).unwrap_err();
            // The tree stays usable as an empty fallback target.
            assert!(r.is_empty());
            r.check_invariants().unwrap();
            match err {
                PageSimError::CorruptStructure(msg) => msg,
                other => panic!("expected CorruptStructure, got {other:?}"),
            }
        };

        // Root out of bounds.
        let mut img = good.clone();
        img.root = img.nodes.len();
        assert!(adopt(img).contains("root"));

        // Child reference cycle (point a child back at the root).
        let mut img = good.clone();
        let root = img.root;
        for node in img.nodes.iter_mut() {
            if let NodeImage::Inner { children, .. } = node {
                children[0] = root;
            }
        }
        adopt(img);

        // Leaf sibling chain cycle.
        let mut img = good.clone();
        let mut first_leaf = None;
        for (id, node) in img.nodes.iter().enumerate() {
            if matches!(node, NodeImage::Leaf { .. }) {
                first_leaf = Some(id);
                break;
            }
        }
        let target = first_leaf.unwrap();
        for node in img.nodes.iter_mut() {
            if let NodeImage::Leaf { next, .. } = node {
                *next = Some(target);
            }
        }
        adopt(img);

        // Free list disagrees with the slab.
        let mut img = good.clone();
        img.free.pop();
        assert!(adopt(img).contains("free"));

        // Wrong entry count.
        let mut img = good.clone();
        img.len += 1;
        assert!(adopt(img).contains("len"));

        // Unsorted keys pass structural checks but fail the semantic
        // invariant pass — tree must roll back cleanly.
        let mut img = good.clone();
        for node in img.nodes.iter_mut() {
            if let NodeImage::Leaf { entries, .. } = node {
                entries.reverse();
            }
        }
        adopt(img);
    }

    #[test]
    fn adopt_image_rejects_overfull_pages() {
        // Five sequential inserts at capacity 4 leave a 3-entry leaf,
        // overfull for a capacity-2 tree.
        let mut t = tiny_tree();
        for k in 0..5u32 {
            t.insert(k, k).unwrap();
        }
        let big = t.dump_image();
        let mut r: BPlusTree<u32, u32> = BPlusTree::with_capacities(2, 3, IoStats::new_handle());
        assert!(matches!(
            r.adopt_image(big),
            Err(PageSimError::CorruptStructure(_))
        ));
    }

    /// Patch `base` with `delta` the way a snapshot reader would: grow the
    /// slab, overwrite changed pages, install geometry.
    fn apply_delta(base: &TreeImage<u32, u32>, delta: &TreeDelta<u32, u32>) -> TreeImage<u32, u32> {
        let mut nodes = base.nodes.clone();
        assert!(delta.total_nodes >= nodes.len(), "slab never shrinks");
        nodes.resize(delta.total_nodes, NodeImage::Free);
        for (id, page) in &delta.pages {
            nodes[*id] = page.clone();
        }
        TreeImage {
            root: delta.root,
            height: delta.height,
            len: delta.len,
            free: delta.free.clone(),
            nodes,
        }
    }

    #[test]
    fn epoch_fence_bounds_delta_pages() {
        let mut t = tiny_tree();
        for k in 0..500u32 {
            t.insert(k, k).unwrap();
        }
        // Before any fence: everything is dirty.
        assert_eq!(
            t.dump_image_since(0).changed_pages() as u64,
            t.page_count() + t.dump_image().free.len() as u64
        );
        let fence = t.advance_epoch();
        assert!(t.dump_image_since(fence).pages.is_empty());
        // One point update touches at most a root-to-leaf path of pages.
        t.remove(&250).unwrap();
        t.insert(250, 999).unwrap();
        let delta = t.dump_image_since(fence);
        assert!(!delta.pages.is_empty());
        assert!(
            delta.changed_pages() <= 2 * t.height(),
            "point update dirtied {} of {} pages",
            delta.changed_pages(),
            t.page_count()
        );
    }

    #[test]
    fn delta_applied_to_base_matches_full_image() {
        let mut t = tiny_tree();
        for k in 0..400u32 {
            t.insert(k, k).unwrap();
        }
        let base = t.dump_image();
        let fence = t.advance_epoch();
        // A mixed workload: inserts (splits grow the slab), removals
        // (merges free pages), and value updates.
        for k in 400..480u32 {
            t.insert(k, k).unwrap();
        }
        for k in (0..200u32).step_by(3) {
            t.remove(&k).unwrap();
        }
        t.remove(&399).unwrap();
        t.insert(399, 1).unwrap();
        let delta = t.dump_image_since(fence);
        assert!(delta.changed_pages() < delta.total_nodes);
        assert_eq!(apply_delta(&base, &delta), t.dump_image());
    }

    #[test]
    fn delta_covers_pages_freed_since_fence() {
        let mut t = tiny_tree();
        for k in 0..300u32 {
            t.insert(k, k).unwrap();
        }
        let base = t.dump_image();
        let fence = t.advance_epoch();
        for k in 0..300u32 {
            t.remove(&k).unwrap();
        }
        let delta = t.dump_image_since(fence);
        assert!(
            delta
                .pages
                .iter()
                .any(|(_, p)| matches!(p, NodeImage::Free)),
            "mass deletion must report freed pages"
        );
        let patched = apply_delta(&base, &delta);
        assert_eq!(patched, t.dump_image());
        // The patched image adopts cleanly into a fresh tree.
        let mut r = tiny_tree();
        r.adopt_image(patched).unwrap();
        r.check_invariants().unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn epochs_reset_on_adoption() {
        let mut t = tiny_tree();
        for k in 0..100u32 {
            t.insert(k, k).unwrap();
        }
        let img = t.dump_image();
        let mut r = tiny_tree();
        let fence = r.advance_epoch();
        r.adopt_image(img).unwrap();
        // Every adopted page is dirty relative to the pre-adoption fence.
        assert_eq!(
            r.dump_image_since(fence).changed_pages(),
            r.dump_image().nodes.len()
        );
        let fence = r.advance_epoch();
        assert!(r.dump_image_since(fence).pages.is_empty());
    }
}
