//! Dependency-free stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use.
//!
//! The build environment is fully offline (no registry access), so the
//! external `proptest` crate is replaced by this local implementation. It
//! keeps the same *names and shapes* — the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_filter_map` / `prop_flat_map` /
//! `boxed`, [`arbitrary::any`], range and tuple and `&str`-pattern
//! strategies, `collection::{vec, btree_set}`, `array::uniform4`, the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros and [`test_runner::ProptestConfig`] — but generates inputs from a
//! deterministic per-test seed and does **no shrinking**: a failing case
//! panics with the assertion message directly. That trades minimal
//! counterexamples for a fully offline, reproducible test suite.

pub mod test_runner {
    /// Deterministic generator state threaded through all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from the fully-qualified test name, so every test
        /// gets a distinct but stable input sequence.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform length in the half-open `[lo, hi)` size range.
        pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range {lo}..{hi}");
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// Mirror of `proptest::test_runner::ProptestConfig`; only `cases` is
    /// honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// How many times a filtered strategy retries before giving up.
    const MAX_REJECTS: u32 = 65_536;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// produces the final value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        fn prop_filter_map<U, F>(self, reason: &'static str, map: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                reason,
                map,
            }
        }

        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Type-erased strategy (`Strategy::boxed`).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let candidate = self.inner.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!("strategy rejected too often: {}", self.reason);
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_REJECTS {
                if let Some(value) = (self.map)(self.inner.generate(rng)) {
                    return value;
                }
            }
            panic!("strategy rejected too often: {}", self.reason);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Integer ranges are strategies over their half-open interval.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((u128::from(rng.next_u64()) % width) as $t)
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A homogeneous list of strategies yields the list of one draw from
    /// each (proptest's `Vec<BoxedStrategy<_>>` idiom).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// `&str` strategies generate strings from a small regex subset — see
    /// [`crate::string`].
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    /// `any::<T>()` support.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Whole-domain generation for primitive types (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text parseable and readable.
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.len_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `collection::btree_set(strategy, len_range)`. The set reaches the
    /// drawn size unless the element domain is too small, in which case it
    /// stops once additional draws stop producing new elements.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = rng.len_in(self.size.start, self.size.end);
            let mut set = BTreeSet::new();
            let mut misses = 0u32;
            while set.len() < want && misses < 1000 {
                if !set.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct UniformArray4<S>(S);

    /// `array::uniform4(strategy)` — four independent draws.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray4<S> {
        UniformArray4(element)
    }

    impl<S: Strategy> Strategy for UniformArray4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod string;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirror of `proptest!`: a config line followed by `#[test]` functions
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// In this stand-in, `prop_assert!` panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = (1u8..5, 10usize..20).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((11..24).contains(&v));
        }
    }

    #[test]
    fn filters_retry_until_accepted() {
        let mut rng = TestRng::from_seed(4);
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn collections_honour_size_ranges() {
        let mut rng = TestRng::from_seed(5);
        let lists = crate::collection::vec(0u8..10, 2..6);
        for _ in 0..100 {
            let v = lists.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let sets = crate::collection::btree_set(any::<u32>(), 1..40);
        for _ in 0..50 {
            let s = sets.generate(&mut rng);
            assert!((1..40).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_draws_from_every_branch() {
        let mut rng = TestRng::from_seed(6);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u8..10, b in any::<bool>()) {
            prop_assert!(a < 10, "a = {}", a);
            let _ = b;
        }
    }
}
