//! String generation from the small regex subset the workspace's tests use
//! as `&str` strategies: character classes (`[a-zA-Z0-9_]`, including
//! ranges and escapes), the printable-character class `\PC`, literal
//! characters, and `{min,max}` / `{n}` quantifiers. Anything outside that
//! subset panics loudly rather than silently generating the wrong
//! language.

use crate::test_runner::TestRng;

/// One unit of the pattern: a set of candidate characters plus how many
/// times to repeat it.
struct Piece {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.len_in(piece.min, piece.max + 1)
        };
        for _ in 0..count {
            let idx = rng.below(piece.choices.len() as u64) as usize;
            out.push(piece.choices[idx]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                let (set, next) = parse_escape(&chars, i + 1, pattern);
                i = next;
                set
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let (bounds, next) = parse_quantifier(&chars, i + 1, pattern);
            i = next;
            bounds
        } else {
            (1, 1)
        };
        assert!(
            !choices.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        pieces.push(Piece { choices, min, max });
    }
    pieces
}

/// Parse `[...]` starting just past the `[`; returns the set and the index
/// just past the `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(chars.get(i).copied(), pattern)
        } else {
            chars[i]
        };
        // A `-` between two characters is a range unless it abuts `]`.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = if chars[i + 2] == '\\' {
                i += 1;
                unescape(chars.get(i + 2).copied(), pattern)
            } else {
                chars[i + 2]
            };
            assert!(
                c <= hi,
                "inverted range {c:?}-{hi:?} in pattern {pattern:?}"
            );
            for code in c as u32..=hi as u32 {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in pattern {pattern:?}"
    );
    (set, i + 1)
}

/// Parse an escape starting just past the `\`; returns the set and the
/// index just past the escape.
fn parse_escape(chars: &[char], i: usize, pattern: &str) -> (Vec<char>, usize) {
    match chars.get(i) {
        // `\PC`: any printable character. ASCII printable keeps the
        // output embeddable in single-line shell/session transcripts.
        Some('P') if chars.get(i + 1) == Some(&'C') => {
            ((0x20u8..=0x7Eu8).map(char::from).collect(), i + 2)
        }
        other => (vec![unescape(other.copied(), pattern)], i + 1),
    }
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some(c @ ('\\' | ']' | '[' | '{' | '}' | '-' | '.' | '*' | '+' | '?' | '(' | ')')) => c,
        other => panic!("unsupported escape {other:?} in pattern {pattern:?}"),
    }
}

/// Parse `{n}` or `{min,max}` starting just past the `{`; returns the
/// inclusive bounds and the index just past the `}`.
fn parse_quantifier(chars: &[char], mut i: usize, pattern: &str) -> ((usize, usize), usize) {
    let mut nums: Vec<usize> = vec![0];
    let mut saw_comma = false;
    while i < chars.len() && chars[i] != '}' {
        match chars[i] {
            ',' => {
                assert!(!saw_comma, "bad quantifier in pattern {pattern:?}");
                saw_comma = true;
                nums.push(0);
            }
            d @ '0'..='9' => {
                let last = nums.last_mut().unwrap();
                *last = *last * 10 + (d as usize - '0' as usize);
            }
            other => panic!("bad quantifier char {other:?} in pattern {pattern:?}"),
        }
        i += 1;
    }
    assert!(
        i < chars.len(),
        "unterminated quantifier in pattern {pattern:?}"
    );
    let bounds = match nums.as_slice() {
        [n] => (*n, *n),
        [lo, hi] => (*lo, *hi),
        _ => unreachable!(),
    };
    assert!(
        bounds.0 <= bounds.1,
        "inverted quantifier in pattern {pattern:?}"
    );
    (bounds, i + 1)
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn identifier_pattern_generates_identifiers() {
        let mut rng = TestRng::from_seed(11);
        let strategy = "[a-zA-Z][a-zA-Z0-9_]{0,8}";
        for _ in 0..500 {
            let s = strategy.generate(&mut rng);
            assert!((1..=9).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn class_with_literal_dash_dot_and_space() {
        let mut rng = TestRng::from_seed(12);
        let strategy = "[a-zA-Z0-9 _.-]{0,12}";
        for _ in 0..500 {
            let s = strategy.generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn printable_range_with_newline_escape() {
        let mut rng = TestRng::from_seed(13);
        let strategy = "[ -~\n]{0,120}";
        let mut saw_newline = false;
        for _ in 0..2000 {
            let s = strategy.generate(&mut rng);
            assert!(s.len() <= 120);
            for c in s.chars() {
                assert!((' '..='~').contains(&c) || c == '\n', "bad char {c:?}");
                saw_newline |= c == '\n';
            }
        }
        assert!(saw_newline, "newline alternative never drawn");
    }

    #[test]
    fn printable_class_pc() {
        let mut rng = TestRng::from_seed(14);
        let strategy = "\\PC{0,80}";
        for _ in 0..500 {
            let s = strategy.generate(&mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_quantifier_and_literals() {
        let mut rng = TestRng::from_seed(15);
        let s = "ab[01]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c == '0' || c == '1'));
    }
}
