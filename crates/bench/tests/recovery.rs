//! The durability acceptance criterion: replaying a small WAL tail
//! through incremental maintenance must cost strictly less page I/O than
//! invalidating and rebuilding the ASR.

use asr_bench::recovery::measure_recovery;

#[test]
fn wal_replay_beats_full_rebuild_for_small_deltas() {
    let b = measure_recovery(1.0, 16);
    assert!(b.delta_ops > 0, "the staged delta must log something");
    assert_eq!(
        b.records_replayed, b.delta_ops,
        "recovery replays exactly the logged delta"
    );
    // Replay touches the log and the pages the delta touches; it must not
    // be free, and it must undercut a from-scratch rebuild.
    assert!(b.wal_replay.pages() > 0, "{:?}", b.wal_replay);
    assert!(
        b.wal_replay.pages() < b.full_rebuild.pages(),
        "replay {:?} should cost less than rebuild {:?}",
        b.wal_replay,
        b.full_rebuild
    );
    // Both strategies share the checkpoint-load baseline, which dwarfs
    // neither comparison side into noise.
    assert!(b.checkpoint_load.pages() > 0);
}

/// The v2 acceptance criterion: restoring ASRs physically from the
/// checkpoint's page images must cost strictly less page I/O than the
/// v1 pipeline, which re-derives every relation from the base on load.
#[test]
fn physical_checkpoint_load_beats_rebuild_on_load() {
    let b = measure_recovery(1.0, 16);
    assert!(b.checkpoint_load.pages() > 0, "{:?}", b.checkpoint_load);
    assert!(
        b.checkpoint_load.pages() < b.rebuild_load.pages(),
        "physical load {:?} should cost less than rebuild-on-load {:?}",
        b.checkpoint_load,
        b.rebuild_load
    );
    assert!(
        b.checkpoint_load.page_reads < b.rebuild_load.page_reads,
        "physical load {:?} should also read fewer pages than {:?}",
        b.checkpoint_load,
        b.rebuild_load
    );
}

#[test]
fn replay_cost_scales_with_delta_not_database() {
    // Double the delta: replay cost grows, rebuild cost stays in the same
    // ballpark (it rescans the whole database either way).
    let small = measure_recovery(1.0, 8);
    let large = measure_recovery(1.0, 24);
    assert!(large.delta_ops > small.delta_ops);
    assert!(
        large.wal_replay.pages() >= small.wal_replay.pages(),
        "replay should track the delta: {:?} vs {:?}",
        small.wal_replay,
        large.wal_replay
    );
    assert!(
        large.wal_replay.pages() < large.full_rebuild.pages(),
        "even the larger delta replays cheaper than a rebuild"
    );
}
