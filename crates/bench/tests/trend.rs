//! The perf-trend gate must actually gate: a synthetic regression in a
//! deterministic metric has to turn into a non-empty regression list
//! (and a non-zero exit in CI), while wall-clock noise must not.

use std::fs;
use std::path::PathBuf;

use asr_bench::trend::{run_trend, Regression};

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("asr-trend-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn write_snapshot(dir: &Scratch, n: u32, page_reads: u64, wall_ms: f64) {
    let body = format!(
        "{{\n  \"schema\": \"asr-bench-snapshot/5\",\n  \"figures\": {{\n    \"fig6\": {{\n      \
         \"wall_ms\": {wall_ms:.1},\n      \"measured\": {{ \"page_reads\": {page_reads}, \
         \"page_writes\": 0 }}\n    }}\n  }}\n}}\n"
    );
    fs::write(dir.0.join(format!("BENCH_{n}.json")), body).expect("write snapshot");
}

#[test]
fn synthetic_regression_fails_the_gate() {
    let dir = Scratch::new("neg");
    write_snapshot(&dir, 1, 100, 10.0);
    write_snapshot(&dir, 2, 100, 12.0);
    write_snapshot(&dir, 3, 150, 11.0); // +50% page reads: a real regression

    let report = run_trend(&dir.0, 0.10).expect("series loads");
    assert_eq!(report.snapshots, vec!["BENCH_1", "BENCH_2", "BENCH_3"]);
    let [Regression {
        metric,
        baseline_snapshot,
        baseline,
        current,
    }] = report.regressions.as_slice()
    else {
        panic!(
            "expected exactly one regression, got {:?}",
            report.regressions
        );
    };
    assert_eq!(metric, "figures.fig6.measured.page_reads");
    assert_eq!(baseline_snapshot, "BENCH_2");
    assert_eq!((*baseline, *current), (100.0, 150.0));
    let rendered = report.render(0.10);
    assert!(rendered.contains("REGRESSION"), "{rendered}");
}

#[test]
fn wall_clock_noise_and_flat_history_pass_the_gate() {
    let dir = Scratch::new("pos");
    write_snapshot(&dir, 1, 100, 10.0);
    write_snapshot(&dir, 2, 100, 500.0); // 50x slower wall-clock: not gated
    write_snapshot(&dir, 3, 90, 11.0); // page reads improved

    let report = run_trend(&dir.0, 0.10).expect("series loads");
    assert!(
        report.regressions.is_empty(),
        "nothing deterministic regressed: {:?}",
        report.regressions
    );
    let rendered = report.render(0.10);
    assert!(rendered.contains("trend gate: OK"), "{rendered}");
}
