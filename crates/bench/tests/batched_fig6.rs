//! Acceptance check for batched frontier probes on the Figure 6 regime:
//! a backward span query whose frontier reaches ≥ 32 cells must charge
//! strictly fewer measured page reads than per-cell probing, with
//! bit-identical results.

use std::collections::BTreeSet;

use asr_core::cell::Cell;
use asr_core::partition::StoredPartition;
use asr_core::row::Row;
use asr_core::{AsrConfig, Decomposition, Extension};
use asr_costmodel::profiles;
use asr_gom::{Oid, PathExpression, Value};
use asr_workload::{generate, scale_profile, GeneratorSpec};

const SCALE: f64 = 10.0;
/// How many terminal objects share the queried Tag value — the frontier
/// the backward walk carries into the interior partitions.
const SHARED: usize = 64;
const SHARED_TAG: i64 = 999_999;

/// Per-cell reference of the supported backward walk (the pre-batching
/// evaluation): identical partition traversal, but every frontier cell
/// descends its tree independently.  Returns the result cells and the
/// largest frontier the walk carried.
fn backward_per_cell(
    partitions: &[StoredPartition],
    dec: &Decomposition,
    ci: usize,
    cj: usize,
    target: &Cell,
) -> (Vec<Cell>, usize) {
    let mut frontier: BTreeSet<Cell> = BTreeSet::from([target.clone()]);
    let mut max_frontier = 1;
    let spans: Vec<(usize, usize)> = dec.partitions().collect();
    for (idx, &(a, b)) in spans.iter().enumerate().rev() {
        if a >= cj {
            continue;
        }
        if b <= ci {
            break;
        }
        let part = &partitions[idx];
        let rows: Vec<Row> = if b > cj {
            let offset = cj - a;
            let mut hits = Vec::new();
            part.scan(|row| {
                if let Some(cell) = row.cell(offset) {
                    if frontier.contains(cell) {
                        hits.push(row.clone());
                    }
                }
            });
            hits
        } else {
            frontier.iter().flat_map(|c| part.lookup_last(c)).collect()
        };
        if ci >= a {
            let offset = ci - a;
            let out: BTreeSet<Cell> = rows.iter().filter_map(|r| r.cell(offset).clone()).collect();
            return (out.into_iter().collect(), max_frontier);
        }
        frontier = rows.iter().filter_map(|r| r.first().clone()).collect();
        max_frontier = max_frontier.max(frontier.len());
        if frontier.is_empty() {
            return (Vec::new(), max_frontier);
        }
    }
    (Vec::new(), max_frontier)
}

#[test]
fn fig6_backward_span_with_wide_frontier_reads_fewer_pages_batched() {
    let scaled = scale_profile(&profiles::fig6_profile().profile, SCALE);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let mut g = generate(&spec, 1);
    let n = scaled.n;

    // Retag SHARED terminal objects that the chain actually reaches with
    // one common Tag value, so the backward walk from that value carries
    // a ≥ 32-cell frontier into the interior partitions.
    let mut referenced: BTreeSet<Oid> = BTreeSet::new();
    for &owner in &g.levels[n - 1] {
        let Ok(v) = g.db.base().get_attribute(owner, &format!("A{n}")) else {
            continue;
        };
        if let Some(set) = v.as_ref_oid() {
            if let Ok(elems) = g.db.base().element_oids(set) {
                referenced.extend(elems);
            }
        }
    }
    assert!(
        referenced.len() >= SHARED,
        "generated fig6 population reaches only {} terminals",
        referenced.len()
    );
    for &o in referenced.iter().take(SHARED) {
        g.db.set_attribute(o, "Tag", Value::Integer(SHARED_TAG))
            .expect("retag terminal");
    }

    // Index the value-terminated chain T0.A1.….An.Tag, fully decomposed
    // (binary) so every hop is a border probe.
    let mut dotted = String::from("T0");
    for i in 1..=n {
        dotted.push_str(&format!(".A{i}"));
    }
    dotted.push_str(".Tag");
    let path = PathExpression::parse(g.db.base().schema(), &dotted).expect("chain path parses");
    let m = path.arity(false) - 1;
    let id =
        g.db.create_asr(
            path,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");

    let target = Cell::Value(Value::Integer(SHARED_TAG));
    let asr = g.db.asr(id).unwrap();
    let stats = g.db.stats();

    stats.reset();
    let batched = asr.backward(0, m, &target).expect("supported span");
    let batched_reads = stats.reads();
    let probes = stats.batch_probes();
    let saved = stats.batch_pages_saved();

    let dec = asr.config().decomposition.clone();
    stats.reset();
    let (reference, max_frontier) = backward_per_cell(asr.partitions(), &dec, 0, m, &target);
    let per_cell_reads = stats.reads();

    let reference_oids: Vec<Oid> = reference.iter().filter_map(|c| c.as_oid()).collect();
    assert_eq!(batched, reference_oids, "batched results are bit-identical");
    assert!(
        max_frontier >= 32,
        "the walk must carry a wide frontier, got {max_frontier}"
    );
    assert!(
        probes as usize >= SHARED,
        "every frontier cell is one batched probe, got {probes}"
    );
    assert!(
        batched_reads < per_cell_reads,
        "a ≥32-cell frontier must share tree pages: batched {batched_reads} vs per-cell \
         {per_cell_reads}"
    );
    assert!(saved > 0, "the saving lands in the IoStats batch counters");
}
