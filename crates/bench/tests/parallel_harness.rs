//! The parallel experiment harness must be a pure wall-clock
//! optimization: running figures on worker threads may not change a
//! single byte of what they produce.

use asr_bench::experiments::{registry, run_entries, run_entries_sharded, ExperimentEntry};

/// Render every table and note of a run into one comparable string —
/// the same data `emit` prints and `save_csv` writes.
fn fingerprint(results: &[(asr_bench::experiments::ExperimentOutput, f64)]) -> String {
    let mut out = String::new();
    for (output, _) in results {
        for table in &output.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &output.notes {
            out.push_str(note);
            out.push('\n');
        }
    }
    out
}

#[test]
fn jobs4_output_is_byte_identical_to_jobs1() {
    // The analytical figures run in milliseconds even in debug builds;
    // the full suite is exercised with --jobs in release via the
    // perf_snapshot binary.
    let subset: Vec<ExperimentEntry> = registry()
        .into_iter()
        .filter(|(id, _, _)| matches!(*id, "fig4" | "fig5" | "fig6" | "fig8" | "fig11" | "fig12"))
        .collect();
    assert_eq!(subset.len(), 6);

    let sequential = run_entries(&subset, 1);
    let parallel = run_entries(&subset, 4);
    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "worker threads must not change any table or note"
    );
}

#[test]
fn sharded_io_aggregate_is_independent_of_jobs() {
    // `validate` and `ablation` are the entries that drive the real
    // engine; each worker folds its figures' I/O into a private shard
    // merged on scope join, so the aggregate must be exact and identical
    // whether one worker runs both or two workers race for them.
    let subset: Vec<ExperimentEntry> = registry()
        .into_iter()
        .filter(|(id, _, _)| matches!(*id, "ablation"))
        .collect();
    assert_eq!(subset.len(), 1);

    let (_, io_seq) = run_entries_sharded(&subset, 1);
    let (_, io_par) = run_entries_sharded(&subset, 4);
    assert!(io_seq.accesses() > 0, "ablation performs real page I/O");
    assert_eq!(
        io_seq, io_par,
        "shard merging must reconstruct the exact sequential totals"
    );
}
