//! Benchmark: building an access support relation from scratch, per
//! extension (Table/Figure support work — the bulk-load path: auxiliary
//! relations, extension joins, decomposition, dual B+ tree loads).

use asr_core::{AccessSupportRelation, AsrConfig, Decomposition, Extension};
use asr_pagesim::IoStats;
use asr_workload::{generate, GeneratorSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn spec() -> GeneratorSpec {
    GeneratorSpec {
        counts: vec![100, 500, 1000, 5000, 10_000],
        defined: vec![90, 400, 800, 2000],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    }
}

fn bench_build(c: &mut Criterion) {
    let g = generate(&spec(), 42);
    let base = g.db.base();
    let m = g.path.arity(false) - 1;
    let mut group = c.benchmark_group("asr_build_fig6_population");
    group.sample_size(10);
    for ext in Extension::ALL {
        group.bench_function(ext.name(), |b| {
            b.iter(|| {
                AccessSupportRelation::build(
                    base,
                    g.path.clone(),
                    AsrConfig {
                        extension: ext,
                        decomposition: Decomposition::binary(m),
                        keep_set_oids: false,
                    },
                    IoStats::new_handle(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_decomposition_styles(c: &mut Criterion) {
    let g = generate(&spec(), 42);
    let base = g.db.base();
    let m = g.path.arity(false) - 1;
    let mut group = c.benchmark_group("asr_build_full_by_decomposition");
    group.sample_size(10);
    for (label, dec) in [
        ("none", Decomposition::none(m)),
        ("binary", Decomposition::binary(m)),
        ("(0,3,4)", Decomposition::new(vec![0, 3, 4]).unwrap()),
    ] {
        let dec = dec.clone();
        group.bench_function(label, |b| {
            b.iter(|| {
                AccessSupportRelation::build(
                    base,
                    g.path.clone(),
                    AsrConfig {
                        extension: Extension::Full,
                        decomposition: dec.clone(),
                        keep_set_oids: false,
                    },
                    IoStats::new_handle(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_decomposition_styles);
criterion_main!(benches);
