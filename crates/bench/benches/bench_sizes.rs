//! Benchmark: the relational algebra that assembles extensions —
//! auxiliary-relation construction, the four join chains, decomposition
//! and lossless reassembly (Theorem 3.9's machinery).

use asr_core::{build_auxiliary_relations, Decomposition, Extension};
use asr_workload::{generate, GeneratorSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn spec() -> GeneratorSpec {
    GeneratorSpec {
        counts: vec![100, 500, 1000, 5000, 10_000],
        defined: vec![90, 400, 800, 2000],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    }
}

fn bench_extension_computation(c: &mut Criterion) {
    let g = generate(&spec(), 42);
    let aux = build_auxiliary_relations(g.db.base(), &g.path, false).unwrap();
    let mut group = c.benchmark_group("extension_joins");
    group.sample_size(20);
    for ext in Extension::ALL {
        group.bench_function(ext.name(), |b| b.iter(|| ext.compute(&aux).unwrap()));
    }
    group.finish();

    c.bench_function("auxiliary_relations", |b| {
        b.iter(|| build_auxiliary_relations(g.db.base(), &g.path, false).unwrap())
    });
}

fn bench_decompose_reassemble(c: &mut Criterion) {
    let g = generate(&spec(), 42);
    let aux = build_auxiliary_relations(g.db.base(), &g.path, false).unwrap();
    let full = Extension::Full.compute(&aux).unwrap();
    let dec = Decomposition::binary(full.arity() - 1);
    c.bench_function("decompose_binary", |b| {
        b.iter(|| dec.decompose(&full).unwrap())
    });
    let parts = dec.decompose(&full).unwrap();
    c.bench_function("reassemble_binary", |b| {
        b.iter(|| dec.reassemble(&parts, Extension::Full).unwrap())
    });
}

criterion_group!(
    benches,
    bench_extension_computation,
    bench_decompose_reassemble
);
criterion_main!(benches);
