//! Benchmark: query evaluation, supported vs naive (the wall-clock
//! companion of the paper's Figure 6 page-access comparison).

use asr_core::{AsrConfig, Cell, Decomposition, Extension};
use asr_workload::{generate, GeneratorSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn spec() -> GeneratorSpec {
    GeneratorSpec {
        counts: vec![100, 500, 1000, 5000, 10_000],
        defined: vec![90, 400, 800, 2000],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    }
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_Q04");
    group.sample_size(20);

    // Naive evaluation.
    let g = generate(&spec(), 42);
    let target = Cell::Oid(g.levels[4][0]);
    group.bench_function("naive", |b| {
        b.iter(|| {
            g.db.backward_unindexed(&g.path, 0, 4, black_box(&target))
                .unwrap()
        })
    });

    // Supported, per extension, binary decomposition.
    for ext in Extension::ALL {
        let mut g = generate(&spec(), 42);
        let m = g.path.arity(false) - 1;
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: ext,
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        let target = Cell::Oid(g.levels[4][0]);
        group.bench_function(ext.name(), |b| {
            b.iter(|| g.db.backward(id, 0, 4, black_box(&target)).unwrap())
        });
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_Q04");
    group.sample_size(20);
    let g = generate(&spec(), 42);
    let start = g.levels[0][0];
    group.bench_function("naive", |b| {
        b.iter(|| {
            g.db.forward_unindexed(&g.path, 0, 4, black_box(start))
                .unwrap()
        })
    });
    let mut g = generate(&spec(), 42);
    let m = g.path.arity(false) - 1;
    let id =
        g.db.create_asr(
            g.path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .unwrap();
    let start = g.levels[0][0];
    group.bench_function("full_binary", |b| {
        b.iter(|| g.db.forward(id, 0, 4, black_box(start)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_backward, bench_forward);
criterion_main!(benches);
