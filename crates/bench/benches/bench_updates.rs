//! Benchmark: incremental maintenance under `ins_3`, per extension (the
//! wall-clock companion of Figure 11).

use asr_core::{AsrConfig, Decomposition, Extension};
use asr_costmodel::{Mix, Op};
use asr_workload::{execute_trace, generate, generate_trace, GeneratorSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn spec() -> GeneratorSpec {
    GeneratorSpec {
        counts: vec![50, 250, 500, 2500, 5000],
        defined: vec![45, 200, 400, 1000],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    }
}

fn bench_ins3(c: &mut Criterion) {
    let mut group = c.benchmark_group("ins3_x10");
    group.sample_size(10);
    for ext in Extension::ALL {
        group.bench_function(ext.name(), |b| {
            b.iter_batched(
                || {
                    let mut g = generate(&spec(), 7);
                    let m = g.path.arity(false) - 1;
                    let id =
                        g.db.create_asr(
                            g.path.clone(),
                            AsrConfig {
                                extension: ext,
                                decomposition: Decomposition::binary(m),
                                keep_set_oids: false,
                            },
                        )
                        .unwrap();
                    let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);
                    let trace = generate_trace(&g, &mix, 10, 99);
                    (g, id, trace)
                },
                |(mut g, id, trace)| {
                    let path = g.path.clone();
                    execute_trace(&mut g.db, Some(id), &path, &trace)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ins3);
criterion_main!(benches);
