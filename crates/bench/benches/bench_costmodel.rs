//! Benchmark: the analytical cost model itself.  The paper proposes
//! integrating the model into the DBMS "to verify a given physical
//! database design, or even to automate the task" — which only works if
//! evaluating all designs is fast.

use asr_costmodel::design::rank_designs;
use asr_costmodel::{profiles, Dec, Ext};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let model = profiles::fig11_profile();
    c.bench_function("cardinality_full_whole_chain", |b| {
        b.iter(|| model.card_full(black_box(0), black_box(4)))
    });
    c.bench_function("qsup_bw_binary", |b| {
        let dec = Dec::binary(4);
        b.iter(|| model.qsup_bw(Ext::Full, 0, 4, &dec))
    });
    c.bench_function("update_cost_canonical", |b| {
        let dec = Dec::binary(4);
        b.iter(|| model.update_cost(Ext::Canonical, 3, &dec))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let model = profiles::fig14_profile();
    let mix = profiles::fig14_mix(0.3);
    c.bench_function("rank_all_33_designs_n4", |b| {
        b.iter(|| rank_designs(&model, &mix))
    });

    let model5 = profiles::fig17_profile();
    let mix5 = profiles::fig17_mix(0.01);
    c.bench_function("rank_all_65_designs_n5", |b| {
        b.iter(|| rank_designs(&model5, &mix5))
    });
}

criterion_group!(benches, bench_primitives, bench_optimizer);
criterion_main!(benches);
