//! Micro-benchmarks of the page-granular B+ tree against the standard
//! library's `BTreeMap` (wall-clock; the page-access accounting is the
//! structure's raison d'être, but it must not make it pathologically
//! slow).

use std::collections::BTreeMap;

use asr_pagesim::{BPlusTree, IoStats};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const N: u64 = 10_000;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_insert_10k");
    group.bench_function("pagesim_bplus", |b| {
        b.iter_batched(
            || BPlusTree::<u64, u64>::new(16, 8, IoStats::new_handle()),
            |mut tree| {
                for k in 0..N {
                    tree.insert(black_box(k.wrapping_mul(2654435761) % (N * 4)), k)
                        .ok();
                }
                tree
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("std_btreemap", |b| {
        b.iter_batched(
            BTreeMap::<u64, u64>::new,
            |mut tree| {
                for k in 0..N {
                    tree.insert(black_box(k.wrapping_mul(2654435761) % (N * 4)), k);
                }
                tree
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut tree = BPlusTree::<u64, u64>::new(16, 8, IoStats::new_handle());
    let mut map = BTreeMap::new();
    for k in 0..N {
        tree.insert(k, k).unwrap();
        map.insert(k, k);
    }
    let mut group = c.benchmark_group("btree_lookup");
    group.bench_function("pagesim_bplus", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for k in (0..N).step_by(37) {
                sum += tree.get(&black_box(k)).unwrap_or(0);
            }
            sum
        })
    });
    group.bench_function("std_btreemap", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for k in (0..N).step_by(37) {
                sum += map.get(&black_box(k)).copied().unwrap_or(0);
            }
            sum
        })
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut tree = BPlusTree::<u64, u64>::new(16, 8, IoStats::new_handle());
    for k in 0..N {
        tree.insert(k, k).unwrap();
    }
    c.bench_function("btree_range_1k_of_10k", |b| {
        b.iter(|| {
            let mut count = 0usize;
            tree.scan_range(
                std::ops::Bound::Included(&black_box(4000)),
                std::ops::Bound::Excluded(&5000),
                |_, _| count += 1,
            );
            count
        })
    });
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_build_10k");
    group.bench_function("bulk_load", |b| {
        b.iter(|| {
            BPlusTree::bulk_load((0..N).map(|k| (k, k)), 16, 8, IoStats::new_handle()).unwrap()
        })
    });
    group.bench_function("insert_loop", |b| {
        b.iter(|| {
            let mut t: BPlusTree<u64, u64> = BPlusTree::new(16, 8, IoStats::new_handle());
            for k in 0..N {
                t.insert(k, k).unwrap();
            }
            t
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_range,
    bench_bulk_load
);
criterion_main!(benches);
