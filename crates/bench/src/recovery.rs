//! Recovery micro-benchmark: WAL-tail replay vs. full ASR rebuild, and
//! physical (v2) checkpoint loading vs. the rebuild-on-load (v1) pipeline.
//!
//! Version-2 checkpoints carry each stored partition's B+ trees as page
//! images, so loading one restores the ASRs physically in O(pages); the
//! v1 pipeline stored only ASR *configurations* and re-derived every
//! relation from the base on load.  Both are priced here.  What the
//! write-ahead log changes is how the *delta* since the checkpoint is
//! incorporated:
//!
//! * **WAL replay** (what `asr-durable` implements): scan the log tail
//!   and push each surviving record through the incremental maintenance
//!   engine — cost proportional to the delta;
//! * **full rebuild** (the naive alternative): apply the delta to the
//!   object base, invalidate the derived data, and rebuild the ASR from
//!   scratch — cost proportional to the database.
//!
//! [`measure_recovery`] stages a crash on a scaled fig6 population with a
//! small insert delta and measures both strategies' marginal page I/O and
//! wall-clock on the page-metered substrate.  The deterministic page
//! simulation makes the phase subtraction exact.

use std::time::Instant;

use asr_core::{AsrConfig, Database, Decomposition, Extension};
use asr_costmodel::{profiles, Mix, Op};
use asr_durable::{
    recover_to_lsn, replicate, DurableDatabase, FlushPolicy, LosslessChannel, MemStorage,
    ReplicaApplier, ReplicateOptions, Storage, CHECKPOINT_FILE,
};
use asr_gom::{PathExpression, TypeRef, Value};
use asr_pagesim::PAGE_SIZE;
use asr_workload::{generate, generate_trace, scale_profile, GeneratorSpec, TraceOp};

/// Measured cost of one recovery phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseCost {
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Modeled page reads.
    pub page_reads: u64,
    /// Modeled page writes.
    pub page_writes: u64,
}

impl PhaseCost {
    /// Total modeled page accesses.
    pub fn pages(&self) -> u64 {
        self.page_reads + self.page_writes
    }
}

/// The result of one staged crash-and-recover comparison.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryBench {
    /// Effective (logged) operations in the delta.
    pub delta_ops: u64,
    /// Records the real recovery replayed — equals `delta_ops`.
    pub records_replayed: u64,
    /// Loading the checkpoint snapshot (v2: ASRs restored physically
    /// from their page images) — the baseline every strategy pays.
    pub checkpoint_load: PhaseCost,
    /// Loading the same state through the v1 snapshot pipeline, which
    /// re-derives every ASR from the base — what checkpoint loading cost
    /// before physical partition persistence.
    pub rebuild_load: PhaseCost,
    /// Marginal cost of replaying the WAL tail through incremental
    /// maintenance (includes reading the log itself).
    pub wal_replay: PhaseCost,
    /// Marginal cost of the naive alternative: drop the ASR and rebuild
    /// it from scratch over the recovered base.
    pub full_rebuild: PhaseCost,
}

/// Stage a crash and measure both recovery strategies.
///
/// `scale` down-scales the fig6 profile population (`5.0` = 1/5 scale);
/// `delta_ops` is how many `ins_3` trace operations to attempt after the
/// initial checkpoint (duplicates are no-ops and not logged).
pub fn measure_recovery(scale: f64, delta_ops: usize) -> RecoveryBench {
    let scaled = scale_profile(&profiles::fig6_profile().profile, scale);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let g = generate(&spec, 7);
    let m = g.path.arity(false) - 1;
    let config = AsrConfig {
        extension: Extension::Full,
        decomposition: Decomposition::binary(m),
        keep_set_oids: false,
    };
    let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);
    let trace = generate_trace(&g, &mix, delta_ops, 11);
    let dotted = g.path.to_string();
    let mut db = g.db;
    db.create_asr_on(&dotted, config.clone())
        .expect("ASR builds");

    // Make it durable: the initial checkpoint covers the built ASR's
    // configuration, then the delta is logged record by record.
    let mem = MemStorage::new();
    let mut durable =
        DurableDatabase::create(mem.clone(), db, FlushPolicy::EveryRecord).expect("creates");
    let mut applied = 0u64;
    for op in &trace {
        if let TraceOp::Insert { i, owner, elem } = op {
            let attr = format!("A{}", i + 1);
            let Ok(value) = durable.base().get_attribute(*owner, &attr) else {
                continue;
            };
            let Some(set) = value.as_ref_oid() else {
                continue;
            };
            if durable
                .insert_into_set(set, Value::Ref(*elem))
                .expect("logged insert")
            {
                applied += 1;
            }
        }
    }
    drop(durable); // crash: only the checkpoint and the log survive

    // (a) Recovery as implemented: load the checkpoint, replay the tail.
    let t = Instant::now();
    let recovered = DurableDatabase::open(mem.clone()).expect("recovers");
    let recover_wall = t.elapsed().as_secs_f64() * 1e3;
    let report = recovered.recovery_report().clone();
    let total = recovered.stats().snapshot();

    // (b) The shared baseline: loading the same checkpoint body alone.
    let body = checkpoint_body(&mem);
    let t = Instant::now();
    let loaded = Database::load_from_string(&body).expect("checkpoint loads");
    let load_wall = t.elapsed().as_secs_f64() * 1e3;
    let load = loaded.stats().snapshot();

    // (d) The pre-v2 pipeline on the same state: a v1 snapshot's load
    // re-derives the ASR from the base.  Charge the file read (recovery
    // would) plus everything the rebuild itself touches.
    let v1_text = loaded.save_to_string_v1();
    let t = Instant::now();
    let rebuilt = Database::load_from_string(&v1_text).expect("v1 snapshot loads");
    let v1_wall = t.elapsed().as_secs_f64() * 1e3;
    let v1_stats = rebuilt.stats().snapshot();
    drop(rebuilt);
    let rebuild_load = PhaseCost {
        wall_ms: v1_wall,
        page_reads: v1_stats.reads + (v1_text.len() as u64).div_ceil(PAGE_SIZE as u64),
        page_writes: v1_stats.writes,
    };

    // (c) The naive alternative to replay: invalidate + rebuild the ASR
    // over the recovered final state.  The in-memory build walks the
    // object base directly and charges only the bulk-load writes; a cold
    // recovery rebuild has to *read* every extent along the path from
    // disk to recompute the extension, so charge those scans explicitly.
    let mut db = recovered.into_database();
    let path = PathExpression::parse(db.base().schema(), &dotted).expect("path parses");
    let before = db.stats().snapshot();
    let t = Instant::now();
    for i in 0..=path.len() {
        if let TypeRef::Named(ty) = path.type_at(i) {
            db.store().charge_scan(ty);
        }
    }
    db.drop_asr(0).expect("ASR #0 exists");
    db.create_asr_on(&dotted, config).expect("rebuilds");
    let rebuild_wall = t.elapsed().as_secs_f64() * 1e3;
    let after = db.stats().snapshot();

    RecoveryBench {
        delta_ops: applied,
        records_replayed: report.records_replayed,
        checkpoint_load: PhaseCost {
            wall_ms: load_wall,
            // The file read itself is charged by recovery, not by
            // load_from_string; attribute it to this phase.
            page_reads: load.reads + report.checkpoint_pages_read,
            page_writes: load.writes,
        },
        rebuild_load,
        wal_replay: PhaseCost {
            wall_ms: (recover_wall - load_wall).max(0.0),
            page_reads: (total.reads - load.reads) - report.checkpoint_pages_read,
            page_writes: total.writes - load.writes,
        },
        full_rebuild: PhaseCost {
            wall_ms: rebuild_wall,
            page_reads: after.reads - before.reads,
            page_writes: after.writes - before.writes,
        },
    }
}

/// Shipping cost of bringing one replica to the primary's tip.
#[derive(Debug, Clone, Copy)]
pub struct ShipCost {
    /// Wall-clock milliseconds for the whole pump.
    pub wall_ms: f64,
    /// Delivery bytes the replica received.
    pub bytes_shipped: u64,
    /// Those bytes in modeled pages.
    pub pages: u64,
    /// Deliveries the shipper sent.
    pub deliveries: u64,
    /// Records the applier replayed.
    pub records_applied: u64,
}

/// Warm catch-up vs cold bootstrap: the replication analogue of
/// WAL-replay vs full-rebuild.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationBench {
    /// Effective (logged) operations in the delta.
    pub delta_ops: u64,
    /// A replica seeded before the delta catches up by shipping only the
    /// delta's frames — cost proportional to the delta.
    pub catchup: ShipCost,
    /// A fresh replica must ship the checkpoint snapshot plus the delta —
    /// cost proportional to the database.
    pub bootstrap: ShipCost,
}

/// Stage a primary and measure both replica strategies.
///
/// Mirrors [`measure_recovery`]'s staging: scaled fig6 population, one
/// full/binary ASR covered by the create-time checkpoint, then
/// `delta_ops` logged `ins_3` operations.
pub fn measure_replication(scale: f64, delta_ops: usize) -> ReplicationBench {
    let (primary, applied) = stage_primary(scale, delta_ops, None);
    let opts = ReplicateOptions::default();

    // Cold bootstrap: checkpoint + all delta frames.
    let mut cold = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    let t = Instant::now();
    let cold_report =
        replicate(&primary, &mut cold, &mut channel, &opts).expect("lossless bootstrap");
    let cold_wall = t.elapsed().as_secs_f64() * 1e3;
    let cold_bytes = cold.status().bytes_received;

    // Warm catch-up: seed a replica with the checkpoint delivery alone
    // (the state before the delta — the create-time checkpoint), then
    // measure shipping the remaining frames.  The shipper serves
    // `Need::From` without re-sending the checkpoint as long as the log
    // retains the history, which is exactly the warm path.
    let mut warm = ReplicaApplier::new();
    let shipper = asr_durable::LogShipper::new(primary.storage());
    let seed = shipper
        .deliveries_for(asr_durable::Need::Checkpoint)
        .expect("shippable state");
    warm.offer(&seed[0]).expect("checkpoint seeds the replica");
    let seeded_bytes = warm.status().bytes_received;
    let mut channel = LosslessChannel::new();
    let t = Instant::now();
    let warm_report =
        replicate(&primary, &mut warm, &mut channel, &opts).expect("lossless catch-up");
    let warm_wall = t.elapsed().as_secs_f64() * 1e3;
    let warm_bytes = warm.status().bytes_received - seeded_bytes;

    ReplicationBench {
        delta_ops: applied,
        catchup: ShipCost {
            wall_ms: warm_wall,
            bytes_shipped: warm_bytes,
            pages: warm_bytes.div_ceil(PAGE_SIZE as u64),
            deliveries: warm_report.deliveries_sent,
            records_applied: warm_report.records_applied,
        },
        bootstrap: ShipCost {
            wall_ms: cold_wall,
            bytes_shipped: cold_bytes,
            pages: cold_bytes.div_ceil(PAGE_SIZE as u64),
            deliveries: cold_report.deliveries_sent,
            records_applied: cold_report.records_applied,
        },
    }
}

/// Delta checkpointing and delta re-bootstrap: both write/ship costs
/// proportional to the *delta*, priced against their full-state
/// counterparts on the same staged state.
#[derive(Debug, Clone, Copy)]
pub struct DeltaCheckpointBench {
    /// Effective (logged) operations in the delta.
    pub delta_ops: u64,
    /// Wall-clock of the delta checkpoint itself.
    pub checkpoint_wall_ms: f64,
    /// Pages the delta checkpoint wrote (snapshot + archived copy).
    pub delta_pages: u64,
    /// Delta checkpoint document bytes.
    pub delta_bytes: u64,
    /// Pages a *full* checkpoint of the same state would have written.
    pub full_pages: u64,
    /// Delta chain depth after the checkpoint (1 = one delta on a full
    /// base).
    pub chain_depth: usize,
    /// Re-seeding a replica that retains the base checkpoint, after the
    /// replay history is pruned: ships only the delta chain above the
    /// base.
    pub delta_bootstrap: ShipCost,
    /// Bootstrapping a fresh replica from the same primary: ships the
    /// full chain (base + deltas).
    pub full_bootstrap: ShipCost,
    /// Delta re-seeds the lagging replica went through (must be 1 —
    /// proof the measurement exercised `Need::DeltaBootstrap`).
    pub delta_reseeds: u64,
}

/// Stage the delta-checkpoint comparison.
///
/// Staging mirrors [`measure_recovery`]: scaled fig6 population, one
/// full/binary ASR covered by the create-time (full) checkpoint, then
/// `delta_ops` logged `ins_3` inserts.  A replica converges on the base
/// state first; the primary then applies the delta, takes a *delta*
/// checkpoint, and prunes its segments — so the replica's catch-up must
/// renegotiate a delta re-bootstrap, while a fresh replica pays for the
/// full chain.
pub fn measure_delta_checkpoint(scale: f64, delta_ops: usize) -> DeltaCheckpointBench {
    let (mut primary, trace) = stage_parts(scale, delta_ops);
    let opts = ReplicateOptions::default();

    // Converge a replica on the create-time checkpoint alone — it
    // retains that full base, which is what the delta re-seed patches.
    let mut warm = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    replicate(&primary, &mut warm, &mut channel, &opts).expect("base bootstrap");

    let applied = apply_trace(&mut primary, &trace);
    let t = Instant::now();
    let report = primary.checkpoint_delta().expect("delta checkpoint");
    let checkpoint_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.is_delta(),
        "staged ins_3 delta must take the delta checkpoint path"
    );
    primary.prune_segments().expect("prunes");

    // Warm leg: the segments the replica would replay are gone, so the
    // pump renegotiates `Need::DeltaBootstrap` and ships only the delta.
    let seeded_bytes = warm.status().bytes_received;
    let mut channel = LosslessChannel::new();
    let t = Instant::now();
    let warm_report = replicate(&primary, &mut warm, &mut channel, &opts).expect("delta re-seed");
    let warm_wall = t.elapsed().as_secs_f64() * 1e3;
    let warm_bytes = warm.status().bytes_received - seeded_bytes;

    // Cold leg: a fresh replica ships the whole chain.
    let mut cold = ReplicaApplier::new();
    let mut channel = LosslessChannel::new();
    let t = Instant::now();
    let cold_report = replicate(&primary, &mut cold, &mut channel, &opts).expect("full bootstrap");
    let cold_wall = t.elapsed().as_secs_f64() * 1e3;
    let cold_bytes = cold.status().bytes_received;

    assert_eq!(
        warm.snapshot(),
        cold.snapshot(),
        "both bootstrap strategies must converge identically"
    );

    DeltaCheckpointBench {
        delta_ops: applied,
        checkpoint_wall_ms,
        delta_pages: report.pages_written,
        delta_bytes: report.snapshot_bytes,
        full_pages: report.pages_full,
        chain_depth: report.chain_depth,
        delta_bootstrap: ShipCost {
            wall_ms: warm_wall,
            bytes_shipped: warm_bytes,
            pages: warm_bytes.div_ceil(PAGE_SIZE as u64),
            deliveries: warm_report.deliveries_sent,
            records_applied: warm_report.records_applied,
        },
        full_bootstrap: ShipCost {
            wall_ms: cold_wall,
            bytes_shipped: cold_bytes,
            pages: cold_bytes.div_ceil(PAGE_SIZE as u64),
            deliveries: cold_report.deliveries_sent,
            records_applied: cold_report.records_applied,
        },
        delta_reseeds: warm.status().delta_bootstraps,
    }
}

/// One point on the PITR cost curve.
#[derive(Debug, Clone, Copy)]
pub struct PitrPoint {
    /// The requested bound.
    pub bound: u64,
    /// Wall-clock milliseconds for `recover_to_lsn`.
    pub wall_ms: f64,
    /// Modeled pages read (checkpoint + segments + tail).
    pub pages_read: u64,
    /// Records replayed past the chosen checkpoint.
    pub records_replayed: u64,
    /// Sealed segments the replay had to read.
    pub segments_read: u64,
}

/// Point-in-time recovery cost as a function of bound distance.
#[derive(Debug, Clone)]
pub struct PitrBench {
    /// The primary's durable tip LSN.
    pub tip: u64,
    /// Cost at bounds 0%, 25%, 50%, 75% and 100% of the tip.
    pub points: Vec<PitrPoint>,
}

/// Stage a primary whose history is segmented, then price
/// [`recover_to_lsn`] at evenly spaced bounds.  Replay cost must grow
/// with the distance from the (single, create-time) checkpoint.
pub fn measure_pitr(scale: f64, delta_ops: usize) -> PitrBench {
    // A small rotation threshold spreads the delta over sealed segments,
    // the shape PITR pays for: nearer bounds read shorter prefixes.
    let (primary, applied) = stage_primary(scale, delta_ops, Some(192));
    let storage = primary.storage().clone();
    drop(primary);

    let mut points = Vec::new();
    for quarter in 0..=4u64 {
        let bound = applied * quarter / 4;
        let t = Instant::now();
        let (_db, report) = recover_to_lsn(&storage, bound).expect("bound is retained");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        points.push(PitrPoint {
            bound,
            wall_ms,
            pages_read: report.pages_read,
            records_replayed: report.records_replayed,
            segments_read: report.segments_read,
        });
    }
    PitrBench {
        tip: applied,
        points,
    }
}

/// Shared staging for the replication and PITR benches: scaled fig6
/// population with a full/binary ASR, made durable (the create-time
/// checkpoint covers the built ASR), then `delta_ops` logged inserts.
fn stage_primary(
    scale: f64,
    delta_ops: usize,
    segment_threshold: Option<usize>,
) -> (DurableDatabase<MemStorage>, u64) {
    let (mut durable, trace) = stage_parts(scale, delta_ops);
    if let Some(bytes) = segment_threshold {
        durable.set_segment_threshold(bytes);
    }
    let applied = apply_trace(&mut durable, &trace);
    (durable, applied)
}

/// [`stage_primary`] split at the create-time checkpoint: the durable
/// database before any delta op, plus the trace to apply.  Lets the
/// delta-checkpoint bench converge a replica on the base state first.
fn stage_parts(scale: f64, delta_ops: usize) -> (DurableDatabase<MemStorage>, Vec<TraceOp>) {
    let scaled = scale_profile(&profiles::fig6_profile().profile, scale);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let g = generate(&spec, 7);
    let m = g.path.arity(false) - 1;
    let config = AsrConfig {
        extension: Extension::Full,
        decomposition: Decomposition::binary(m),
        keep_set_oids: false,
    };
    let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);
    let trace = generate_trace(&g, &mix, delta_ops, 11);
    let dotted = g.path.to_string();
    let mut db = g.db;
    db.create_asr_on(&dotted, config).expect("ASR builds");
    let durable =
        DurableDatabase::create(MemStorage::new(), db, FlushPolicy::EveryRecord).expect("creates");
    (durable, trace)
}

/// Apply the staged `ins_3` trace, returning how many inserts were
/// effective (= logged).
fn apply_trace(durable: &mut DurableDatabase<MemStorage>, trace: &[TraceOp]) -> u64 {
    let mut applied = 0u64;
    for op in trace {
        if let TraceOp::Insert { i, owner, elem } = op {
            let attr = format!("A{}", i + 1);
            let Ok(value) = durable.base().get_attribute(*owner, &attr) else {
                continue;
            };
            let Some(set) = value.as_ref_oid() else {
                continue;
            };
            if durable
                .insert_into_set(set, Value::Ref(*elem))
                .expect("logged insert")
            {
                applied += 1;
            }
        }
    }
    applied
}

/// The `Database::save_to_string` body inside the checkpoint file (after
/// the `CKPT` and `ASRIDS` header lines).
fn checkpoint_body(mem: &MemStorage) -> String {
    let bytes = mem
        .read(CHECKPOINT_FILE)
        .expect("storage readable")
        .expect("checkpoint exists");
    let text = String::from_utf8(bytes).expect("checkpoint is UTF-8");
    let rest = text.split_once('\n').expect("CKPT header").1;
    rest.split_once('\n').expect("ASRIDS header").1.to_string()
}
