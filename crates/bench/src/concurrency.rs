//! Concurrency micro-benchmark: the MVCC/group-commit section of the
//! perf snapshot.
//!
//! Two legs, both on the generated chain population:
//!
//! * **write leg** — a WAL-backed primary with the group-commit
//!   pipeline on, driven by 1/2/4/8 interleaved sessions each applying
//!   a maintained update and announcing its commit point.  The metric
//!   that matters is *fsyncs per committed op*: with `S` sessions per
//!   group one modeled fsync covers `S` commits, so the ratio is
//!   `1/S` — deterministic, and trend-gated via the `fsyncs` /
//!   `fsyncs_per_op` leaves.
//! * **read leg** — 1/2/4/8 reader threads answering a fixed span-query
//!   script from cloned [`Snapshot`] pins while the owning thread keeps
//!   committing maintained updates and republishing versions.  Row
//!   counts are deterministic (every reader sees exactly the pinned
//!   epoch); aggregate throughput is host-dependent and informational —
//!   on a single-CPU container the wall-clock cannot scale, which the
//!   snapshot reports honestly (`qps` stays informational, never
//!   gated).
//!
//! [`Snapshot`]: asr_core::Snapshot

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use asr_core::{AsrConfig, AsrId, Database, Decomposition, Extension};
use asr_durable::{DurableDatabase, FlushPolicy, MemStorage};
use asr_gom::{Oid, Value};
use asr_workload::{generate, GeneratorSpec};

/// Session/reader counts both legs sweep.
pub const POINTS: [usize; 4] = [1, 2, 4, 8];

/// Commits per write-leg point (divisible by every group target in
/// [`POINTS`], so no point ends with a partial group pending).
pub const WRITE_COMMITS: usize = 64;

/// Span-query sweeps each reader performs over the start sample.
const READ_PASSES: usize = 8;

/// One write-leg point: group-commit cost at a fixed session count.
#[derive(Debug, Clone, Copy)]
pub struct WritePoint {
    /// Sessions per group (the pipeline's flush target).
    pub sessions: usize,
    /// Session commits made durable.
    pub commits: u64,
    /// WAL records those commits carried.
    pub records: u64,
    /// Modeled fsyncs the pipeline performed (deterministic).
    pub fsyncs: u64,
    /// Wall-clock for the whole point (host-dependent).
    pub wall_ms: f64,
}

impl WritePoint {
    /// Fsyncs per committed op — the group-commit win (`1/sessions`).
    pub fn fsyncs_per_op(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.fsyncs as f64 / self.commits as f64
        }
    }
}

/// One read-leg point: snapshot readers racing a committing writer.
#[derive(Debug, Clone, Copy)]
pub struct ReadPoint {
    /// Reader threads.
    pub readers: usize,
    /// Span queries answered across all readers.
    pub queries: u64,
    /// Result cells those queries returned (deterministic: every reader
    /// answers from the same pinned epoch).
    pub rows: u64,
    /// Commits the writer got through while the readers ran.
    pub writer_commits: u64,
    /// Wall-clock from first spawn to last join (host-dependent).
    pub wall_ms: f64,
    /// Aggregate queries per second (host-dependent).
    pub qps: f64,
}

/// The full concurrency benchmark result.
#[derive(Debug, Clone)]
pub struct ConcurrencyBench {
    /// Group-commit cost at session counts 1/2/4/8.
    pub write_points: Vec<WritePoint>,
    /// Snapshot-reader throughput at reader counts 1/2/4/8.
    pub read_points: Vec<ReadPoint>,
}

/// The miniature chain population both legs stage.
struct Staged {
    db: Database,
    asr: AsrId,
    n: usize,
    starts: Vec<Oid>,
    leaves: Vec<Oid>,
}

fn stage() -> Staged {
    let spec = GeneratorSpec {
        counts: vec![12, 24, 48, 96],
        defined: vec![12, 24, 48],
        fan: vec![2, 2, 2],
        sizes: vec![128, 128, 128, 128],
    };
    let g = generate(&spec, 0xC0C0);
    let n = g.path.arity(false) - 1;
    let mut db = g.db;
    let dotted = g.path.to_string();
    let asr = db
        .create_asr_on(
            &dotted,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(n),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    const SAMPLE: usize = 16;
    Staged {
        db,
        asr,
        n,
        starts: g.levels[0].iter().copied().take(SAMPLE).collect(),
        leaves: g.levels[n].to_vec(),
    }
}

/// Run the write leg at one session count: `WRITE_COMMITS` maintained
/// updates interleaved across `sessions` sessions, one `submit_commit`
/// per update, group target = session count.
fn measure_write_point(sessions: usize) -> WritePoint {
    let staged = stage();
    let mut durable =
        DurableDatabase::create(MemStorage::new(), staged.db, FlushPolicy::EveryRecord)
            .expect("creates");
    durable.enable_group_commit(sessions);
    let started = Instant::now();
    for k in 0..WRITE_COMMITS {
        // Round-robin across the simulated sessions: each commit is one
        // maintained leaf update (the ASR's last position rewrites).
        let leaf = staged.leaves[k % staged.leaves.len()];
        durable
            .set_attribute(leaf, "Tag", Value::Integer(1000 + k as i64))
            .expect("maintained update");
        durable.submit_commit().expect("commit point");
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let status = durable.group_commit_status().expect("pipeline is on");
    assert_eq!(
        status.pending_sessions, 0,
        "WRITE_COMMITS must divide evenly into groups of {sessions}"
    );
    durable.disable_group_commit().expect("clean teardown");
    WritePoint {
        sessions,
        commits: status.commits,
        records: status.records,
        fsyncs: status.fsyncs,
        wall_ms,
    }
}

/// Run the read leg at one reader count: each reader answers the full
/// span script `READ_PASSES` times from a clone of one pinned snapshot
/// while this thread keeps committing maintained updates and
/// republishing fresh versions.
fn measure_read_point(readers: usize) -> ReadPoint {
    let mut staged = stage();
    let snap = staged.db.snapshot();
    let finished = AtomicUsize::new(0);
    let started = Instant::now();
    let mut writer_commits = 0u64;
    let (queries, rows) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let view = snap.clone();
                let starts = &staged.starts;
                let (asr, n) = (staged.asr, staged.n);
                let finished = &finished;
                scope.spawn(move || {
                    let (mut queries, mut rows) = (0u64, 0u64);
                    for _ in 0..READ_PASSES {
                        for &start in starts {
                            rows += view.forward(asr, 0, n, start).expect("span").len() as u64;
                            queries += 1;
                        }
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                    (queries, rows)
                })
            })
            .collect();
        // The writer keeps the version store churning until every
        // reader has drained its script: mutate, publish, repeat.
        while finished.load(Ordering::SeqCst) < readers {
            let leaf = staged.leaves[writer_commits as usize % staged.leaves.len()];
            staged
                .db
                .set_attribute(leaf, "Tag", Value::Integer(-(writer_commits as i64) - 1))
                .expect("maintained update");
            let _ = staged.db.snapshot();
            writer_commits += 1;
            std::thread::yield_now();
        }
        let mut totals = (0u64, 0u64);
        for h in handles {
            let (q, r) = h.join().expect("reader joins");
            totals.0 += q;
            totals.1 += r;
        }
        totals
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    ReadPoint {
        readers,
        queries,
        rows,
        writer_commits,
        wall_ms,
        qps: queries as f64 / (wall_ms / 1e3).max(1e-9),
    }
}

/// Measure both legs at every point.
pub fn measure_concurrency() -> ConcurrencyBench {
    ConcurrencyBench {
        write_points: POINTS.iter().map(|&s| measure_write_point(s)).collect(),
        read_points: POINTS.iter().map(|&r| measure_read_point(r)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_commit_amortizes_fsyncs_across_sessions() {
        let one = measure_write_point(1);
        let four = measure_write_point(4);
        assert_eq!(one.commits, WRITE_COMMITS as u64);
        assert_eq!(four.commits, WRITE_COMMITS as u64);
        assert!((one.fsyncs_per_op() - 1.0).abs() < 1e-9);
        assert!((four.fsyncs_per_op() - 0.25).abs() < 1e-9);
        assert_eq!(four.fsyncs * 4, one.fsyncs);
    }

    #[test]
    fn readers_scale_rows_deterministically_under_a_live_writer() {
        let one = measure_read_point(1);
        let two = measure_read_point(2);
        // Every reader answers from the same pinned epoch, so per-reader
        // work is bit-identical and totals scale exactly linearly.
        assert_eq!(two.queries, one.queries * 2);
        assert_eq!(two.rows, one.rows * 2);
        assert!(one.rows > 0);
    }
}
