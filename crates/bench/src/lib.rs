//! # asr-bench — the experiment harness
//!
//! One experiment per figure of the paper's evaluation (Figures 4–9 and
//! 11–17), plus an empirical-vs-analytical validation run and the
//! physical-design optimizer demo.  Each experiment prints the same series
//! the paper plots and emits a CSV file under `results/`.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p asr-bench --bin experiments -- all
//! ```
//!
//! or a single figure: `… -- fig6`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concurrency;
pub mod experiments;
pub mod recovery;
pub mod serving;
pub mod table;
pub mod trend;

pub use table::Table;
