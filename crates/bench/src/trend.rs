//! Performance-trend analysis over the repository's `BENCH_*.json`
//! history — the first regression gate in CI.
//!
//! Every PR that re-measures performance appends a `BENCH_<n>.json`
//! snapshot at the repository root.  This module parses the whole
//! series with a small hand-rolled JSON reader (the workspace has no
//! serde and takes no new dependencies), flattens every numeric leaf to
//! a dotted path (`recovery.wal_replay.page_reads`,
//! `pitr.points.2.pages_read`), prints the per-metric trajectory, and
//! fails when a *deterministic* metric regresses past a tolerance.
//!
//! Only metrics whose values are decided by the modeled page-I/O layer
//! are gated: page read/write counts, shipped bytes and pages, and the
//! derived page ratios.  Wall-clock milliseconds and thread speedups
//! vary with the host and are reported but never gated.  Snapshots are
//! also allowed to *gain* metrics over time (the schema has grown from
//! `asr-bench-snapshot/1` onward); a metric is judged against the most
//! recent earlier snapshot that has it, and metrics seen only once pass
//! trivially.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::table::Table;

/// A parsed JSON value (just enough of the grammar for the snapshots).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`; snapshot values all fit).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order of first appearance.
    Obj(Vec<(String, Json)>),
}

/// Parse a complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(ch), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected byte '{}' at {}",
            char::from(other),
            *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes[*pos] == b'-' {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Snapshots are ASCII; surrogate pairs are out of
                        // scope — map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", char::from(other))),
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Flatten every numeric leaf to `(dotted.path, value)`, indexing array
/// elements by position (`pitr.points.0.pages_read`).  JSON `null`
/// leaves are kept as `NaN` so the gate can tell "measured as
/// unavailable" (e.g. `speedup_jobs4: null` on a single-CPU host) apart
/// from "metric absent": a null baseline means *skip*, never "diff
/// against an older snapshot that did have a number".
pub fn flatten(value: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &Json, prefix: String, out: &mut BTreeMap<String, f64>) {
    match value {
        Json::Num(n) => {
            out.insert(prefix, *n);
        }
        Json::Null => {
            out.insert(prefix, f64::NAN);
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, join(&prefix, &i.to_string()), out);
            }
        }
        Json::Obj(fields) => {
            for (key, item) in fields {
                walk(item, join(&prefix, key), out);
            }
        }
        Json::Bool(_) | Json::Str(_) => {}
    }
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

/// One loaded snapshot: its file stem and flattened metrics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `BENCH_<n>` (no extension).
    pub name: String,
    /// Ordering key parsed from the suffix.
    pub index: u64,
    /// Flattened numeric leaves.
    pub metrics: BTreeMap<String, f64>,
}

/// Is this metric gated — deterministic under the modeled I/O layer,
/// lower-is-better, so growth past tolerance is a real regression?
///
/// Wall-clock (`wall_ms`, `speedup_*`, `*_wall_ms`) and environment
/// facts (`cpus`, `figures`, LSNs, op counts) are informational only.
pub fn is_gated(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    matches!(
        leaf,
        "page_reads"
            | "page_writes"
            | "pages_read"
            | "pages"
            | "bytes_shipped"
            | "deliveries"
            | "fsyncs"
    ) || leaf.ends_with("_page_ratio")
        || leaf.ends_with("_per_op")
}

/// One gated metric that grew past tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted metric path.
    pub metric: String,
    /// Snapshot the baseline came from.
    pub baseline_snapshot: String,
    /// Baseline value (most recent earlier snapshot with the metric).
    pub baseline: f64,
    /// Value in the newest snapshot.
    pub current: f64,
}

/// The full trend analysis: trajectory table plus gate verdict.
#[derive(Debug)]
pub struct TrendReport {
    /// Snapshots in series order.
    pub snapshots: Vec<String>,
    /// Per-metric trajectory (every numeric leaf seen anywhere).
    pub table: Table,
    /// Gated metrics that regressed in the newest snapshot.
    pub regressions: Vec<Regression>,
}

impl TrendReport {
    /// Render the table plus one line per regression.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = self.table.render();
        if self.regressions.is_empty() {
            let _ = writeln!(
                out,
                "trend gate: OK — no gated metric grew more than {:.0}% over its baseline",
                tolerance * 100.0
            );
        } else {
            for r in &self.regressions {
                let _ = writeln!(
                    out,
                    "trend gate: REGRESSION {} rose {} -> {} ({:+.1}% vs {}, tolerance {:.0}%)",
                    r.metric,
                    fmt_value(r.baseline),
                    fmt_value(r.current),
                    (r.current / r.baseline - 1.0) * 100.0,
                    r.baseline_snapshot,
                    tolerance * 100.0
                );
            }
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "null".to_string()
    } else if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Load every `BENCH_<n>.json` under `dir`, sorted by `<n>`.
pub fn load_snapshots(dir: &Path) -> Result<Vec<Snapshot>, String> {
    let mut files: Vec<(u64, PathBuf, String)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        let Some(n) = stem.strip_prefix("BENCH_") else {
            continue;
        };
        let Ok(index) = n.parse::<u64>() else {
            continue;
        };
        files.push((index, path.clone(), stem.to_string()));
    }
    files.sort_by_key(|(i, _, _)| *i);
    let mut snapshots = Vec::new();
    for (index, path, name) in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let value = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        snapshots.push(Snapshot {
            name,
            index,
            metrics: flatten(&value),
        });
    }
    Ok(snapshots)
}

/// Analyze a loaded series: build the trajectory table and run the gate
/// on the newest snapshot.
pub fn analyze(snapshots: &[Snapshot], tolerance: f64) -> Result<TrendReport, String> {
    if snapshots.is_empty() {
        return Err("no BENCH_*.json snapshots found".to_string());
    }
    let names: Vec<String> = snapshots.iter().map(|s| s.name.clone()).collect();

    let mut all_metrics: Vec<&str> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for snap in snapshots {
        for key in snap.metrics.keys() {
            if seen.insert(key.as_str()) {
                all_metrics.push(key);
            }
        }
    }
    all_metrics.sort_unstable();

    let mut header: Vec<&str> = vec!["metric", "gate"];
    header.extend(names.iter().map(String::as_str));
    let mut table = Table::new("perf trend across bench snapshots", &header);
    for metric in &all_metrics {
        let mut row = vec![
            metric.to_string(),
            if is_gated(metric) { "*" } else { "" }.to_string(),
        ];
        for snap in snapshots {
            row.push(
                snap.metrics
                    .get(*metric)
                    .map_or_else(|| "-".to_string(), |v| fmt_value(*v)),
            );
        }
        table.row(row);
    }

    let mut regressions = Vec::new();
    let (newest, history) = snapshots.split_last().expect("non-empty checked above");
    for (metric, &current) in &newest.metrics {
        if !is_gated(metric) || current.is_nan() {
            continue;
        }
        let Some((base_snap, baseline)) = history
            .iter()
            .rev()
            .find_map(|s| s.metrics.get(metric).map(|v| (s.name.clone(), *v)))
        else {
            continue; // first appearance — nothing to compare against
        };
        if baseline.is_nan() {
            // The most recent measurement was `null` (e.g. a single-CPU
            // host skipping the speedup): skip, don't reach further back
            // and diff against a stale number.
            continue;
        }
        // Allow an absolute slack of 1 page/unit so tiny counts (0, 1, 2
        // pages) don't trip a percentage gate on noise-free but coarse
        // integers.
        let allowed = (baseline * (1.0 + tolerance)).max(baseline + 1.0);
        if current > allowed {
            regressions.push(Regression {
                metric: metric.clone(),
                baseline_snapshot: base_snap,
                baseline,
                current,
            });
        }
    }
    regressions.sort_by(|a, b| a.metric.cmp(&b.metric));

    Ok(TrendReport {
        snapshots: names,
        table,
        regressions,
    })
}

/// Convenience: load + analyze in one call.
pub fn run_trend(dir: &Path, tolerance: f64) -> Result<TrendReport, String> {
    let snapshots = load_snapshots(dir)?;
    analyze(&snapshots, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str, index: u64, metrics: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            name: name.to_string(),
            index,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn parser_handles_the_snapshot_grammar() {
        let doc = r#"{
            "schema": "asr-bench-snapshot/4",
            "neg": -2.5e1,
            "arr": [1, {"x": 2}, null, true, "s"],
            "esc": "a\"b\\c\nA"
        }"#;
        let v = parse_json(doc).expect("parses");
        let flat = flatten(&v);
        assert_eq!(flat.get("neg"), Some(&-25.0));
        assert_eq!(flat.get("arr.0"), Some(&1.0));
        assert_eq!(flat.get("arr.1.x"), Some(&2.0));
        match v {
            Json::Obj(fields) => {
                assert_eq!(
                    fields.iter().find(|(k, _)| k == "esc").map(|(_, v)| v),
                    Some(&Json::Str("a\"b\\c\nA".to_string()))
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_truncation() {
        assert!(parse_json("{\"a\": 1} x").is_err());
        assert!(parse_json("{\"a\": ").is_err());
        assert!(parse_json("[1, 2").is_err());
    }

    #[test]
    fn gate_ignores_wall_clock_and_flags_page_growth() {
        let history = vec![
            snap(
                "BENCH_1",
                1,
                &[
                    ("figures.fig6.wall_ms", 10.0),
                    ("figures.fig6.measured.page_reads", 100.0),
                ],
            ),
            snap(
                "BENCH_2",
                2,
                &[
                    ("figures.fig6.wall_ms", 500.0), // wall-clock: never gated
                    ("figures.fig6.measured.page_reads", 130.0),
                ],
            ),
        ];
        let report = analyze(&history, 0.10).expect("analyzes");
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.metric, "figures.fig6.measured.page_reads");
        assert_eq!(r.baseline, 100.0);
        assert_eq!(r.current, 130.0);
    }

    #[test]
    fn gate_tolerates_small_absolute_growth_and_new_metrics() {
        let history = vec![
            snap("BENCH_1", 1, &[("replication.catchup.pages", 1.0)]),
            snap(
                "BENCH_2",
                2,
                &[
                    ("replication.catchup.pages", 2.0), // +1 page: within slack
                    ("recovery.full_rebuild.page_reads", 700.0), // new metric
                ],
            ),
        ];
        let report = analyze(&history, 0.10).expect("analyzes");
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn gate_skips_null_baselines_instead_of_reaching_further_back() {
        // BENCH_2 measured the metric as `null` (single-CPU host): the
        // gate must skip it, not diff BENCH_3 against BENCH_1's number.
        let doc = r#"{"scaling": {"pages": null}}"#;
        let nulled = flatten(&parse_json(doc).expect("parses"));
        assert!(nulled.get("scaling.pages").expect("kept").is_nan());
        let history = vec![
            snap("BENCH_1", 1, &[("scaling.pages", 100.0)]),
            Snapshot {
                name: "BENCH_2".to_string(),
                index: 2,
                metrics: nulled.clone(),
            },
            snap("BENCH_3", 3, &[("scaling.pages", 500.0)]),
        ];
        let report = analyze(&history, 0.10).expect("analyzes");
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        // A null *current* value is never a regression either.
        let history = vec![
            snap("BENCH_1", 1, &[("scaling.pages", 100.0)]),
            Snapshot {
                name: "BENCH_2".to_string(),
                index: 2,
                metrics: nulled,
            },
        ];
        let report = analyze(&history, 0.10).expect("analyzes");
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn baseline_is_the_most_recent_snapshot_with_the_metric() {
        let history = vec![
            snap("BENCH_1", 1, &[("a.page_reads", 100.0)]),
            snap("BENCH_2", 2, &[]), // metric absent (schema gap)
            snap("BENCH_3", 3, &[("a.page_reads", 200.0)]),
        ];
        let report = analyze(&history, 0.10).expect("analyzes");
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].baseline_snapshot, "BENCH_1");
    }

    #[test]
    fn repository_history_parses_and_passes() {
        // The real series committed at the repo root must stay green.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_trend(&dir, 0.10).expect("history loads");
        assert!(report.snapshots.len() >= 4, "{:?}", report.snapshots);
        assert!(
            report.regressions.is_empty(),
            "committed history must not regress: {:?}",
            report.regressions
        );
    }
}
