//! Minimal text-table and CSV emission used by every experiment.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also serialize itself as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Serialize as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV form to `dir/name.csv` (directory created on demand).
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Format a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_serializes() {
        let mut t = Table::new("demo", &["x", "cost"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["2".into(), "30".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("cost"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("x,cost"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["label"]);
        t.row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(3.21159), "3.21");
        assert_eq!(fmt(42.4242), "42.4");
        assert_eq!(fmt(123456.7), "123457");
    }
}
