//! The experiment driver: regenerate any (or every) figure of the paper.
//!
//! ```text
//! cargo run --release -p asr-bench --bin experiments -- all
//! cargo run --release -p asr-bench --bin experiments -- all --jobs 4
//! cargo run --release -p asr-bench --bin experiments -- fig6 fig11
//! cargo run --release -p asr-bench --bin experiments -- --list
//! ```
//!
//! CSV output lands in `results/` (override with `--out <dir>`, suppress
//! with `--no-csv`).  `--metrics-out` additionally writes a
//! machine-readable metrics snapshot (`<id>_metrics.jsonl`) per figure:
//! run duration, table/row/note counts, one line per metric.
//!
//! `--jobs N` runs up to `N` figures concurrently, one thread per figure.
//! Every runner builds its own database and [`asr_pagesim::IoStats`]
//! counter (the stats handle is an `Rc` and never crosses threads), so
//! page accounting stays exact per figure.  Outputs are collected and
//! emitted in registry order afterwards, so stdout and the CSV files are
//! byte-identical to a `--jobs 1` run.

use std::path::PathBuf;
use std::time::Instant;

use asr_bench::experiments::{registry, run_entries, ExperimentEntry, ExperimentOutput};
use asr_obs::MetricsRegistry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<PathBuf> = Some(PathBuf::from("results"));
    let mut metrics_out = false;
    let mut jobs: usize = 1;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:<10} {desc}");
                }
                return;
            }
            "--no-csv" => out_dir = None,
            "--out" => {
                let dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                });
                out_dir = Some(PathBuf::from(dir));
            }
            "--metrics-out" => metrics_out = true,
            "--jobs" => {
                let n = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(2);
                }
                jobs = n;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        eprintln!(
            "usage: experiments [--list] [--no-csv] [--out DIR] [--metrics-out] [--jobs N] \
             <id>... | all"
        );
        eprintln!("known experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<10} {desc}");
        }
        std::process::exit(2);
    }

    let run_all = selected.iter().any(|s| s == "all");
    let known = registry();
    // Validate the selection up front.
    for want in &selected {
        if want != "all" && !known.iter().any(|(id, _, _)| id == want) {
            eprintln!("unknown experiment `{want}` — try --list");
            std::process::exit(2);
        }
    }
    let to_run: Vec<ExperimentEntry> = known
        .into_iter()
        .filter(|(id, _, _)| run_all || selected.iter().any(|s| s == id))
        .collect();

    if jobs <= 1 {
        // Streaming mode: emit each figure as soon as it finishes.
        for (id, desc, runner) in &to_run {
            let started = Instant::now();
            let output = runner();
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            emit_one(
                id,
                desc,
                &output,
                elapsed_ms,
                out_dir.as_deref(),
                metrics_out,
            );
        }
    } else {
        for (i, (output, elapsed_ms)) in run_entries(&to_run, jobs).into_iter().enumerate() {
            let (id, desc, _) = to_run[i];
            emit_one(
                id,
                desc,
                &output,
                elapsed_ms,
                out_dir.as_deref(),
                metrics_out,
            );
        }
    }
    if let Some(dir) = &out_dir {
        println!("CSV series written to {}", dir.display());
    }
}

/// Print one figure's header, tables and notes; save CSVs and the
/// optional metrics snapshot.
fn emit_one(
    id: &str,
    desc: &str,
    output: &ExperimentOutput,
    elapsed_ms: f64,
    out_dir: Option<&std::path::Path>,
    metrics_out: bool,
) {
    println!("### {id} — {desc}\n");
    output.emit(id, out_dir);
    if metrics_out {
        let dir = out_dir
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"));
        match write_metrics(&dir, id, output, elapsed_ms) {
            Ok(path) => println!("metrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("warning: could not save metrics for {id}: {e}"),
        }
    }
}

/// Snapshot one figure's run into `<dir>/<id>_metrics.jsonl`.
fn write_metrics(
    dir: &std::path::Path,
    id: &str,
    output: &ExperimentOutput,
    elapsed_ms: f64,
) -> std::io::Result<PathBuf> {
    let metrics = MetricsRegistry::new();
    metrics.inc_counter("experiment.tables", output.tables.len() as u64);
    metrics.inc_counter(
        "experiment.rows",
        output.tables.iter().map(|t| t.len() as u64).sum(),
    );
    metrics.inc_counter("experiment.notes", output.notes.len() as u64);
    metrics.set_gauge("experiment.duration_ms", elapsed_ms);
    metrics.observe(
        "experiment.duration_ms",
        &[1.0, 10.0, 100.0, 1_000.0, 10_000.0],
        elapsed_ms,
    );
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}_metrics.jsonl"));
    std::fs::write(&path, metrics.snapshot().to_jsonl())?;
    Ok(path)
}
