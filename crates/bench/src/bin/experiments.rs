//! The experiment driver: regenerate any (or every) figure of the paper.
//!
//! ```text
//! cargo run --release -p asr-bench --bin experiments -- all
//! cargo run --release -p asr-bench --bin experiments -- fig6 fig11
//! cargo run --release -p asr-bench --bin experiments -- --list
//! ```
//!
//! CSV output lands in `results/` (override with `--out <dir>`, suppress
//! with `--no-csv`).

use std::path::PathBuf;

use asr_bench::experiments::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<PathBuf> = Some(PathBuf::from("results"));
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:<10} {desc}");
                }
                return;
            }
            "--no-csv" => out_dir = None,
            "--out" => {
                let dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                });
                out_dir = Some(PathBuf::from(dir));
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        eprintln!("usage: experiments [--list] [--no-csv] [--out DIR] <id>... | all");
        eprintln!("known experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<10} {desc}");
        }
        std::process::exit(2);
    }

    let run_all = selected.iter().any(|s| s == "all");
    let known = registry();
    // Validate the selection up front.
    for want in &selected {
        if want != "all" && !known.iter().any(|(id, _, _)| id == want) {
            eprintln!("unknown experiment `{want}` — try --list");
            std::process::exit(2);
        }
    }
    for (id, desc, runner) in known {
        if run_all || selected.iter().any(|s| s == id) {
            println!("### {id} — {desc}\n");
            let output = runner();
            output.emit(id, out_dir.as_deref());
        }
    }
    if let Some(dir) = &out_dir {
        println!("CSV series written to {}", dir.display());
    }
}
