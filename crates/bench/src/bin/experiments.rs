//! The experiment driver: regenerate any (or every) figure of the paper.
//!
//! ```text
//! cargo run --release -p asr-bench --bin experiments -- all
//! cargo run --release -p asr-bench --bin experiments -- fig6 fig11
//! cargo run --release -p asr-bench --bin experiments -- --list
//! ```
//!
//! CSV output lands in `results/` (override with `--out <dir>`, suppress
//! with `--no-csv`).  `--metrics-out` additionally writes a
//! machine-readable metrics snapshot (`<id>_metrics.jsonl`) per figure:
//! run duration, table/row/note counts, one line per metric.

use std::path::PathBuf;
use std::time::Instant;

use asr_bench::experiments::registry;
use asr_obs::MetricsRegistry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<PathBuf> = Some(PathBuf::from("results"));
    let mut metrics_out = false;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:<10} {desc}");
                }
                return;
            }
            "--no-csv" => out_dir = None,
            "--out" => {
                let dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                });
                out_dir = Some(PathBuf::from(dir));
            }
            "--metrics-out" => metrics_out = true,
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        eprintln!(
            "usage: experiments [--list] [--no-csv] [--out DIR] [--metrics-out] <id>... | all"
        );
        eprintln!("known experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<10} {desc}");
        }
        std::process::exit(2);
    }

    let run_all = selected.iter().any(|s| s == "all");
    let known = registry();
    // Validate the selection up front.
    for want in &selected {
        if want != "all" && !known.iter().any(|(id, _, _)| id == want) {
            eprintln!("unknown experiment `{want}` — try --list");
            std::process::exit(2);
        }
    }
    for (id, desc, runner) in known {
        if run_all || selected.iter().any(|s| s == id) {
            println!("### {id} — {desc}\n");
            let started = Instant::now();
            let output = runner();
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            output.emit(id, out_dir.as_deref());
            if metrics_out {
                let dir = out_dir.clone().unwrap_or_else(|| PathBuf::from("results"));
                match write_metrics(&dir, id, &output, elapsed_ms) {
                    Ok(path) => println!("metrics snapshot written to {}", path.display()),
                    Err(e) => eprintln!("warning: could not save metrics for {id}: {e}"),
                }
            }
        }
    }
    if let Some(dir) = &out_dir {
        println!("CSV series written to {}", dir.display());
    }
}

/// Snapshot one figure's run into `<dir>/<id>_metrics.jsonl`.
fn write_metrics(
    dir: &std::path::Path,
    id: &str,
    output: &asr_bench::experiments::ExperimentOutput,
    elapsed_ms: f64,
) -> std::io::Result<PathBuf> {
    let metrics = MetricsRegistry::new();
    metrics.inc_counter("experiment.tables", output.tables.len() as u64);
    metrics.inc_counter(
        "experiment.rows",
        output.tables.iter().map(|t| t.len() as u64).sum(),
    );
    metrics.inc_counter("experiment.notes", output.notes.len() as u64);
    metrics.set_gauge("experiment.duration_ms", elapsed_ms);
    metrics.observe(
        "experiment.duration_ms",
        &[1.0, 10.0, 100.0, 1_000.0, 10_000.0],
        elapsed_ms,
    );
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}_metrics.jsonl"));
    std::fs::write(&path, metrics.snapshot().to_jsonl())?;
    Ok(path)
}
